#include "lint/rules.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "cvss/cvss.hpp"
#include "flow/flow.hpp"
#include "graph/algorithms.hpp"
#include "kb/platform.hpp"
#include "util/strings.hpp"

namespace cybok::lint {

namespace {

Diagnostic make(std::string_view code, Severity sev, std::string subject, std::string message,
                std::string hint = "") {
    Diagnostic d;
    d.code = std::string(code);
    d.severity = sev;
    d.subject = std::move(subject);
    d.message = std::move(message);
    d.hint = std::move(hint);
    return d;
}

/// Live components in id order (tombstones skipped).
std::vector<const model::Component*> live_components(const model::SystemModel& m) {
    std::vector<const model::Component*> out;
    out.reserve(m.components().size());
    for (const model::Component& c : m.components())
        if (c.id.valid()) out.push_back(&c);
    return out;
}

std::string connector_subject(const model::SystemModel& m, const model::Connector& k,
                              std::size_t index) {
    std::string subject = "connector#" + std::to_string(index);
    if (!k.name.empty()) subject += " \"" + k.name + "\"";
    if (m.contains(k.from) && m.contains(k.to))
        subject += " (" + m.component(k.from).name + " -> " + m.component(k.to).name + ")";
    return subject;
}

// -- model pass --------------------------------------------------------------

std::vector<Diagnostic> rule_duplicate_component_name(const LintInput& in, Severity sev) {
    std::vector<Diagnostic> out;
    if (in.model == nullptr) return out;
    std::map<std::string_view, std::size_t> counts;
    for (const model::Component* c : live_components(*in.model)) ++counts[c->name];
    for (const auto& [name, count] : counts) {
        if (count < 2) continue;
        out.push_back(make("M001", sev, std::string(name),
                           std::to_string(count) + " components share this name; associations "
                           "and traces address components by name and will conflate them",
                           "rename the components so every name is unique"));
    }
    return out;
}

std::vector<Diagnostic> rule_dangling_connector(const LintInput& in, Severity sev) {
    std::vector<Diagnostic> out;
    if (in.model == nullptr) return out;
    const auto& connectors = in.model->connectors();
    for (std::size_t i = 0; i < connectors.size(); ++i) {
        const model::Connector& k = connectors[i];
        if (in.model->contains(k.from) && in.model->contains(k.to)) continue;
        out.push_back(make("M002", sev, connector_subject(*in.model, k, i),
                           "connector endpoint references a component absent from the model; "
                           "graph export and reachability silently drop or crash on this edge",
                           "remove the connector or restore the missing component"));
    }
    return out;
}

std::vector<Diagnostic> rule_self_loop(const LintInput& in, Severity sev) {
    std::vector<Diagnostic> out;
    if (in.model == nullptr) return out;
    const auto& connectors = in.model->connectors();
    for (std::size_t i = 0; i < connectors.size(); ++i) {
        const model::Connector& k = connectors[i];
        if (!k.from.valid() || k.from != k.to) continue;
        out.push_back(make("M003", sev, connector_subject(*in.model, k, i),
                           "connector links a component to itself; self-loops add no attack "
                           "path and usually indicate a mis-wired endpoint",
                           "point the connector at the intended peer component"));
    }
    return out;
}

std::vector<Diagnostic> rule_duplicate_link(const LintInput& in, Severity sev) {
    std::vector<Diagnostic> out;
    if (in.model == nullptr) return out;
    // Group connectors by unordered endpoint pair; within a pair, count
    // coverage per direction (a bidirectional connector covers both). Two
    // covers of one direction = a duplicate link.
    struct PairInfo {
        std::size_t forward = 0;  // min -> max
        std::size_t backward = 0; // max -> min
    };
    std::map<std::pair<std::uint32_t, std::uint32_t>, PairInfo> pairs;
    for (const model::Connector& k : in.model->connectors()) {
        if (!in.model->contains(k.from) || !in.model->contains(k.to)) continue; // M002's job
        if (k.from == k.to) continue;                                           // M003's job
        const std::uint32_t lo = std::min(k.from.value, k.to.value);
        const std::uint32_t hi = std::max(k.from.value, k.to.value);
        PairInfo& info = pairs[{lo, hi}];
        if (k.bidirectional) {
            ++info.forward;
            ++info.backward;
        } else if (k.from.value == lo) {
            ++info.forward;
        } else {
            ++info.backward;
        }
    }
    for (const auto& [key, info] : pairs) {
        if (info.forward < 2 && info.backward < 2) continue;
        const std::string a = in.model->component(model::ComponentId{key.first}).name;
        const std::string b = in.model->component(model::ComponentId{key.second}).name;
        out.push_back(make("M004", sev, a + " <-> " + b,
                           "multiple connectors cover the same direction between this pair "
                           "(bidirectional links count both ways); duplicate edges inflate "
                           "path counts and centrality",
                           "merge the duplicates into one connector"));
    }
    return out;
}

std::vector<Diagnostic> rule_empty_attribute(const LintInput& in, Severity sev) {
    std::vector<Diagnostic> out;
    if (in.model == nullptr) return out;
    for (const model::Component* c : live_components(*in.model)) {
        for (const model::Attribute& a : c->attributes) {
            if (!strings::trim(a.value).empty()) continue;
            out.push_back(make("M005", sev, c->name + "." + a.name,
                               "attribute value is empty or whitespace; it can never match any "
                               "attack-vector record and silently weakens the component's row "
                               "in Table 1",
                               "fill in the value or remove the attribute"));
        }
    }
    return out;
}

std::vector<Diagnostic> rule_unreachable_component(const LintInput& in, Severity sev) {
    std::vector<Diagnostic> out;
    if (in.model == nullptr) return out;
    const std::vector<const model::Component*> live = live_components(*in.model);
    // Build the directed reachability graph ourselves (model::to_graph
    // throws on dangling connectors, which are M002's finding, not ours).
    graph::PropertyGraph g;
    std::map<std::uint32_t, graph::NodeId> node_of;
    std::vector<graph::NodeId> entries;
    for (const model::Component* c : live) {
        graph::NodeId n = g.add_node(c->name);
        node_of[c->id.value] = n;
        if (c->external_facing) entries.push_back(n);
    }
    if (entries.empty()) return out; // M007 reports the absence of entry points
    for (const model::Connector& k : in.model->connectors()) {
        if (!in.model->contains(k.from) || !in.model->contains(k.to)) continue;
        g.add_edge(node_of.at(k.from.value), node_of.at(k.to.value));
        if (k.bidirectional) g.add_edge(node_of.at(k.to.value), node_of.at(k.from.value));
    }
    std::set<graph::NodeId> reachable;
    for (graph::NodeId n : graph::reachable_from(g, entries, graph::Direction::Forward))
        reachable.insert(n);
    for (const model::Component* c : live) {
        if (reachable.contains(node_of.at(c->id.value))) continue;
        out.push_back(make("M006", sev, c->name,
                           "component is unreachable from every external-facing entry point; "
                           "no attack path can include it, so its associations never surface "
                           "in consequence traces",
                           "connect it to the architecture or mark the correct entry points "
                           "external"));
    }
    return out;
}

std::vector<Diagnostic> rule_no_entry_point(const LintInput& in, Severity sev) {
    std::vector<Diagnostic> out;
    if (in.model == nullptr) return out;
    const std::vector<const model::Component*> live = live_components(*in.model);
    if (live.empty()) return out;
    for (const model::Component* c : live)
        if (c->external_facing) return out;
    out.push_back(make("M007", sev, in.model->name().empty() ? "model" : in.model->name(),
                       "no component is marked external-facing; attack-surface and "
                       "externally-reachable trace views will be empty",
                       "mark the components an outside attacker can touch as external"));
    return out;
}

// -- kb pass -----------------------------------------------------------------

std::vector<Diagnostic> rule_duplicate_record_id(const LintInput& in, Severity sev) {
    std::vector<Diagnostic> out;
    if (in.corpus == nullptr) return out;
    auto report = [&](const std::string& id, std::size_t count, std::string_view family) {
        out.push_back(make("K001", sev, id,
                           std::to_string(count) + " " + std::string(family) +
                               " records share this id; reindex() refuses such a corpus and "
                               "lookups would be ambiguous",
                           "drop or renumber the duplicate records"));
    };
    std::map<kb::AttackPatternId, std::size_t> patterns;
    for (const kb::AttackPattern& p : in.corpus->patterns()) ++patterns[p.id];
    for (const auto& [id, n] : patterns)
        if (n > 1) report(id.to_string(), n, "attack-pattern");
    std::map<kb::WeaknessId, std::size_t> weaknesses;
    for (const kb::Weakness& w : in.corpus->weaknesses()) ++weaknesses[w.id];
    for (const auto& [id, n] : weaknesses)
        if (n > 1) report(id.to_string(), n, "weakness");
    std::map<kb::VulnerabilityId, std::size_t> vulns;
    for (const kb::Vulnerability& v : in.corpus->vulnerabilities()) ++vulns[v.id];
    for (const auto& [id, n] : vulns)
        if (n > 1) report(id.to_string(), n, "vulnerability");
    return out;
}

std::vector<Diagnostic> rule_malformed_platform(const LintInput& in, Severity sev) {
    std::vector<Diagnostic> out;
    if (in.corpus == nullptr) return out;
    for (const kb::Vulnerability& v : in.corpus->vulnerabilities()) {
        for (const kb::Platform& p : v.platforms) {
            std::string problem;
            if (p.vendor.empty() || p.product.empty())
                problem = "vendor and product must be non-empty";
            else if (p.vendor != kb::normalize_product_token(p.vendor) ||
                     p.product != kb::normalize_product_token(p.product))
                problem = "vendor/product are not in normalized CPE token form";
            if (problem.empty()) continue;
            out.push_back(make("K002", sev, v.id.to_string(),
                               "platform binding \"" + p.uri() + "\" is malformed (" + problem +
                                   "); the exact-binding association path can never match it",
                               "normalize the name with kb::normalize_product_token"));
        }
    }
    return out;
}

std::vector<Diagnostic> rule_invalid_cvss(const LintInput& in, Severity sev) {
    std::vector<Diagnostic> out;
    if (in.corpus == nullptr) return out;
    for (const kb::Vulnerability& v : in.corpus->vulnerabilities()) {
        if (v.cvss_vector.empty()) continue; // unscored is legitimate
        try {
            (void)cvss::parse(v.cvss_vector);
        } catch (const Error& e) {
            out.push_back(make("K003", sev, v.id.to_string(),
                               "CVSS vector \"" + v.cvss_vector + "\" does not parse: " +
                                   e.what() + "; severity filters treat the record as unscored",
                               "fix the vector or clear it to mark the record unscored"));
        }
    }
    return out;
}

std::vector<Diagnostic> rule_dangling_cross_reference(const LintInput& in, Severity sev) {
    std::vector<Diagnostic> out;
    if (in.corpus == nullptr) return out;
    std::set<kb::WeaknessId> known;
    for (const kb::Weakness& w : in.corpus->weaknesses()) known.insert(w.id);
    for (const kb::AttackPattern& p : in.corpus->patterns()) {
        for (kb::WeaknessId w : p.related_weaknesses) {
            if (known.contains(w)) continue;
            out.push_back(make("K004", sev, p.id.to_string(),
                               "references " + w.to_string() + ", which is absent from the "
                               "corpus; the pattern<->weakness<->vulnerability chain breaks "
                               "at this link",
                               "import the missing weakness or drop the reference"));
        }
    }
    for (const kb::Vulnerability& v : in.corpus->vulnerabilities()) {
        for (kb::WeaknessId w : v.weaknesses) {
            if (known.contains(w)) continue;
            out.push_back(make("K004", sev, v.id.to_string(),
                               "classified under " + w.to_string() + ", which is absent from "
                               "the corpus; weakness-level aggregation loses this record",
                               "import the missing weakness or drop the classification"));
        }
    }
    return out;
}

/// Missing parents and parent cycles in the CWE/CAPEC trees. A cycle is
/// reported once, on its smallest member id, so the diagnostic count is
/// stable however the cycle is entered.
template <typename Id, typename Record>
void check_hierarchy(const std::vector<Record>& records, std::string_view family,
                     Severity sev, std::vector<Diagnostic>& out) {
    std::map<Id, Id> parent_of;
    std::set<Id> known;
    for (const Record& r : records) known.insert(r.id);
    for (const Record& r : records)
        if (r.parent.value != 0) parent_of[r.id] = r.parent;
    for (const Record& r : records) {
        if (r.parent.value == 0) continue;
        if (!known.contains(r.parent)) {
            out.push_back(make("K005", sev, r.id.to_string(),
                               "parent " + r.parent.to_string() + " is absent from the corpus; "
                               "the " + std::string(family) + " hierarchy cannot abstract this "
                               "record to match a lower model fidelity",
                               "import the parent record or clear the parent link"));
            continue;
        }
        // Walk ancestors; the walk is bounded by the record count, so a
        // longer walk proves a cycle.
        Id slow = r.id;
        std::set<Id> seen{slow};
        bool cycle = false;
        while (true) {
            auto it = parent_of.find(slow);
            if (it == parent_of.end() || !known.contains(it->second)) break;
            slow = it->second;
            if (seen.contains(slow)) {
                cycle = true;
                break;
            }
            seen.insert(slow);
        }
        if (cycle && slow == r.id) { // report on the cycle's entry == member check below
            // Only the smallest id in the cycle reports, once.
            bool smallest = true;
            Id walk = parent_of.at(r.id);
            while (walk != r.id) {
                if (walk < r.id) {
                    smallest = false;
                    break;
                }
                walk = parent_of.at(walk);
            }
            if (smallest)
                out.push_back(make("K005", sev, r.id.to_string(),
                                   "parent links form a cycle in the " + std::string(family) +
                                       " hierarchy; ancestor walks would not terminate",
                                   "break the cycle by clearing one parent link"));
        }
    }
}

std::vector<Diagnostic> rule_broken_hierarchy(const LintInput& in, Severity sev) {
    std::vector<Diagnostic> out;
    if (in.corpus == nullptr) return out;
    check_hierarchy<kb::WeaknessId>(in.corpus->weaknesses(), "CWE", sev, out);
    check_hierarchy<kb::AttackPatternId>(in.corpus->patterns(), "CAPEC", sev, out);
    return out;
}

// -- consequence pass --------------------------------------------------------

std::vector<Diagnostic> rule_unknown_uca_controller(const LintInput& in, Severity sev) {
    std::vector<Diagnostic> out;
    if (in.model == nullptr || in.hazards == nullptr) return out;
    for (const safety::UnsafeControlAction& uca : in.hazards->ucas()) {
        if (in.model->find_component(uca.controller).has_value()) continue;
        out.push_back(make("C001", sev, uca.id,
                           "controller \"" + uca.controller + "\" names no component in the "
                           "model; every trace through this unsafe control action is lost",
                           "fix the controller name or add the component to the model"));
    }
    return out;
}

std::vector<Diagnostic> rule_untraceable_hazard(const LintInput& in, Severity sev) {
    std::vector<Diagnostic> out;
    if (in.model == nullptr || in.hazards == nullptr) return out;
    std::set<std::string_view> traceable;
    for (const safety::UnsafeControlAction& uca : in.hazards->ucas()) {
        if (!in.model->find_component(uca.controller).has_value()) continue;
        for (const std::string& h : uca.hazards) traceable.insert(h);
    }
    for (const safety::Hazard& h : in.hazards->hazards()) {
        if (traceable.contains(h.id)) continue;
        out.push_back(make("C002", sev, h.id,
                           "no unsafe control action with a controller in the model leads to "
                           "this hazard; it can never appear in a consequence trace",
                           "add the UCA that causes it, or map an existing UCA's controller "
                           "to a model component"));
    }
    return out;
}

std::vector<Diagnostic> rule_unmapped_vulnerable_component(const LintInput& in, Severity sev) {
    std::vector<Diagnostic> out;
    if (in.model == nullptr || in.hazards == nullptr || in.associations == nullptr) return out;
    // Components from which a controller of some UCA is reachable in the
    // undirected view: these can pivot into a physical consequence.
    graph::PropertyGraph g;
    std::map<std::string_view, graph::NodeId> node_of;
    for (const model::Component* c : live_components(*in.model)) node_of[c->name] = g.add_node(c->name);
    for (const model::Connector& k : in.model->connectors()) {
        if (!in.model->contains(k.from) || !in.model->contains(k.to)) continue;
        g.add_edge(node_of.at(in.model->component(k.from).name),
                   node_of.at(in.model->component(k.to).name));
    }
    std::vector<graph::NodeId> controllers;
    for (const safety::UnsafeControlAction& uca : in.hazards->ucas()) {
        auto it = node_of.find(uca.controller);
        if (it != node_of.end()) controllers.push_back(it->second);
    }
    std::set<graph::NodeId> mapped;
    for (graph::NodeId n : graph::reachable_from(g, controllers, graph::Direction::Undirected))
        mapped.insert(n);
    for (const search::ComponentAssociation& ca : in.associations->components) {
        if (ca.count(search::VectorClass::Vulnerability) == 0) continue;
        auto it = node_of.find(ca.component);
        if (it == node_of.end() || mapped.contains(it->second)) continue;
        out.push_back(make("C003", sev, ca.component,
                           "carries " +
                               std::to_string(ca.count(search::VectorClass::Vulnerability)) +
                               " associated vulnerabilities but has no path to any unsafe "
                               "control action's controller — the IT-vs-CPS gap: cyber "
                               "findings with no mapped physical consequence",
                           "extend the hazard model (UCAs) to cover this part of the "
                           "architecture"));
    }
    return out;
}

std::vector<Diagnostic> rule_missing_hazard_model(const LintInput& in, Severity sev) {
    std::vector<Diagnostic> out;
    if (in.hazards != nullptr || in.associations == nullptr) return out;
    const std::size_t vulns = in.associations->total(search::VectorClass::Vulnerability);
    if (vulns == 0) return out;
    std::string subject = "model";
    if (in.model != nullptr && !in.model->name().empty()) subject = in.model->name();
    out.push_back(make("C004", sev, std::move(subject),
                       strings::with_commas(vulns) + " vulnerabilities are associated but no "
                       "hazard model is attached; none of them can be traced to a physical "
                       "consequence",
                       "attach losses, hazards, and unsafe control actions (set_hazards)"));
    return out;
}

// -- flow pass ---------------------------------------------------------------
//
// The F rules are thin projections of flow::analyze() onto the diagnostic
// stream. Each rule runs the analysis itself — rules are pure functions
// with no shared state, which is what keeps the driver's fan-out
// synchronization-free; the fixpoints are linear in the model graph, so
// the duplicate work is noise next to the whole-corpus KB rules.

std::string two_places(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", v);
    return buf;
}

std::vector<Diagnostic> rule_tainted_hazard_path(const LintInput& in, Severity sev) {
    std::vector<Diagnostic> out;
    if (in.model == nullptr || in.associations == nullptr || in.hazards == nullptr) return out;
    const flow::FlowResult r = flow::analyze(*in.model, *in.associations, in.hazards);
    for (const flow::ComponentFlow& cf : r.components) {
        if (!cf.hazard_linked || cf.taint < flow::kHazardTaintError) continue;
        std::string hazards;
        for (const std::string& h : cf.influences) {
            if (!hazards.empty()) hazards += ", ";
            hazards += h;
        }
        out.push_back(make("F001", sev, cf.component,
                           "controller of unsafe control actions is reachable from an external "
                           "entry point with taint " + two_places(cf.taint) + " (>= " +
                               two_places(flow::kHazardTaintError) + "); an attacker can "
                               "plausibly drive " + (hazards.empty() ? "a hazard" : hazards),
                           "sever or attenuate the path (see the flow chokepoint ranking) or "
                           "remove the exploitable evidence on the components along it"));
    }
    return out;
}

std::vector<Diagnostic> rule_unattenuated_external_reach(const LintInput& in, Severity sev) {
    std::vector<Diagnostic> out;
    if (in.model == nullptr || in.associations == nullptr) return out;
    const flow::FlowResult r = flow::analyze(*in.model, *in.associations, in.hazards);
    for (const flow::ComponentFlow& cf : r.components) {
        if (cf.entry_point || cf.taint < flow::kUnattenuatedTaint) continue;
        out.push_back(make("F002", sev, cf.component,
                           "reachable from an external entry point with taint " +
                               two_places(cf.taint) + " (>= " +
                               two_places(flow::kUnattenuatedTaint) + ") at depth " +
                               std::to_string(cf.depth) + "; every hop on the way is highly "
                               "permeable, so external compromise barely attenuates here",
                           "insert a low-permeability component (no associated vectors) on the "
                           "path, or reduce this component's exposed attack surface"));
    }
    return out;
}

std::vector<Diagnostic> rule_single_chokepoint(const LintInput& in, Severity sev) {
    std::vector<Diagnostic> out;
    if (in.model == nullptr || in.associations == nullptr || in.hazards == nullptr) return out;
    const flow::FlowResult r = flow::analyze(*in.model, *in.associations, in.hazards);
    if (r.min_cut_size != 1) return out;
    for (const flow::Chokepoint& c : r.chokepoints) {
        if (!c.in_min_cut) continue;
        out.push_back(make("F003", sev, c.component,
                           "hardening this single component severs " +
                               std::to_string(c.severed) + " of " +
                               std::to_string(r.flows_total) + " externally-driven hazard "
                               "flows — the minimum entry->hazard cut is just this node",
                           "prioritize this component for hardening; it is the cheapest "
                           "defense point the architecture offers"));
    }
    return out;
}

} // namespace

const std::vector<Rule>& registry() {
    static const std::vector<Rule> rules = {
        {"M001", "duplicate-component-name", Pass::Model, Severity::Error,
         "name collisions conflate components in associations and traces",
         &rule_duplicate_component_name},
        {"M002", "dangling-connector", Pass::Model, Severity::Error,
         "edges into removed components crash or silently vanish in graph export",
         &rule_dangling_connector},
        {"M003", "self-loop-connector", Pass::Model, Severity::Warning,
         "self-loops add no attack path and usually indicate a mis-wired endpoint",
         &rule_self_loop},
        {"M004", "duplicate-link", Pass::Model, Severity::Warning,
         "duplicate edges inflate path counts and centrality",
         &rule_duplicate_link},
        {"M005", "empty-attribute", Pass::Model, Severity::Warning,
         "empty attribute values can never match an attack-vector record",
         &rule_empty_attribute},
        {"M006", "unreachable-component", Pass::Model, Severity::Warning,
         "components no entry point reaches never appear on an attack path",
         &rule_unreachable_component},
        {"M007", "no-entry-point", Pass::Model, Severity::Note,
         "without external-facing components the attack-surface views are empty",
         &rule_no_entry_point},
        {"K001", "duplicate-record-id", Pass::Kb, Severity::Error,
         "duplicate ids make lookups ambiguous and reindex() refuses the corpus",
         &rule_duplicate_record_id},
        {"K002", "malformed-platform", Pass::Kb, Severity::Error,
         "non-normalized CPE names can never match the exact-binding path",
         &rule_malformed_platform},
        {"K003", "invalid-cvss-vector", Pass::Kb, Severity::Error,
         "unparseable CVSS vectors silently downgrade records to unscored",
         &rule_invalid_cvss},
        {"K004", "dangling-cross-reference", Pass::Kb, Severity::Error,
         "references to absent records break the pattern<->weakness<->CVE chain",
         &rule_dangling_cross_reference},
        {"K005", "broken-hierarchy", Pass::Kb, Severity::Error,
         "missing parents and cycles break fidelity-matched abstraction walks",
         &rule_broken_hierarchy},
        {"C001", "unknown-uca-controller", Pass::Consequence, Severity::Warning,
         "a UCA whose controller is not modeled can never anchor a trace",
         &rule_unknown_uca_controller},
        {"C002", "untraceable-hazard", Pass::Consequence, Severity::Warning,
         "hazards no UCA reaches never appear in any consequence trace",
         &rule_untraceable_hazard},
        {"C003", "unmapped-vulnerable-component", Pass::Consequence, Severity::Warning,
         "vulnerability findings without a physical-consequence mapping are the paper's "
         "IT-vs-CPS gap",
         &rule_unmapped_vulnerable_component},
        {"C004", "missing-hazard-model", Pass::Consequence, Severity::Note,
         "associated vulnerabilities without any hazard model cannot be traced at all",
         &rule_missing_hazard_model},
        {"F001", "tainted-hazard-path", Pass::Flow, Severity::Error,
         "an external entry point that can drive an unsafe control action is the paper's "
         "core cyber-to-physical compromise path",
         &rule_tainted_hazard_path},
        {"F002", "unattenuated-external-reach", Pass::Flow, Severity::Warning,
         "deep components reached with barely-attenuated taint have no defensive depth",
         &rule_unattenuated_external_reach},
        {"F003", "single-chokepoint", Pass::Flow, Severity::Note,
         "a one-node minimum cut is the cheapest hardening opportunity the graph offers",
         &rule_single_chokepoint},
    };
    return rules;
}

const Rule* find_rule(std::string_view code) noexcept {
    for (const Rule& r : registry())
        if (r.code == code) return &r;
    return nullptr;
}

} // namespace cybok::lint
