#include "synth/scada.hpp"

namespace cybok::synth {

namespace {

using model::Attribute;
using model::AttributeKind;
using model::ChannelKind;
using model::ComponentId;
using model::ComponentType;
using model::Fidelity;
using model::SystemModel;

Attribute descriptor(std::string name, std::string value,
                     Fidelity f = Fidelity::Functional) {
    Attribute a;
    a.name = std::move(name);
    a.value = std::move(value);
    a.kind = AttributeKind::Descriptor;
    a.fidelity = f;
    return a;
}

Attribute platform_ref(std::string name, std::string value, kb::Platform platform) {
    Attribute a;
    a.name = std::move(name);
    a.value = std::move(value);
    a.kind = AttributeKind::PlatformRef;
    a.fidelity = Fidelity::Implementation;
    a.platform = std::move(platform);
    return a;
}

Attribute parameter(std::string name, std::string value) {
    Attribute a;
    a.name = std::move(name);
    a.value = std::move(value);
    a.kind = AttributeKind::Parameter;
    a.fidelity = Fidelity::Logical;
    return a;
}

} // namespace

model::SystemModel centrifuge_model() {
    SystemModel m("particle-separation-centrifuge",
                  "SCADA system for a temperature-sensitive particle separation "
                  "centrifuge (DSN 2020 demonstration)");

    ComponentId ws = m.add_component("Programming WS", ComponentType::Compute,
                                     "Controller of the centrifuge, programmed in NI "
                                     "LabVIEW, monitored by operators");
    m.component(ws).subsystem = "corporate network";
    m.component(ws).external_facing = true;
    m.set_attribute(ws, descriptor("role", "supervisory engineering workstation operator"));
    m.set_attribute(ws, platform_ref("os", "Windows 7",
                                     {kb::PlatformPart::OperatingSystem, "microsoft",
                                      "windows_7", ""}));
    m.set_attribute(ws, platform_ref("software", "LabVIEW",
                                     {kb::PlatformPart::Application, "ni", "labview", ""}));

    ComponentId fw = m.add_component("Control firewall", ComponentType::Network,
                                     "Isolates the corporate network from the control "
                                     "network");
    m.component(fw).subsystem = "control network";
    m.set_attribute(fw, descriptor("role", "network segmentation appliance firewall"));
    m.set_attribute(fw, platform_ref("platform", "Cisco ASA",
                                     {kb::PlatformPart::Hardware, "cisco", "asa", ""}));

    ComponentId sis = m.add_component("SIS platform", ComponentType::Controller,
                                      "Redundant safety monitor for the centrifuge "
                                      "controller");
    m.component(sis).subsystem = "control network";
    m.set_attribute(sis, descriptor("role",
                                    "redundant safety instrumented monitor plc trip logic"));
    m.set_attribute(sis, platform_ref("hardware", "NI cRIO 9064",
                                      {kb::PlatformPart::Hardware, "ni", "crio_9064", ""}));
    m.set_attribute(sis, platform_ref("os", "NI RT Linux OS",
                                      {kb::PlatformPart::OperatingSystem, "ni", "rt_linux",
                                       ""}));

    ComponentId bpcs = m.add_component("BPCS platform", ComponentType::Controller,
                                       "Main centrifuge controller interfaced through "
                                       "MODBUS");
    m.component(bpcs).subsystem = "control network";
    m.set_attribute(bpcs, descriptor("role",
                                     "basic process control scada controller modbus "
                                     "interface"));
    m.set_attribute(bpcs, platform_ref("hardware", "NI cRIO 9063",
                                       {kb::PlatformPart::Hardware, "ni", "crio_9063", ""}));
    m.set_attribute(bpcs, platform_ref("os", "NI RT Linux OS",
                                       {kb::PlatformPart::OperatingSystem, "ni", "rt_linux",
                                        ""}));

    ComponentId temp = m.add_component("Temperature sensor", ComponentType::Sensor,
                                       "Precision passive temperature probe monitoring "
                                       "the solution");
    m.component(temp).subsystem = "field devices";
    m.set_attribute(temp, descriptor("role", "passive analog temperature measurement probe"));
    m.set_attribute(temp, parameter("accuracy", "plus-minus 0.2 celsius"));

    ComponentId cf = m.add_component("Centrifuge", ComponentType::PhysicalProcess,
                                     "Precision variable speed centrifuge");
    m.component(cf).subsystem = "field devices";
    m.set_attribute(cf, descriptor("role", "variable speed rotor separation process",
                                   Fidelity::Conceptual));
    m.set_attribute(cf, parameter("max-speed", "10000 rpm"));
    m.set_attribute(cf, parameter("regulation", "plus-minus 1 rpm of set point"));

    m.connect(ws, fw, "engineering traffic", ChannelKind::Ethernet, /*bidirectional=*/true);
    m.connect(fw, bpcs, "MODBUS/TCP", ChannelKind::Fieldbus, /*bidirectional=*/true);
    m.connect(bpcs, sis, "status exchange", ChannelKind::Serial, /*bidirectional=*/true);
    m.connect(bpcs, cf, "drive command", ChannelKind::AnalogSignal);
    m.connect(sis, cf, "safety trip", ChannelKind::AnalogSignal);
    m.connect(temp, bpcs, "temperature feedback", ChannelKind::AnalogSignal);
    m.connect(temp, sis, "temperature feedback", ChannelKind::AnalogSignal);

    return m;
}

safety::HazardModel centrifuge_hazards() {
    safety::HazardModel hm;
    hm.add(safety::Loss{"L-1", "Loss of life or injury from fire or explosion"});
    hm.add(safety::Loss{"L-2", "Loss of the product batch"});
    hm.add(safety::Loss{"L-3", "Damage to the centrifuge equipment"});

    hm.add(safety::Hazard{"H-1",
                          "Solution temperature exceeds the chemical stability limit",
                          {"L-1", "L-3"}});
    hm.add(safety::Hazard{"H-2",
                          "Solution temperature below the productive separation range",
                          {"L-2"}});
    hm.add(safety::Hazard{"H-3",
                          "Rotor speed deviates more than 20 rpm from the set point",
                          {"L-2"}});
    hm.add(safety::Hazard{"H-4",
                          "Safety monitor unable to trip the centrifuge on demand",
                          {"L-1", "L-3"}});

    hm.add(safety::UnsafeControlAction{
        "UCA-1", "BPCS platform", "set rotor speed", safety::UcaType::Providing,
        "speed command outside the productive tolerance while separation is running",
        {"H-3"}});
    hm.add(safety::UnsafeControlAction{
        "UCA-2", "BPCS platform", "set heater duty", safety::UcaType::Providing,
        "heating commanded while solution is at the stability limit", {"H-1"}});
    hm.add(safety::UnsafeControlAction{
        "UCA-3", "BPCS platform", "set heater duty", safety::UcaType::NotProviding,
        "heating not commanded while solution is below the separation range", {"H-2"}});
    hm.add(safety::UnsafeControlAction{
        "UCA-4", "SIS platform", "trip centrifuge", safety::UcaType::NotProviding,
        "trip withheld while temperature or speed is beyond safe limits — the "
        "Triton-style suppression of the safety system",
        {"H-4", "H-1"}});
    hm.add(safety::UnsafeControlAction{
        "UCA-5", "SIS platform", "trip centrifuge", safety::UcaType::WrongTiming,
        "trip raised too late after a sustained over-temperature condition", {"H-1"}});
    return hm;
}

model::SystemModel centrifuge_model_hardened() {
    SystemModel m = centrifuge_model();

    // Swap the Programming WS operating system for a hardened RTOS that the
    // vulnerability corpus has no mass for, and note the application
    // allow-listing; this is the edit an analyst makes in the dashboard.
    model::ComponentId ws = *m.find_component("Programming WS");
    m.set_attribute(ws, platform_ref("os", "Hardened engineering RTOS",
                                     {kb::PlatformPart::OperatingSystem, "greenhills",
                                      "integrity_rtos", ""}));
    // Hardening measures are configuration parameters, not searchable
    // descriptors — free text here would itself attract lexical matches
    // (the NLP-sensitivity the paper warns about).
    m.set_attribute(ws, parameter("hardening", "application allow-list, locked image"));

    // Tighten the firewall story: engineering access is one-way into the
    // control network (no return initiation).
    model::ComponentId fw = *m.find_component("Control firewall");
    m.set_attribute(fw, parameter("policy", "deny-by-default, one-way engineering sessions"));
    return m;
}

model::SystemModel uav_model() {
    SystemModel m("uav-control-system",
                  "Small unmanned aircraft: ground station, datalink, autopilot, "
                  "navigation sensors, and control surfaces");

    ComponentId gcs = m.add_component("Ground control station", ComponentType::Compute,
                                      "Operator laptop running the mission planner");
    m.component(gcs).subsystem = "ground segment";
    m.component(gcs).external_facing = true;
    m.set_attribute(gcs, descriptor("role", "mission planning operator console"));
    m.set_attribute(gcs, platform_ref("os", "Windows 7",
                                      {kb::PlatformPart::OperatingSystem, "microsoft",
                                       "windows_7", ""}));

    ComponentId radio = m.add_component("Datalink radio", ComponentType::Network,
                                        "Bidirectional command-and-telemetry radio");
    m.component(radio).subsystem = "link segment";
    m.component(radio).external_facing = true;
    m.set_attribute(radio, descriptor("role", "wireless radio command telemetry datalink"));

    ComponentId ap = m.add_component("Autopilot", ComponentType::Controller,
                                     "Flight controller executing the control loops");
    m.component(ap).subsystem = "air segment";
    m.set_attribute(ap, descriptor("role", "flight control loop autopilot firmware"));
    m.set_attribute(ap, platform_ref("os", "NI RT Linux OS",
                                     {kb::PlatformPart::OperatingSystem, "ni", "rt_linux",
                                      ""}));

    ComponentId gps = m.add_component("GPS receiver", ComponentType::Sensor,
                                      "Satellite navigation receiver");
    m.component(gps).subsystem = "air segment";
    m.set_attribute(gps, descriptor("role", "satellite navigation position sensor radio"));

    ComponentId imu = m.add_component("IMU", ComponentType::Sensor,
                                      "Inertial measurement unit");
    m.component(imu).subsystem = "air segment";
    m.set_attribute(imu, descriptor("role", "inertial attitude rate sensor"));

    ComponentId servos = m.add_component("Control surfaces", ComponentType::Actuator,
                                         "Servo-driven aerodynamic control surfaces");
    m.component(servos).subsystem = "air segment";
    m.set_attribute(servos, descriptor("role", "servo actuator aerodynamic surface",
                                       Fidelity::Conceptual));

    m.connect(gcs, radio, "command uplink", ChannelKind::Serial, /*bidirectional=*/true);
    m.connect(radio, ap, "command stream", ChannelKind::Wireless, /*bidirectional=*/true);
    m.connect(gps, ap, "position feedback", ChannelKind::Serial);
    m.connect(imu, ap, "attitude feedback", ChannelKind::AnalogSignal);
    m.connect(ap, servos, "surface deflection", ChannelKind::AnalogSignal);
    return m;
}

safety::HazardModel uav_hazards() {
    safety::HazardModel hm;
    hm.add(safety::Loss{"L-1", "Loss of the aircraft"});
    hm.add(safety::Loss{"L-2", "Injury to people on the ground"});
    hm.add(safety::Loss{"L-3", "Mission failure"});

    hm.add(safety::Hazard{"H-1", "Aircraft departs the approved flight volume",
                          {"L-2", "L-3"}});
    hm.add(safety::Hazard{"H-2", "Aircraft enters an unrecoverable attitude", {"L-1", "L-2"}});
    hm.add(safety::Hazard{"H-3", "Aircraft position estimate diverges from truth",
                          {"L-1", "L-3"}});

    hm.add(safety::UnsafeControlAction{
        "UCA-1", "Autopilot", "deflect control surfaces", safety::UcaType::Providing,
        "deflection commanded beyond the recoverable envelope", {"H-2"}});
    hm.add(safety::UnsafeControlAction{
        "UCA-2", "Autopilot", "navigate to waypoint", safety::UcaType::Providing,
        "waypoint accepted outside the approved flight volume", {"H-1"}});
    hm.add(safety::UnsafeControlAction{
        "UCA-3", "Autopilot", "update position estimate", safety::UcaType::Providing,
        "spoofed navigation input accepted into the estimator", {"H-3"}});
    return hm;
}

} // namespace cybok::synth
