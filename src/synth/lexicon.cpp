#include "synth/lexicon.hpp"

#include <array>

namespace cybok::synth {

std::string_view domain_name(Domain d) noexcept {
    switch (d) {
        case Domain::Generic: return "generic";
        case Domain::LinuxOs: return "linux-os";
        case Domain::WindowsOs: return "windows-os";
        case Domain::NetAppliance: return "net-appliance";
        case Domain::Ics: return "ics";
        case Domain::Web: return "web";
        case Domain::Embedded: return "embedded";
        case Domain::Wireless: return "wireless";
    }
    return "?";
}

namespace {

// Tags are the ONLY channel through which these tokens enter generated
// pattern/weakness text; Table 1 counts depend on that exclusivity.
constexpr std::array<std::string_view, 2> kLinuxTags{"linux", "kernel"};
constexpr std::array<std::string_view, 2> kWindowsTags{"windows", "registry"};
constexpr std::array<std::string_view, 3> kApplianceTags{"cisco", "asa", "appliance"};
constexpr std::array<std::string_view, 4> kIcsTags{"scada", "plc", "modbus", "hmi"};
constexpr std::array<std::string_view, 3> kWebTags{"http", "browser", "javascript"};
constexpr std::array<std::string_view, 2> kEmbeddedTags{"firmware", "bootloader"};
constexpr std::array<std::string_view, 3> kWirelessTags{"wireless", "radio", "bluetooth"};

constexpr std::array<std::string_view, 40> kNouns{
    "overflow",      "injection",     "bypass",        "disclosure",   "corruption",
    "escalation",    "traversal",     "spoofing",      "hijacking",    "tampering",
    "exhaustion",    "misconfiguration", "race",       "deadlock",     "underflow",
    "truncation",    "confusion",     "fixation",      "forgery",      "redirection",
    "interception",  "replay",        "flooding",      "enumeration",  "poisoning",
    "smuggling",     "splitting",     "desynchronization", "exposure", "leakage",
    "manipulation",  "substitution",  "downgrade",     "rollback",     "amplification",
    "starvation",    "collision",     "preimage",      "oracle",       "sidechannel",
};

constexpr std::array<std::string_view, 28> kVerbs{
    "execute",   "inject",    "overwrite",  "read",      "modify",   "delete",
    "intercept", "redirect",  "escalate",   "bypass",    "exhaust",  "corrupt",
    "disclose",  "spoof",     "hijack",     "tamper",    "replay",   "enumerate",
    "poison",    "truncate",  "desynchronize", "leak",   "manipulate", "substitute",
    "downgrade", "amplify",   "starve",     "flood",
};

constexpr std::array<std::string_view, 36> kObjects{
    "buffer",        "command",      "query",        "packet",      "message",
    "credential",    "token",        "session",      "certificate", "handshake",
    "pointer",       "index",        "header",       "parameter",   "argument",
    "payload",       "stream",       "channel",      "interface",   "service",
    "daemon",        "driver",       "library",      "module",      "configuration",
    "privilege",     "permission",   "authentication", "authorization", "validation",
    "sanitization",  "serialization", "memory",      "stack",       "heap",
    "filesystem",
};

constexpr std::array<std::string_view, 12> kConsequences{
    "integrity loss of controlled data",
    "availability loss of the affected service",
    "confidentiality loss of stored records",
    "arbitrary code execution in the affected context",
    "denial of service against dependent functions",
    "unauthorized privilege acquisition",
    "bypass of a protection mechanism",
    "exposure of sensitive configuration",
    "persistent corruption of state",
    "loss of audit trail",
    "unexpected process termination",
    "degraded quality of service",
};

// Product identifiers the demonstration model queries with; these must
// never leak into generated pattern/weakness text.
constexpr std::array<std::string_view, 10> kReserved{
    "ni", "rt", "crio", "labview", "9063", "9064", "labview", "7", "microsoft", "platform",
};

} // namespace

std::span<const std::string_view> domain_tags(Domain d) noexcept {
    switch (d) {
        case Domain::Generic: return {};
        case Domain::LinuxOs: return kLinuxTags;
        case Domain::WindowsOs: return kWindowsTags;
        case Domain::NetAppliance: return kApplianceTags;
        case Domain::Ics: return kIcsTags;
        case Domain::Web: return kWebTags;
        case Domain::Embedded: return kEmbeddedTags;
        case Domain::Wireless: return kWirelessTags;
    }
    return {};
}

std::span<const std::string_view> security_nouns() noexcept { return kNouns; }
std::span<const std::string_view> security_verbs() noexcept { return kVerbs; }
std::span<const std::string_view> security_objects() noexcept { return kObjects; }
std::span<const std::string_view> consequence_phrases() noexcept { return kConsequences; }
std::span<const std::string_view> reserved_product_tokens() noexcept { return kReserved; }

std::string make_sentence(Rng& rng, std::span<const std::string_view> tag_tokens) {
    // Zipf-sampled vocabulary gives realistic term-frequency skew.
    std::string out = "An adversary can ";
    out += kVerbs[rng.zipf(kVerbs.size(), 0.8)];
    out += " the ";
    out += kObjects[rng.zipf(kObjects.size(), 0.8)];
    out += " ";
    out += kNouns[rng.zipf(kNouns.size(), 0.8)];
    if (!tag_tokens.empty()) {
        out += " on ";
        out += tag_tokens[static_cast<std::size_t>(rng.uniform(0, tag_tokens.size() - 1))];
        out += " targets";
    }
    out += ", leading to ";
    out += kConsequences[static_cast<std::size_t>(rng.uniform(0, kConsequences.size() - 1))];
    out += ".";
    return out;
}

std::string make_title(Rng& rng, std::span<const std::string_view> tag_tokens) {
    std::string out;
    if (!tag_tokens.empty()) {
        std::string_view tag =
            tag_tokens[static_cast<std::size_t>(rng.uniform(0, tag_tokens.size() - 1))];
        out += tag;
        out += " ";
    }
    out += kObjects[rng.zipf(kObjects.size(), 0.8)];
    out += " ";
    out += kNouns[rng.zipf(kNouns.size(), 0.8)];
    // Capitalize first letter for a record-title look.
    if (!out.empty() && out[0] >= 'a' && out[0] <= 'z')
        out[0] = static_cast<char>(out[0] - 'a' + 'A');
    return out;
}

} // namespace cybok::synth
