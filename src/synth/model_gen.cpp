#include "synth/model_gen.hpp"

#include <array>

namespace cybok::synth {

namespace {

constexpr std::array<std::string_view, 10> kRolePhrases{
    "supervisory operator console",
    "historian data aggregation service",
    "network segmentation appliance firewall",
    "protocol gateway fieldbus bridge",
    "basic process control scada controller",
    "redundant safety instrumented monitor plc",
    "remote terminal telemetry unit",
    "engineering maintenance laptop",
    "analog measurement sensor probe",
    "variable speed drive actuator",
};

model::ComponentType type_for_layer(std::size_t layer, std::size_t layers, Rng& rng) {
    if (layer == 0)
        return rng.chance(0.5) ? model::ComponentType::Compute
                               : model::ComponentType::HumanInterface;
    if (layer + 1 == layers)
        return rng.chance(0.5) ? model::ComponentType::Actuator
                               : model::ComponentType::PhysicalProcess;
    if (layer + 2 == layers)
        return rng.chance(0.6) ? model::ComponentType::Controller
                               : model::ComponentType::Sensor;
    return rng.chance(0.4) ? model::ComponentType::Network : model::ComponentType::Compute;
}

} // namespace

model::SystemModel generate_model(const ModelGenConfig& config) {
    if (config.layers == 0 || config.components < config.layers)
        throw ValidationError("model generator: need at least one component per layer");

    Rng rng(config.seed);
    const std::vector<ProductSpec> catalog =
        config.products.empty() ? CorpusProfile::scada_demo().products : config.products;

    model::SystemModel m("synthetic-architecture",
                         "generated layered architecture (" +
                             std::to_string(config.components) + " components)");

    // Distribute components across layers as evenly as possible.
    std::vector<std::vector<model::ComponentId>> layer_members(config.layers);
    for (std::size_t i = 0; i < config.components; ++i) {
        std::size_t layer = i % config.layers;
        model::ComponentType type = type_for_layer(layer, config.layers, rng);
        model::ComponentId id = m.add_component(
            "C" + std::to_string(i) + "-L" + std::to_string(layer), type);
        model::Component& c = m.component(id);
        c.subsystem = "layer-" + std::to_string(layer);
        c.external_facing = (layer == 0);

        model::Attribute role;
        role.name = "role";
        role.value = std::string(kRolePhrases[rng.zipf(kRolePhrases.size(), 0.7)]);
        role.kind = model::AttributeKind::Descriptor;
        role.fidelity = model::Fidelity::Functional;
        m.set_attribute(id, std::move(role));

        if (rng.chance(config.platform_ref_prob)) {
            const ProductSpec& spec = catalog[rng.uniform(0, catalog.size() - 1)];
            model::Attribute ref;
            ref.name = "platform";
            ref.value = spec.display;
            ref.kind = model::AttributeKind::PlatformRef;
            ref.fidelity = model::Fidelity::Implementation;
            ref.platform = spec.platform;
            m.set_attribute(id, std::move(ref));
        }
        layer_members[layer].push_back(id);
    }

    // Forward edges between consecutive layers.
    for (std::size_t layer = 0; layer + 1 < config.layers; ++layer) {
        for (model::ComponentId from : layer_members[layer]) {
            const auto& next = layer_members[layer + 1];
            std::size_t fanout = static_cast<std::size_t>(
                rng.uniform(1, std::min<std::uint64_t>(3, next.size())));
            std::vector<std::size_t> targets = rng.sample_indices(next.size(), fanout);
            for (std::size_t t : targets) {
                bool bidir = rng.chance(0.5);
                m.connect(from, next[t], "link", model::ChannelKind::Ethernet, bidir);
            }
        }
    }
    return m;
}

} // namespace cybok::synth
