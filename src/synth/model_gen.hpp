// Synthetic architecture generation for scaling benchmarks: layered
// architectures (enterprise -> DMZ -> control -> field) of configurable
// size, with attributes drawn from a product catalog so that association
// workloads look like real models rather than uniform noise.

#pragma once

#include "model/system_model.hpp"
#include "synth/corpus_gen.hpp"

namespace cybok::synth {

struct ModelGenConfig {
    std::uint64_t seed = 11;
    std::size_t components = 50;
    std::size_t layers = 4;
    /// Probability that a component carries a PlatformRef attribute drawn
    /// from `products` (in addition to its descriptor).
    double platform_ref_prob = 0.6;
    /// Product catalog for PlatformRefs; defaults (empty) to the
    /// scada_demo() catalog.
    std::vector<ProductSpec> products;
};

/// Generate a deterministic layered architecture. Layer 0 components are
/// external-facing; each component connects forward to 1..3 components of
/// the next layer; the last layer contains the physical processes.
[[nodiscard]] model::SystemModel generate_model(const ModelGenConfig& config);

} // namespace cybok::synth
