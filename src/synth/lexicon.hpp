// Controlled vocabularies for the synthetic corpus generator.
//
// The generator must reproduce the *shape* of matching against real MITRE
// data: domain-specific tokens ("linux", "windows", "modbus") appear in a
// controlled number of records, generic security prose appears everywhere,
// and niche product identifiers ("labview", "crio", "9063") never appear
// in attack-pattern or weakness text at all. Keeping the vocabularies
// disjoint by construction is what makes the Table 1 reproduction
// deterministic instead of accidental.

#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace cybok::synth {

/// Technology domains a corpus record (or product) can belong to.
enum class Domain : std::uint8_t {
    Generic,      ///< no domain tag — plain software security prose
    LinuxOs,      ///< tagged with "linux" vocabulary
    WindowsOs,    ///< tagged with "windows" vocabulary
    NetAppliance, ///< firewalls / routers ("cisco", "asa", "appliance")
    Ics,          ///< industrial control ("scada", "plc", "modbus", "hmi")
    Web,          ///< web applications
    Embedded,     ///< embedded firmware (no product identifiers)
    Wireless,     ///< radio links
};
[[nodiscard]] std::string_view domain_name(Domain d) noexcept;
inline constexpr std::size_t kDomainCount = 8;

/// Tag tokens woven into records of a domain. Generic returns an empty
/// span. These tokens appear in corpus text *only* through tagging.
[[nodiscard]] std::span<const std::string_view> domain_tags(Domain d) noexcept;

/// Generic security nouns/verbs/qualifiers used to synthesize record
/// prose. Guaranteed disjoint from all domain tags and from the reserved
/// product identifiers below.
[[nodiscard]] std::span<const std::string_view> security_nouns() noexcept;
[[nodiscard]] std::span<const std::string_view> security_verbs() noexcept;
[[nodiscard]] std::span<const std::string_view> security_objects() noexcept;
[[nodiscard]] std::span<const std::string_view> consequence_phrases() noexcept;

/// Tokens that must never appear in generated pattern/weakness text
/// (product identifiers the demo model queries with). Used by tests to
/// verify the disjointness invariant.
[[nodiscard]] std::span<const std::string_view> reserved_product_tokens() noexcept;

/// Compose a pseudo-sentence: "<verb phrase> <noun> in <object> <tags>".
/// Deterministic given the Rng state. `tag_tokens` (possibly empty) are
/// woven into the sentence.
[[nodiscard]] std::string make_sentence(Rng& rng,
                                        std::span<const std::string_view> tag_tokens);

/// Short noun-phrase title like "Unauthenticated buffer overflow".
[[nodiscard]] std::string make_title(Rng& rng, std::span<const std::string_view> tag_tokens);

} // namespace cybok::synth
