// Deterministic synthetic MITRE-style corpus generation.
//
// The paper's prototype consumes the CAPEC, CWE, and CVE/NVD databases.
// Those are external artifacts, so this module generates a corpus with the
// same schema, cross-reference structure, and — crucially — the same
// *matching shape*:
//
//  * per-product vulnerability volumes are specified exactly (an OS
//    platform drowns in thousands of CVEs, a niche lab package has six);
//  * the number of attack-pattern / weakness records carrying each domain
//    vocabulary is specified exactly (so "NI RT Linux OS" matches tens of
//    patterns/weaknesses while "NI cRIO 9063" matches none);
//  * a fixed set of *anchor* records with real MITRE numbers (CWE-78, OS
//    command injection, CAPEC-88, ...) is always emitted so the paper's
//    qualitative findings (the Triton-style BPCS/SIS scenario) reproduce
//    verbatim.
//
// Everything is a pure function of (profile, seed).

#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "kb/corpus.hpp"
#include "synth/lexicon.hpp"

namespace cybok::synth {

/// A product the corpus knows about, with its calibrated CVE volume.
struct ProductSpec {
    std::string display;   ///< human name as it appears in a model ("NI RT Linux OS")
    kb::Platform platform; ///< structured name (version empty = family)
    Domain domain = Domain::Generic;
    std::size_t cve_count = 0;
};

/// Exact number of generated records tagged with a domain's vocabulary.
struct DomainPlan {
    std::size_t patterns = 0;
    std::size_t weaknesses = 0;
};

/// Full generation profile.
struct CorpusProfile {
    std::uint64_t seed = 20200629; ///< DSN 2020 vintage by default
    std::size_t pattern_count = 550; ///< CAPEC-scale
    std::size_t weakness_count = 900; ///< CWE-scale
    /// Exact tagged-record counts per domain; remaining records are
    /// Generic. Sum of plants must not exceed the totals above.
    std::map<Domain, DomainPlan> plants;
    std::vector<ProductSpec> products;
    /// Emit the fixed anchor records (real CWE/CAPEC numbers).
    bool include_anchors = true;

    /// The profile calibrated to reproduce the paper's Table 1 for the
    /// particle-separation-centrifuge SCADA model.
    [[nodiscard]] static CorpusProfile scada_demo();

    /// A size-scaled profile for throughput benchmarks: `factor` scales
    /// record counts and per-product volumes (>= 0.01).
    [[nodiscard]] static CorpusProfile scaled(double factor, std::uint64_t seed = 7);
};

/// Generate a corpus from a profile. The result is reindexed and ready.
/// Throws ValidationError if the profile is inconsistent (plants exceed
/// totals, duplicate products).
[[nodiscard]] kb::Corpus generate_corpus(const CorpusProfile& profile);

/// The anchor weaknesses/patterns emitted when include_anchors is set.
/// Exposed so tests and the safety layer can reference stable ids.
[[nodiscard]] std::vector<kb::Weakness> anchor_weaknesses();
[[nodiscard]] std::vector<kb::AttackPattern> anchor_patterns();

/// Id constants for anchors the demo scenario references.
inline constexpr std::uint32_t kCweOsCommandInjection = 78;
inline constexpr std::uint32_t kCweImproperInputValidation = 20;
inline constexpr std::uint32_t kCweMissingAuthentication = 306;
inline constexpr std::uint32_t kCweCleartextTransmission = 319;
inline constexpr std::uint32_t kCapecCommandInjection = 88;
inline constexpr std::uint32_t kCapecProtocolManipulation = 272;

} // namespace cybok::synth
