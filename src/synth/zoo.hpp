// The architecture zoo: seeded, deterministic generators for CPS domains
// beyond the layered default — the workload diversity the paper's companion
// studies name (the 2017 model-based approach analyzes a UAV flight stack;
// the Black Cat visualization paper works over large heterogeneous
// topologies). Each generator is a pure function of its config and emits a
// complete system: the architectural model (domain-appropriate topology —
// buses, rings, redundant channels, field-device fans — with entry-point
// annotations and a varied fidelity mix) plus a matching STPA hazard model
// whose unsafe control actions name real generated controllers, so the
// flow pass and attack-path search have hazard-linked targets to reach.
//
// Determinism contract: generate_zoo_system(config) is bit-identical for
// equal configs regardless of the calling thread or how many sibling
// systems are being generated concurrently (the fleet layer fans systems
// across a ThreadPool and relies on this; tests/test_zoo.cpp proves it).

#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "model/system_model.hpp"
#include "safety/hazards.hpp"
#include "synth/corpus_gen.hpp"

namespace cybok::synth {

/// The four zoo domains. Wire/CLI names are lowercase ("uav", "automotive",
/// "grid", "water").
enum class ZooDomain : std::uint8_t {
    Uav,        ///< UAV flight stack: GCS, redundant datalinks, autopilot, sensor fan
    Automotive, ///< CAN/ECU network: bus segments bridged by a gateway, ECU fans
    Grid,       ///< smart-grid substation: station-bus ring, IEDs, merging units
    Water,      ///< water-treatment plant: staged process chain, per-stage PLCs
};
[[nodiscard]] std::string_view zoo_domain_name(ZooDomain d) noexcept;
[[nodiscard]] std::optional<ZooDomain> parse_zoo_domain(std::string_view name) noexcept;
/// All four domains in enum order (iteration helper for fleets and tests).
[[nodiscard]] const std::vector<ZooDomain>& all_zoo_domains();

/// Component-count bounds every generator accepts (inclusive).
inline constexpr std::size_t kZooMinComponents = 10;
inline constexpr std::size_t kZooMaxComponents = 10000;

struct ZooConfig {
    ZooDomain domain = ZooDomain::Uav;
    std::uint64_t seed = 11;
    /// Exact live-component count of the generated model, in
    /// [kZooMinComponents, kZooMaxComponents].
    std::size_t components = 50;
    /// Probability that a component carries a PlatformRef attribute
    /// (Implementation fidelity) drawn from `products`.
    double platform_ref_prob = 0.6;
    /// Probability that a component carries an engineering parameter
    /// (Logical fidelity) beside its descriptor — the fidelity-mix knob.
    double parameter_prob = 0.5;
    /// Product catalog for PlatformRefs; defaults (empty) to the
    /// scada_demo() catalog. Picks are biased toward the domain's natural
    /// product families (ICS gear for grid/water, embedded for UAV/auto).
    std::vector<ProductSpec> products;
};

/// One generated system: the model plus its matching hazard model. Both
/// validate cleanly (model.validate() and hazards.validate() are empty)
/// for every config the bounds admit.
struct ZooSystem {
    model::SystemModel model;
    safety::HazardModel hazards;
};

/// The deterministic name a config generates under ("zoo-uav-s11-n50") —
/// also the model's name. Exposed so the fleet layer can report a system
/// that failed to generate (fault injection) without having it.
[[nodiscard]] std::string zoo_system_name(const ZooConfig& config);

/// Generate one system. Throws ValidationError when `components` is out of
/// bounds. Fault site `synth.zoo.gen` fires here (degradation contract:
/// the fleet layer records the per-system failure and completes the run).
[[nodiscard]] ZooSystem generate_zoo_system(const ZooConfig& config);

} // namespace cybok::synth
