#include "synth/zoo.hpp"

#include <array>

#include "util/fault.hpp"
#include "util/rng.hpp"

namespace cybok::synth {

namespace {

using model::Attribute;
using model::AttributeKind;
using model::ChannelKind;
using model::ComponentId;
using model::ComponentType;
using model::Fidelity;

constexpr std::array<std::string_view, 4> kDomainNames{"uav", "automotive", "grid", "water"};

/// Engineering parameters sprinkled at Logical fidelity — the mid-lifecycle
/// information layer between the Functional descriptors and the
/// Implementation platform refs.
constexpr std::array<std::array<std::string_view, 2>, 6> kParameters{{
    {"update-rate", "50 Hz control loop"},
    {"watchdog-timeout", "250 ms supervision window"},
    {"power-budget", "12 W continuous draw"},
    {"redundancy", "dual channel hot standby"},
    {"network-segment", "isolated vlan with acl"},
    {"maintenance-port", "vendor service interface enabled"},
}};

constexpr std::array<std::string_view, 8> kUavRoles{
    "autopilot flight control computer",
    "command and control telemetry radio link",
    "inertial navigation measurement sensor",
    "ground station operator console",
    "mission payload data processor",
    "electronic speed controller actuator drive",
    "onboard companion compute module",
    "firmware over the air update service",
};

constexpr std::array<std::string_view, 8> kAutomotiveRoles{
    "engine control unit embedded controller",
    "controller area network bus gateway",
    "diagnostic maintenance interface port",
    "telematics remote connectivity unit",
    "brake by wire actuator controller",
    "infotainment head unit with wireless interface",
    "body control module firmware",
    "wheel speed measurement sensor",
};

constexpr std::array<std::string_view, 8> kGridRoles{
    "protection relay intelligent electronic device",
    "substation automation remote terminal unit",
    "station bus network switch appliance",
    "supervisory scada operator interface",
    "merging unit sampled value publisher",
    "circuit breaker trip actuator",
    "corporate network segmentation firewall",
    "time synchronization grandmaster clock service",
};

constexpr std::array<std::string_view, 8> kWaterRoles{
    "programmable logic controller process control",
    "supervisory scada data acquisition server",
    "chemical dosing pump actuator drive",
    "turbidity and chlorine measurement sensor probe",
    "historian trend aggregation service",
    "plant operator human machine interface",
    "engineering maintenance laptop workstation",
    "remote pumping station telemetry unit",
};

/// Product-family bias per domain, so a grid substation leans on ICS gear
/// while a UAV leans on embedded/RTOS products. A 30% escape hatch keeps
/// the long tail (any catalog product can appear anywhere).
std::vector<Domain> preferred_domains(ZooDomain d) {
    switch (d) {
    case ZooDomain::Uav: return {Domain::Embedded, Domain::Wireless, Domain::LinuxOs};
    case ZooDomain::Automotive: return {Domain::Embedded, Domain::Wireless};
    case ZooDomain::Grid: return {Domain::Ics, Domain::NetAppliance};
    case ZooDomain::Water: return {Domain::Ics, Domain::WindowsOs, Domain::Web};
    }
    return {};
}

std::span<const std::string_view> roles_for(ZooDomain d) {
    switch (d) {
    case ZooDomain::Uav: return kUavRoles;
    case ZooDomain::Automotive: return kAutomotiveRoles;
    case ZooDomain::Grid: return kGridRoles;
    case ZooDomain::Water: return kWaterRoles;
    }
    return kUavRoles;
}

/// Shared construction state + the attribute policy (the fidelity mix).
struct Builder {
    const ZooConfig& config;
    Rng rng;
    model::SystemModel m;
    std::vector<ProductSpec> catalog;
    std::vector<Domain> preferred;
    std::span<const std::string_view> roles;

    Builder(const ZooConfig& cfg, std::string name, std::string description)
        : config(cfg),
          rng(Rng(cfg.seed).fork(stable_hash(zoo_domain_name(cfg.domain)))),
          m(std::move(name), std::move(description)),
          catalog(cfg.products.empty() ? CorpusProfile::scada_demo().products : cfg.products),
          preferred(preferred_domains(cfg.domain)),
          roles(roles_for(cfg.domain)) {}

    const ProductSpec& pick_product() {
        const bool biased = rng.chance(0.7);
        if (biased && !preferred.empty()) {
            std::vector<std::size_t> idx;
            for (std::size_t i = 0; i < catalog.size(); ++i)
                for (Domain d : preferred)
                    if (catalog[i].domain == d) {
                        idx.push_back(i);
                        break;
                    }
            if (!idx.empty())
                return catalog[idx[static_cast<std::size_t>(rng.uniform(0, idx.size() - 1))]];
        }
        return catalog[static_cast<std::size_t>(rng.uniform(0, catalog.size() - 1))];
    }

    /// Add a component with the domain attribute policy applied: a role
    /// descriptor (Functional; Conceptual for physical processes — the
    /// earliest-known information), an optional Logical parameter, and an
    /// optional Implementation PlatformRef (never on a physical process;
    /// plant physics does not run a product).
    ComponentId add(std::string name, ComponentType type, std::string subsystem,
                    bool external = false) {
        ComponentId id = m.add_component(std::move(name), type);
        model::Component& c = m.component(id);
        c.subsystem = std::move(subsystem);
        c.external_facing = external;

        Attribute role;
        role.name = "role";
        role.value = std::string(roles[rng.zipf(roles.size(), 0.7)]);
        role.kind = AttributeKind::Descriptor;
        role.fidelity = type == ComponentType::PhysicalProcess ? Fidelity::Conceptual
                                                               : Fidelity::Functional;
        m.set_attribute(id, std::move(role));

        if (rng.chance(config.parameter_prob)) {
            const auto& p = kParameters[rng.zipf(kParameters.size(), 0.5)];
            Attribute param;
            param.name = std::string(p[0]);
            param.value = std::string(p[1]);
            param.kind = AttributeKind::Parameter;
            param.fidelity = Fidelity::Logical;
            m.set_attribute(id, std::move(param));
        }

        if (type != ComponentType::PhysicalProcess && rng.chance(config.platform_ref_prob)) {
            const ProductSpec& spec = pick_product();
            Attribute ref;
            ref.name = "platform";
            ref.value = spec.display;
            ref.kind = AttributeKind::PlatformRef;
            ref.fidelity = Fidelity::Implementation;
            ref.platform = spec.platform;
            m.set_attribute(id, std::move(ref));
        }
        return id;
    }

    std::size_t remaining() const { return config.components - m.component_count(); }

    /// Index helper: uniform pick from a non-empty id vector.
    ComponentId any(const std::vector<ComponentId>& ids) {
        return ids[static_cast<std::size_t>(rng.uniform(0, ids.size() - 1))];
    }
};

// -- UAV flight stack --------------------------------------------------------
//
// GCS (entry) -> redundant wireless datalinks -> autopilot + flight
// computer, with sensor/actuator/payload fans. Scaling grows the fans and
// occasionally adds another redundant command channel.

void build_uav(Builder& b) {
    ComponentId gcs = b.add("gcs", ComponentType::HumanInterface, "ground", true);
    ComponentId link_a = b.add("datalink-primary", ComponentType::Network, "datalink");
    ComponentId link_b = b.add("datalink-backup", ComponentType::Network, "datalink");
    ComponentId autopilot = b.add("autopilot", ComponentType::Controller, "avionics");
    ComponentId fcc = b.add("flight-computer", ComponentType::Compute, "avionics");
    ComponentId gps = b.add("gps-receiver", ComponentType::Sensor, "sensors");
    ComponentId imu = b.add("imu", ComponentType::Sensor, "sensors");
    ComponentId esc = b.add("esc-motor-0", ComponentType::Actuator, "actuation");
    ComponentId airframe = b.add("airframe", ComponentType::PhysicalProcess, "airframe");
    ComponentId logger = b.add("telemetry-logger", ComponentType::Software, "avionics");

    b.m.connect(gcs, link_a, "c2-uplink", ChannelKind::Wireless, true);
    b.m.connect(gcs, link_b, "c2-backup", ChannelKind::Wireless, true);
    b.m.connect(link_a, autopilot, "mavlink", ChannelKind::Serial, true);
    b.m.connect(link_b, autopilot, "mavlink-backup", ChannelKind::Serial, true);
    b.m.connect(autopilot, fcc, "companion-link", ChannelKind::Ethernet, true);
    b.m.connect(gps, autopilot, "nmea", ChannelKind::Serial);
    b.m.connect(imu, autopilot, "imu-bus", ChannelKind::AnalogSignal);
    b.m.connect(autopilot, esc, "pwm", ChannelKind::AnalogSignal);
    b.m.connect(esc, airframe, "thrust", ChannelKind::Mechanical);
    b.m.connect(fcc, logger, "telemetry", ChannelKind::LogicalFlow);

    std::size_t sensors = 0, actuators = 0, payloads = 0, links = 0;
    constexpr std::array<double, 4> weights{3.0, 2.0, 2.0, 1.0};
    while (b.remaining() > 0) {
        switch (b.rng.weighted(weights)) {
        case 0: {
            ComponentId s = b.add("sensor-" + std::to_string(sensors++),
                                  ComponentType::Sensor, "sensors");
            b.m.connect(s, autopilot, "sensor-feed",
                        b.rng.chance(0.5) ? ChannelKind::AnalogSignal : ChannelKind::Serial);
            break;
        }
        case 1: {
            ComponentId a = b.add("servo-" + std::to_string(actuators++),
                                  ComponentType::Actuator, "actuation");
            b.m.connect(autopilot, a, "pwm", ChannelKind::AnalogSignal);
            b.m.connect(a, airframe, "control-surface", ChannelKind::Mechanical);
            break;
        }
        case 2: {
            ComponentId p = b.add("payload-" + std::to_string(payloads++),
                                  b.rng.chance(0.5) ? ComponentType::Compute
                                                    : ComponentType::Software,
                                  "payload");
            b.m.connect(fcc, p, "payload-bus", ChannelKind::Ethernet, true);
            break;
        }
        default: {
            // Another redundant command channel — the UAV's signature
            // topology feature, and a second externally-driven path.
            ComponentId l = b.add("datalink-aux-" + std::to_string(links++),
                                  ComponentType::Network, "datalink");
            b.m.connect(gcs, l, "c2-aux", ChannelKind::Wireless, true);
            b.m.connect(l, autopilot, "mavlink-aux", ChannelKind::Serial, true);
            break;
        }
        }
    }
}

safety::HazardModel uav_zoo_hazards() {
    safety::HazardModel hm;
    hm.add(safety::Loss{"L-1", "Loss of the airframe"});
    hm.add(safety::Loss{"L-2", "Injury to people on the ground"});
    hm.add(safety::Loss{"L-3", "Loss of mission data"});
    hm.add(safety::Hazard{"H-1", "Aircraft departs controlled flight", {"L-1", "L-2"}});
    hm.add(safety::Hazard{"H-2", "Aircraft violates the mission geofence", {"L-2"}});
    hm.add(safety::Hazard{"H-3", "Command link unavailable while airborne", {"L-1", "L-3"}});
    hm.add(safety::UnsafeControlAction{"UCA-1", "autopilot", "apply corrective attitude command",
            safety::UcaType::NotProviding, "during an upset condition", {"H-1"}});
    hm.add(safety::UnsafeControlAction{"UCA-2", "autopilot", "execute uploaded mission waypoint",
            safety::UcaType::Providing, "when the waypoint lies outside the geofence",
            {"H-2"}});
    hm.add(safety::UnsafeControlAction{"UCA-3", "autopilot", "switch to the backup command link",
            safety::UcaType::WrongTiming, "after the primary datalink is lost", {"H-3"}});
    hm.add(safety::UnsafeControlAction{"UCA-4", "flight-computer", "forward operator override to the autopilot",
            safety::UcaType::WrongDuration, "held past the recovery window", {"H-1"}});
    return hm;
}

// -- automotive CAN/ECU network ----------------------------------------------
//
// Bus segments (Fieldbus hubs) bridged by a central gateway; ECUs fan off
// each bus, sensors/actuators fan off ECUs. OBD-II port, telematics unit,
// and the infotainment head unit are the entry points.

void build_automotive(Builder& b) {
    ComponentId obd = b.add("obd-port", ComponentType::HumanInterface, "diagnostics", true);
    ComponentId telematics = b.add("telematics-unit", ComponentType::Compute, "telematics", true);
    ComponentId gateway = b.add("can-gateway", ComponentType::Controller, "gateway");
    ComponentId bus0 = b.add("can-bus-0", ComponentType::Network, "bus-0");
    ComponentId engine = b.add("engine-ecu", ComponentType::Controller, "bus-0");
    ComponentId brake = b.add("brake-ecu", ComponentType::Controller, "bus-0");
    ComponentId wheel = b.add("wheel-speed-sensor", ComponentType::Sensor, "chassis");
    ComponentId bact = b.add("brake-actuator", ComponentType::Actuator, "chassis");
    ComponentId infotainment =
        b.add("infotainment-head-unit", ComponentType::HumanInterface, "cabin", true);
    ComponentId dynamics = b.add("vehicle-dynamics", ComponentType::PhysicalProcess, "chassis");

    b.m.connect(obd, gateway, "obd-ii", ChannelKind::Serial, true);
    b.m.connect(telematics, gateway, "telematics-link", ChannelKind::Wireless, true);
    b.m.connect(infotainment, gateway, "ivi-link", ChannelKind::Ethernet, true);
    b.m.connect(gateway, bus0, "can", ChannelKind::Fieldbus, true);
    b.m.connect(engine, bus0, "can", ChannelKind::Fieldbus, true);
    b.m.connect(brake, bus0, "can", ChannelKind::Fieldbus, true);
    b.m.connect(wheel, brake, "wheel-pulse", ChannelKind::AnalogSignal);
    b.m.connect(brake, bact, "hydraulic-cmd", ChannelKind::AnalogSignal);
    b.m.connect(bact, dynamics, "brake-force", ChannelKind::Mechanical);
    b.m.connect(engine, dynamics, "torque", ChannelKind::Mechanical);

    std::vector<ComponentId> buses{bus0};
    std::vector<ComponentId> ecus{engine, brake};
    std::size_t nbuses = 1, necus = 0, nsensors = 0, nactuators = 0;
    constexpr std::array<double, 4> weights{4.0, 2.0, 2.0, 1.0};
    while (b.remaining() > 0) {
        // Force a new bus segment every ~16 components so large vehicles
        // grow segments (powertrain / chassis / body / ADAS) instead of one
        // flat bus.
        const bool force_bus = ecus.size() >= buses.size() * 16;
        const std::size_t kind = force_bus ? 3 : b.rng.weighted(weights);
        switch (kind) {
        case 0: {
            ComponentId e = b.add("ecu-" + std::to_string(necus++), ComponentType::Controller,
                                  "bus-" + std::to_string(buses.size() - 1));
            b.m.connect(e, b.any(buses), "can", ChannelKind::Fieldbus, true);
            ecus.push_back(e);
            break;
        }
        case 1: {
            ComponentId s = b.add("sensor-" + std::to_string(nsensors++),
                                  ComponentType::Sensor, "chassis");
            b.m.connect(s, b.any(ecus), "sensor-feed", ChannelKind::AnalogSignal);
            break;
        }
        case 2: {
            ComponentId a = b.add("actuator-" + std::to_string(nactuators++),
                                  ComponentType::Actuator, "chassis");
            b.m.connect(b.any(ecus), a, "drive-cmd", ChannelKind::AnalogSignal);
            b.m.connect(a, dynamics, "force", ChannelKind::Mechanical);
            break;
        }
        default: {
            ComponentId nb = b.add("can-bus-" + std::to_string(nbuses),
                                   ComponentType::Network, "bus-" + std::to_string(nbuses));
            ++nbuses;
            b.m.connect(gateway, nb, "can", ChannelKind::Fieldbus, true);
            buses.push_back(nb);
            break;
        }
        }
    }
}

safety::HazardModel automotive_zoo_hazards() {
    safety::HazardModel hm;
    hm.add(safety::Loss{"L-1", "Collision with another vehicle or a pedestrian"});
    hm.add(safety::Loss{"L-2", "Loss of the vehicle"});
    hm.add(safety::Loss{"L-3", "Theft of the vehicle or of driver data"});
    hm.add(safety::Hazard{"H-1", "Unintended vehicle acceleration", {"L-1"}});
    hm.add(safety::Hazard{"H-2", "Loss of braking on demand", {"L-1", "L-2"}});
    hm.add(safety::Hazard{"H-3", "Cabin access granted to an unauthorized party", {"L-3"}});
    hm.add(safety::UnsafeControlAction{"UCA-1", "engine-ecu", "command engine torque", safety::UcaType::Providing,
            "while the driver is braking", {"H-1"}});
    hm.add(safety::UnsafeControlAction{"UCA-2", "brake-ecu", "apply hydraulic brake pressure",
            safety::UcaType::NotProviding, "when the driver presses the pedal", {"H-2"}});
    hm.add(safety::UnsafeControlAction{"UCA-3", "can-gateway", "forward an unlock frame to the body segment",
            safety::UcaType::Providing, "without driver authentication", {"H-3"}});
    return hm;
}

// -- smart-grid substation ----------------------------------------------------
//
// A station-bus ring of switches (redundant backbone); protection IEDs hang
// off ring nodes with merging-unit and breaker fans down to the primary
// equipment. The corporate uplink is the entry point.

void build_grid(Builder& b) {
    ComponentId corp = b.add("corporate-gateway", ComponentType::Compute, "corporate", true);
    ComponentId hmi = b.add("substation-hmi", ComponentType::HumanInterface, "station");
    ComponentId rtu = b.add("station-rtu", ComponentType::Controller, "station");
    ComponentId sw0 = b.add("station-switch-0", ComponentType::Network, "station-bus");
    ComponentId sw1 = b.add("station-switch-1", ComponentType::Network, "station-bus");
    ComponentId sw2 = b.add("station-switch-2", ComponentType::Network, "station-bus");
    ComponentId ied0 = b.add("protection-ied-0", ComponentType::Controller, "bay-0");
    ComponentId mu0 = b.add("merging-unit-0", ComponentType::Sensor, "bay-0");
    ComponentId brk0 = b.add("breaker-0", ComponentType::Actuator, "bay-0");
    ComponentId feeder = b.add("power-feeder", ComponentType::PhysicalProcess, "yard");

    b.m.connect(sw0, sw1, "station-ring", ChannelKind::Ethernet, true);
    b.m.connect(sw1, sw2, "station-ring", ChannelKind::Ethernet, true);
    b.m.connect(sw2, sw0, "station-ring", ChannelKind::Ethernet, true);
    b.m.connect(corp, sw0, "corp-uplink", ChannelKind::Ethernet, true);
    b.m.connect(hmi, sw1, "station-lan", ChannelKind::Ethernet, true);
    b.m.connect(rtu, sw2, "station-lan", ChannelKind::Ethernet, true);
    b.m.connect(ied0, sw0, "goose", ChannelKind::Ethernet, true);
    b.m.connect(feeder, mu0, "ct-pt", ChannelKind::AnalogSignal);
    b.m.connect(mu0, ied0, "sampled-values", ChannelKind::Fieldbus);
    b.m.connect(ied0, brk0, "trip", ChannelKind::AnalogSignal);
    b.m.connect(brk0, feeder, "interrupt", ChannelKind::Mechanical);

    std::vector<ComponentId> switches{sw0, sw1, sw2};
    std::vector<ComponentId> ieds{ied0};
    std::size_t nsw = 3, nied = 1, nmu = 1, nbrk = 1, nxfmr = 0;
    constexpr std::array<double, 5> weights{3.0, 2.0, 2.0, 1.0, 1.0};
    while (b.remaining() > 0) {
        switch (b.rng.weighted(weights)) {
        case 0: {
            ComponentId ied = b.add("protection-ied-" + std::to_string(nied),
                                    ComponentType::Controller, "bay-" + std::to_string(nied));
            ++nied;
            b.m.connect(ied, b.any(switches), "goose", ChannelKind::Ethernet, true);
            ieds.push_back(ied);
            break;
        }
        case 1: {
            ComponentId mu = b.add("merging-unit-" + std::to_string(nmu++),
                                   ComponentType::Sensor, "yard");
            b.m.connect(feeder, mu, "ct-pt", ChannelKind::AnalogSignal);
            b.m.connect(mu, b.any(ieds), "sampled-values", ChannelKind::Fieldbus);
            break;
        }
        case 2: {
            ComponentId brk = b.add("breaker-" + std::to_string(nbrk++),
                                    ComponentType::Actuator, "yard");
            b.m.connect(b.any(ieds), brk, "trip", ChannelKind::AnalogSignal);
            b.m.connect(brk, feeder, "interrupt", ChannelKind::Mechanical);
            break;
        }
        case 3: {
            // Ring growth keeps the redundancy invariant: every switch
            // joins with two links into the existing ring.
            ComponentId sw = b.add("station-switch-" + std::to_string(nsw++),
                                   ComponentType::Network, "station-bus");
            const std::vector<std::size_t> peers =
                b.rng.sample_indices(switches.size(), switches.size() < 2 ? 1 : 2);
            for (std::size_t p : peers)
                b.m.connect(sw, switches[p], "station-ring", ChannelKind::Ethernet, true);
            switches.push_back(sw);
            break;
        }
        default: {
            ComponentId x = b.add("transformer-" + std::to_string(nxfmr++),
                                  ComponentType::PhysicalProcess, "yard");
            b.m.connect(feeder, x, "primary-winding", ChannelKind::Mechanical);
            break;
        }
        }
    }
}

safety::HazardModel grid_zoo_hazards() {
    safety::HazardModel hm;
    hm.add(safety::Loss{"L-1", "Loss of power to the served area"});
    hm.add(safety::Loss{"L-2", "Destruction of substation primary equipment"});
    hm.add(safety::Loss{"L-3", "Injury to field personnel"});
    hm.add(safety::Hazard{"H-1", "Breaker opens under normal load", {"L-1"}});
    hm.add(safety::Hazard{"H-2", "Breaker fails to trip during a line fault", {"L-2", "L-3"}});
    hm.add(safety::Hazard{"H-3", "Protection operates on desynchronized measurements", {"L-1", "L-2"}});
    hm.add(safety::UnsafeControlAction{"UCA-1", "protection-ied-0", "issue breaker trip command",
            safety::UcaType::Providing, "while the protected line is healthy", {"H-1"}});
    hm.add(safety::UnsafeControlAction{"UCA-2", "protection-ied-0", "issue breaker trip command",
            safety::UcaType::NotProviding, "during a line fault", {"H-2"}});
    hm.add(safety::UnsafeControlAction{"UCA-3", "station-rtu", "rebroadcast time synchronization",
            safety::UcaType::WrongTiming, "after the clock source is manipulated", {"H-3"}});
    return hm;
}

// -- water-treatment plant -----------------------------------------------------
//
// An acyclic staged process chain (intake -> ... -> distribution) with
// per-stage instrumentation fans, PLCs on a fieldbus to the SCADA server,
// and the engineering workstation as the entry point.

void build_water(Builder& b) {
    ComponentId ews =
        b.add("engineering-workstation", ComponentType::HumanInterface, "corporate", true);
    ComponentId scada = b.add("scada-server", ComponentType::Compute, "control-room");
    ComponentId hmi = b.add("plant-hmi", ComponentType::HumanInterface, "control-room");
    ComponentId historian = b.add("historian", ComponentType::Compute, "control-room");
    ComponentId plc0 = b.add("plc-0", ComponentType::Controller, "stage-0");
    ComponentId stage0 = b.add("intake-basin", ComponentType::PhysicalProcess, "stage-0");
    ComponentId pump0 = b.add("intake-pump-0", ComponentType::Actuator, "stage-0");
    ComponentId level0 = b.add("level-sensor-0", ComponentType::Sensor, "stage-0");
    ComponentId doser0 = b.add("dosing-pump-0", ComponentType::Actuator, "stage-0");
    ComponentId turb0 = b.add("turbidity-sensor-0", ComponentType::Sensor, "stage-0");

    b.m.connect(ews, scada, "engineering-lan", ChannelKind::Ethernet, true);
    b.m.connect(hmi, scada, "operator-lan", ChannelKind::Ethernet, true);
    b.m.connect(scada, historian, "trend-archive", ChannelKind::LogicalFlow);
    b.m.connect(scada, plc0, "modbus-tcp", ChannelKind::Fieldbus, true);
    b.m.connect(plc0, pump0, "drive-cmd", ChannelKind::AnalogSignal);
    b.m.connect(plc0, doser0, "dosing-cmd", ChannelKind::AnalogSignal);
    b.m.connect(level0, plc0, "level", ChannelKind::AnalogSignal);
    b.m.connect(turb0, plc0, "turbidity", ChannelKind::AnalogSignal);
    b.m.connect(pump0, stage0, "flow", ChannelKind::Mechanical);
    b.m.connect(doser0, stage0, "chemical-feed", ChannelKind::Mechanical);
    b.m.connect(stage0, level0, "level-tap", ChannelKind::AnalogSignal);
    b.m.connect(stage0, turb0, "sample-tap", ChannelKind::AnalogSignal);

    std::vector<ComponentId> plcs{plc0};
    std::vector<ComponentId> stages{stage0};
    std::size_t nplc = 1, nstage = 1, nsensor = 1, nactuator = 1;
    constexpr std::array<double, 4> weights{3.0, 3.0, 1.0, 1.0};
    while (b.remaining() > 0) {
        // A PLC for every ~10 field devices keeps control distributed.
        const bool force_plc = b.m.component_count() >= plcs.size() * 12 + 4;
        const std::size_t kind = force_plc ? 3 : b.rng.weighted(weights);
        switch (kind) {
        case 0: {
            ComponentId s = b.add("sensor-" + std::to_string(nsensor++),
                                  ComponentType::Sensor, "field");
            b.m.connect(b.any(stages), s, "sample-tap", ChannelKind::AnalogSignal);
            b.m.connect(s, b.any(plcs), "measurement", ChannelKind::AnalogSignal);
            break;
        }
        case 1: {
            ComponentId a = b.add("actuator-" + std::to_string(nactuator++),
                                  ComponentType::Actuator, "field");
            b.m.connect(b.any(plcs), a, "drive-cmd", ChannelKind::AnalogSignal);
            b.m.connect(a, b.any(stages), "flow", ChannelKind::Mechanical);
            break;
        }
        case 2: {
            // The chain stays acyclic: each new stage hangs off the last.
            ComponentId st = b.add("stage-" + std::to_string(nstage),
                                   ComponentType::PhysicalProcess,
                                   "stage-" + std::to_string(nstage));
            ++nstage;
            b.m.connect(stages.back(), st, "process-flow", ChannelKind::Mechanical);
            stages.push_back(st);
            break;
        }
        default: {
            ComponentId p = b.add("plc-" + std::to_string(nplc++),
                                  ComponentType::Controller, "field");
            b.m.connect(scada, p, "modbus-tcp", ChannelKind::Fieldbus, true);
            plcs.push_back(p);
            break;
        }
        }
    }
}

safety::HazardModel water_zoo_hazards() {
    safety::HazardModel hm;
    hm.add(safety::Loss{"L-1", "Unsafe drinking water reaches consumers"});
    hm.add(safety::Loss{"L-2", "Loss of treatment capacity"});
    hm.add(safety::Loss{"L-3", "Environmental discharge violation"});
    hm.add(safety::Hazard{"H-1", "Chemical dose exceeds the safe band", {"L-1"}});
    hm.add(safety::Hazard{"H-2", "Basin overflows or runs dry", {"L-2", "L-3"}});
    hm.add(safety::Hazard{"H-3", "Water leaves the plant with insufficient disinfection", {"L-1"}});
    hm.add(safety::UnsafeControlAction{"UCA-1", "plc-0", "run the chemical dosing pump", safety::UcaType::WrongDuration,
            "applied past the dosing setpoint", {"H-1"}});
    hm.add(safety::UnsafeControlAction{"UCA-2", "plc-0", "stop the intake pump", safety::UcaType::NotProviding,
            "while the basin level is at the high limit", {"H-2"}});
    hm.add(safety::UnsafeControlAction{"UCA-3", "plc-0", "hold water for the required contact time",
            safety::UcaType::WrongDuration, "stopped too soon under throughput pressure",
            {"H-3"}});
    return hm;
}

} // namespace

std::string_view zoo_domain_name(ZooDomain d) noexcept {
    const auto idx = static_cast<std::size_t>(d);
    return idx < kDomainNames.size() ? kDomainNames[idx] : kDomainNames[0];
}

std::optional<ZooDomain> parse_zoo_domain(std::string_view name) noexcept {
    for (std::size_t i = 0; i < kDomainNames.size(); ++i)
        if (kDomainNames[i] == name) return static_cast<ZooDomain>(i);
    return std::nullopt;
}

const std::vector<ZooDomain>& all_zoo_domains() {
    static const std::vector<ZooDomain> domains{ZooDomain::Uav, ZooDomain::Automotive,
                                               ZooDomain::Grid, ZooDomain::Water};
    return domains;
}

std::string zoo_system_name(const ZooConfig& config) {
    return "zoo-" + std::string(zoo_domain_name(config.domain)) + "-s" +
           std::to_string(config.seed) + "-n" + std::to_string(config.components);
}

ZooSystem generate_zoo_system(const ZooConfig& config) {
    if (config.components < kZooMinComponents || config.components > kZooMaxComponents)
        throw ValidationError("zoo generator: components must be in [" +
                              std::to_string(kZooMinComponents) + ", " +
                              std::to_string(kZooMaxComponents) + "], got " +
                              std::to_string(config.components));
    CYBOK_FAULT_POINT("synth.zoo.gen",
                      ValidationError("injected: zoo generation failed for " +
                                      zoo_system_name(config)));

    Builder b(config, zoo_system_name(config),
              std::string(zoo_domain_name(config.domain)) + " architecture (" +
                  std::to_string(config.components) + " components, seed " +
                  std::to_string(config.seed) + ")");
    ZooSystem sys;
    switch (config.domain) {
    case ZooDomain::Uav:
        build_uav(b);
        sys.hazards = uav_zoo_hazards();
        break;
    case ZooDomain::Automotive:
        build_automotive(b);
        sys.hazards = automotive_zoo_hazards();
        break;
    case ZooDomain::Grid:
        build_grid(b);
        sys.hazards = grid_zoo_hazards();
        break;
    case ZooDomain::Water:
        build_water(b);
        sys.hazards = water_zoo_hazards();
        break;
    }
    sys.model = std::move(b.m);
    return sys;
}

} // namespace cybok::synth
