#include "synth/corpus_gen.hpp"

#include <algorithm>
#include <set>

#include "util/error.hpp"

namespace cybok::synth {

namespace {

/// Generated record ids start here; anchor records use their real MITRE
/// numbers, all below this.
constexpr std::uint32_t kGeneratedIdBase = 1000;

std::string capitalize(std::string s) {
    if (!s.empty() && s[0] >= 'a' && s[0] <= 'z') s[0] = static_cast<char>(s[0] - 'a' + 'A');
    return s;
}

/// The sentence that guarantees a tagged record contains its domain's
/// primary tag token (random tag picks inside make_sentence may choose a
/// secondary tag; Table 1 calibration needs the primary token present in
/// exactly the planted number of records).
std::string tag_anchor_sentence(Domain d) {
    auto tags = domain_tags(d);
    if (tags.empty()) return {};
    return " This behavior is characteristic of " + std::string(tags[0]) + " environments.";
}

std::string cvss_vector_for(Rng& rng) {
    auto pick = [&rng](std::span<const std::string_view> choices,
                       std::span<const double> weights) {
        return std::string(choices[rng.weighted(weights)]);
    };
    constexpr std::string_view av[]{"N", "A", "L", "P"};
    constexpr double av_w[]{0.45, 0.10, 0.35, 0.10};
    constexpr std::string_view lh[]{"L", "H"};
    constexpr double ac_w[]{0.70, 0.30};
    constexpr std::string_view pr[]{"N", "L", "H"};
    constexpr double pr_w[]{0.50, 0.35, 0.15};
    constexpr std::string_view ui[]{"N", "R"};
    constexpr double ui_w[]{0.60, 0.40};
    constexpr std::string_view sc[]{"U", "C"};
    constexpr double sc_w[]{0.80, 0.20};
    constexpr std::string_view cia[]{"H", "L", "N"};
    constexpr double cia_w[]{0.40, 0.35, 0.25};

    std::string c = pick(cia, cia_w);
    std::string i = pick(cia, cia_w);
    std::string a = pick(cia, cia_w);
    if (c == "N" && i == "N" && a == "N") a = "H"; // a CVE with no impact is not a CVE
    return "CVSS:3.1/AV:" + pick(av, av_w) + "/AC:" + pick(lh, ac_w) + "/PR:" +
           pick(pr, pr_w) + "/UI:" + pick(ui, ui_w) + "/S:" + pick(sc, sc_w) + "/C:" + c +
           "/I:" + i + "/A:" + a;
}

} // namespace

// ----------------------------------------------------------------- anchors

std::vector<kb::Weakness> anchor_weaknesses() {
    // Hand-written records with real CWE numbers. Text deliberately avoids
    // the Table 1 query tokens (no "linux", "windows", "cisco", "asa",
    // bare "7", product identifiers) so anchors never perturb the
    // calibrated counts; ICS vocabulary *is* used so that descriptor
    // attributes of control components find these records — that is the
    // paper's CWE-78 BPCS/SIS finding.
    std::vector<kb::Weakness> out;
    auto add = [&out](std::uint32_t id, std::string name, std::string desc,
                      std::vector<std::string> intro, std::vector<std::string> cons,
                      std::vector<std::string> plats) {
        kb::Weakness w;
        w.id = kb::WeaknessId{id};
        w.name = std::move(name);
        w.description = std::move(desc);
        w.modes_of_introduction = std::move(intro);
        w.consequences = std::move(cons);
        w.applicable_platforms = std::move(plats);
        out.push_back(std::move(w));
    };
    add(kCweOsCommandInjection, "Improper Neutralization of Operating System Commands",
        "An upstream attacker may inject all or part of an operating system command "
        "onto an externally influenced input of a controller, for example through a "
        "modbus or scada field interface, disrupting or manipulating the controlled "
        "process.",
        {"Design", "Implementation"},
        {"integrity: execute unauthorized commands", "availability: disrupt control"},
        {"plc", "hmi"});
    add(kCweImproperInputValidation, "Improper Input Validation",
        "The product receives input but does not validate that the input has the "
        "properties required to process it safely, allowing crafted field data to "
        "reach trusted logic.",
        {"Implementation"}, {"integrity: modify application data"}, {});
    add(kCweMissingAuthentication, "Missing Authentication for Critical Function",
        "The product exposes a function that modifies controlled equipment state "
        "without verifying the identity of the requester, a common condition on "
        "legacy fieldbus and modbus interfaces.",
        {"Design", "Architecture"}, {"access control: gain privileges"}, {"plc", "scada"});
    add(kCweCleartextTransmission, "Cleartext Transmission of Sensitive Information",
        "The product transmits sensitive or safety relevant data over a channel "
        "readable by unintended actors, enabling interception and targeted replay "
        "against the receiving controller.",
        {"Design"}, {"confidentiality: read application data"}, {});
    add(119, "Improper Restriction of Operations within the Bounds of a Memory Buffer",
        "The product performs operations on a memory buffer but can read from or "
        "write to a location outside of the intended boundary of the buffer.",
        {"Implementation"}, {"integrity: memory corruption", "availability: crash"}, {});
    add(287, "Improper Authentication",
        "When an actor claims to have a given identity, the product does not prove "
        "or insufficiently proves that the claim is correct.",
        {"Design", "Architecture"}, {"access control: impersonation"}, {});
    add(400, "Uncontrolled Resource Consumption",
        "The product does not properly control the allocation of a limited resource, "
        "allowing an actor to exhaust it and deny service to the controlled process.",
        {"Implementation", "Operation"}, {"availability: resource exhaustion"}, {});
    add(502, "Deserialization of Untrusted Data",
        "The product deserializes data from an untrusted source without sufficiently "
        "verifying that the resulting structure is valid.",
        {"Implementation"}, {"integrity: object injection"}, {});
    add(345, "Insufficient Verification of Data Authenticity",
        "The product does not sufficiently verify the origin or authenticity of "
        "field measurements or supervisory messages, accepting forged values into "
        "the control loop.",
        {"Design", "Architecture"},
        {"integrity: accept spoofed measurements", "safety: unsafe control action"},
        {"scada", "sensor"});
    add(798, "Use of Hard-coded Credentials",
        "The product contains hard-coded credentials such as a password or a "
        "cryptographic key that it uses for inbound authentication or outbound "
        "communication to engineering services.",
        {"Implementation"}, {"access control: gain privileges"}, {});
    return out;
}

std::vector<kb::AttackPattern> anchor_patterns() {
    std::vector<kb::AttackPattern> out;
    auto add = [&out](std::uint32_t id, std::string name, std::string summary,
                      std::vector<std::string> prereq, kb::Rating likelihood,
                      kb::Rating severity, std::vector<std::uint32_t> cwes,
                      std::vector<std::string> domains) {
        kb::AttackPattern p;
        p.id = kb::AttackPatternId{id};
        p.name = std::move(name);
        p.summary = std::move(summary);
        p.prerequisites = std::move(prereq);
        p.likelihood = likelihood;
        p.typical_severity = severity;
        for (std::uint32_t c : cwes) p.related_weaknesses.push_back(kb::WeaknessId{c});
        p.domains = std::move(domains);
        out.push_back(std::move(p));
    };
    add(kCapecCommandInjection, "Operating System Command Injection",
        "An attacker injects operating system commands through an externally "
        "influenced input reaching a command interpreter on a controller or "
        "engineering node, for example a supervisory hmi or a plc gateway.",
        {"The target accepts externally supplied input into a command context."},
        kb::Rating::High, kb::Rating::High, {kCweOsCommandInjection,
        kCweImproperInputValidation}, {"software", "ics"});
    add(kCapecProtocolManipulation, "Protocol Manipulation",
        "An attacker manipulates fieldbus or modbus protocol exchanges between a "
        "supervisory node and a controller to deliver unsafe setpoints or suppress "
        "alarms.",
        {"Access to the control network segment."}, kb::Rating::Medium, kb::Rating::High,
        {kCweMissingAuthentication, kCweImproperInputValidation}, {"communications", "ics"});
    add(94, "Adversary in the Middle",
        "An attacker interposes between two communicating nodes and relays or "
        "alters traffic, defeating implicit trust in the channel.",
        {"The channel lacks mutual authentication."}, kb::Rating::Medium, kb::Rating::High,
        {kCweCleartextTransmission, 287}, {"communications"});
    add(125, "Flooding",
        "An attacker consumes the resources of a target by sending a high volume "
        "of requests, starving the controlled process of supervision.",
        {"Reachable service endpoint."}, kb::Rating::High, kb::Rating::Medium, {400},
        {"availability"});
    add(112, "Brute Force",
        "An attacker systematically guesses credentials or keys guarding an "
        "engineering or maintenance interface.",
        {"An authentication interface is reachable."}, kb::Rating::Medium,
        kb::Rating::Medium, {287, 798}, {"software"});
    add(148, "Content Spoofing",
        "An attacker substitutes forged measurement or status content so that "
        "operators or automation act on false process state.",
        {"Data authenticity is not verified end to end."}, kb::Rating::Medium,
        kb::Rating::High, {345}, {"ics", "communications"});
    add(130, "Excessive Allocation",
        "An attacker causes the target to allocate resources beyond sustainable "
        "limits through crafted requests.",
        {"Requests trigger proportional allocation."}, kb::Rating::Low,
        kb::Rating::Medium, {400}, {"availability"});
    add(586, "Object Injection",
        "An attacker supplies serialized objects that instantiate attacker chosen "
        "structures inside the receiving process.",
        {"Deserialization of external data."}, kb::Rating::Low, kb::Rating::High, {502},
        {"software"});
    return out;
}

// --------------------------------------------------------------- profiles

CorpusProfile CorpusProfile::scada_demo() {
    CorpusProfile p;
    p.seed = 20200629;
    p.pattern_count = 550;
    p.weakness_count = 900;
    // Exact Table 1 calibration: query "NI RT Linux OS" must match 54
    // patterns / 75 weaknesses, "Windows 7" 41 / 73, "Cisco ASA" 2 / 1.
    p.plants[Domain::LinuxOs] = {54, 75};
    p.plants[Domain::WindowsOs] = {41, 73};
    p.plants[Domain::NetAppliance] = {2, 1};
    // Additional domains give descriptor attributes realistic result
    // spaces without touching the Table 1 counts.
    p.plants[Domain::Ics] = {30, 40};
    p.plants[Domain::Web] = {60, 80};
    p.plants[Domain::Embedded] = {25, 30};
    p.plants[Domain::Wireless] = {20, 25};

    using kb::PlatformPart;
    p.products = {
        {"Cisco ASA", {PlatformPart::Hardware, "cisco", "asa", ""}, Domain::NetAppliance, 3776},
        {"NI RT Linux OS", {PlatformPart::OperatingSystem, "ni", "rt_linux", ""},
         Domain::LinuxOs, 9673},
        {"Windows 7", {PlatformPart::OperatingSystem, "microsoft", "windows_7", ""},
         Domain::WindowsOs, 6627},
        {"LabVIEW", {PlatformPart::Application, "ni", "labview", ""}, Domain::Generic, 6},
        {"NI cRIO 9063", {PlatformPart::Hardware, "ni", "crio_9063", ""}, Domain::Embedded, 7},
        {"NI cRIO 9064", {PlatformPart::Hardware, "ni", "crio_9064", ""}, Domain::Embedded, 7},
        // Background products: realistic corpus mass that no demo
        // attribute queries, keeping the index honest.
        {"Siemens SIMATIC S7", {PlatformPart::Hardware, "siemens", "simatic_s7", ""},
         Domain::Ics, 420},
        {"Apache HTTP Server", {PlatformPart::Application, "apache", "httpd", ""}, Domain::Web,
         880},
        {"OpenSSL", {PlatformPart::Application, "openssl", "openssl", ""}, Domain::Generic,
         640},
        {"Oracle Java SE", {PlatformPart::Application, "oracle", "java_se", ""},
         Domain::Generic, 1150},
        {"Google Chrome", {PlatformPart::Application, "google", "chrome", ""}, Domain::Web,
         990},
        {"Wind River VxWorks", {PlatformPart::OperatingSystem, "windriver", "vxworks", ""},
         Domain::Embedded, 210},
    };
    return p;
}

CorpusProfile CorpusProfile::scaled(double factor, std::uint64_t seed) {
    if (factor < 0.01) throw ValidationError("scale factor too small");
    CorpusProfile p = scada_demo();
    p.seed = seed;
    auto scale = [factor](std::size_t n) {
        return std::max<std::size_t>(
            1, static_cast<std::size_t>(static_cast<double>(n) * factor));
    };
    p.pattern_count = scale(p.pattern_count);
    p.weakness_count = scale(p.weakness_count);
    for (auto& [domain, plan] : p.plants) {
        plan.patterns = std::min(scale(plan.patterns), p.pattern_count / 8);
        plan.weaknesses = std::min(scale(plan.weaknesses), p.weakness_count / 8);
    }
    for (ProductSpec& spec : p.products) spec.cve_count = scale(spec.cve_count);
    return p;
}

// -------------------------------------------------------------- generator

kb::Corpus generate_corpus(const CorpusProfile& profile) {
    // Validate the profile.
    std::size_t planted_patterns = 0;
    std::size_t planted_weaknesses = 0;
    for (const auto& [domain, plan] : profile.plants) {
        if (domain == Domain::Generic)
            throw ValidationError("cannot plant the Generic domain (it is the remainder)");
        planted_patterns += plan.patterns;
        planted_weaknesses += plan.weaknesses;
    }
    if (planted_patterns > profile.pattern_count ||
        planted_weaknesses > profile.weakness_count)
        throw ValidationError("domain plants exceed corpus totals");
    {
        std::set<std::pair<std::string, std::string>> seen;
        for (const ProductSpec& spec : profile.products)
            if (!seen.emplace(spec.platform.vendor, spec.platform.product).second)
                throw ValidationError("duplicate product in profile: " + spec.display);
    }

    Rng root(profile.seed);
    kb::Corpus corpus;

    // Domain assignment vectors: exact plant counts, remainder Generic.
    auto make_assignment = [](Rng& rng, std::size_t total,
                              const std::map<Domain, DomainPlan>& plants,
                              bool patterns) {
        std::vector<Domain> assign;
        assign.reserve(total);
        for (const auto& [domain, plan] : plants) {
            std::size_t n = patterns ? plan.patterns : plan.weaknesses;
            assign.insert(assign.end(), n, domain);
        }
        assign.resize(total, Domain::Generic);
        rng.shuffle(assign);
        return assign;
    };

    // ---- weaknesses -------------------------------------------------------
    Rng wrng = root.fork(1);
    std::vector<Domain> wdomains =
        make_assignment(wrng, profile.weakness_count, profile.plants, /*patterns=*/false);
    std::vector<kb::WeaknessId> weakness_ids;
    if (profile.include_anchors) {
        for (kb::Weakness& w : anchor_weaknesses()) {
            weakness_ids.push_back(w.id);
            corpus.add(std::move(w));
        }
    }
    // Track weakness ids per domain for pattern cross-referencing.
    std::map<Domain, std::vector<kb::WeaknessId>> weaknesses_by_domain;
    for (std::size_t i = 0; i < profile.weakness_count; ++i) {
        Domain d = wdomains[i];
        kb::Weakness w;
        w.id = kb::WeaknessId{kGeneratedIdBase + static_cast<std::uint32_t>(i)};
        w.name = capitalize(make_title(wrng, domain_tags(d)));
        w.description = make_sentence(wrng, domain_tags(d)) + tag_anchor_sentence(d);
        if (wrng.chance(0.6)) w.modes_of_introduction.push_back("Implementation");
        if (wrng.chance(0.3)) w.modes_of_introduction.push_back("Design");
        std::size_t n_cons = wrng.uniform(1, 2);
        for (std::size_t c = 0; c < n_cons; ++c)
            w.consequences.emplace_back(
                consequence_phrases()[wrng.zipf(consequence_phrases().size(), 0.7)]);
        if (!weakness_ids.empty() && wrng.chance(0.15))
            w.parent = weakness_ids[wrng.uniform(0, weakness_ids.size() - 1)];
        weakness_ids.push_back(w.id);
        weaknesses_by_domain[d].push_back(w.id);
        corpus.add(std::move(w));
    }

    // ---- attack patterns --------------------------------------------------
    Rng prng = root.fork(2);
    std::vector<Domain> pdomains =
        make_assignment(prng, profile.pattern_count, profile.plants, /*patterns=*/true);
    std::vector<kb::AttackPatternId> pattern_ids;
    if (profile.include_anchors) {
        for (kb::AttackPattern& p : anchor_patterns()) {
            pattern_ids.push_back(p.id);
            corpus.add(std::move(p));
        }
    }
    for (std::size_t i = 0; i < profile.pattern_count; ++i) {
        Domain d = pdomains[i];
        kb::AttackPattern p;
        p.id = kb::AttackPatternId{kGeneratedIdBase + static_cast<std::uint32_t>(i)};
        p.name = capitalize(make_title(prng, domain_tags(d)));
        p.summary = make_sentence(prng, domain_tags(d)) + tag_anchor_sentence(d);
        std::size_t n_pre = prng.uniform(0, 2);
        for (std::size_t k = 0; k < n_pre; ++k)
            p.prerequisites.push_back(make_sentence(prng, {}));
        p.likelihood = static_cast<kb::Rating>(prng.uniform(0, 4));
        p.typical_severity = static_cast<kb::Rating>(prng.uniform(1, 4));
        // Cross-reference 1-3 weaknesses, preferring same-domain ones.
        std::size_t n_cwe = prng.uniform(1, 3);
        const auto& same_domain = weaknesses_by_domain[d];
        for (std::size_t k = 0; k < n_cwe; ++k) {
            if (!same_domain.empty() && prng.chance(0.7)) {
                p.related_weaknesses.push_back(
                    same_domain[prng.uniform(0, same_domain.size() - 1)]);
            } else if (!weakness_ids.empty()) {
                p.related_weaknesses.push_back(
                    weakness_ids[prng.uniform(0, weakness_ids.size() - 1)]);
            }
        }
        std::sort(p.related_weaknesses.begin(), p.related_weaknesses.end());
        p.related_weaknesses.erase(
            std::unique(p.related_weaknesses.begin(), p.related_weaknesses.end()),
            p.related_weaknesses.end());
        if (!pattern_ids.empty() && prng.chance(0.12))
            p.parent = pattern_ids[prng.uniform(0, pattern_ids.size() - 1)];
        if (d != Domain::Generic) p.domains.emplace_back(domain_name(d));
        pattern_ids.push_back(p.id);
        corpus.add(std::move(p));
    }

    // ---- vulnerabilities --------------------------------------------------
    Rng vrng = root.fork(3);
    std::map<std::uint32_t, std::uint32_t> next_number_in_year;
    for (const ProductSpec& spec : profile.products) {
        Rng product_rng = vrng.fork(stable_hash(spec.platform.vendor + ":" +
                                                spec.platform.product));
        for (std::size_t i = 0; i < spec.cve_count; ++i) {
            kb::Vulnerability v;
            // Years skew recent (2020 back to 2002).
            std::uint32_t year = 2020 - static_cast<std::uint32_t>(
                                            product_rng.zipf(19, 0.6));
            v.id = kb::VulnerabilityId{year, 1000 + next_number_in_year[year]++};
            std::string version = std::to_string(product_rng.uniform(1, 12));
            v.description = "A " + std::string(security_objects()[product_rng.zipf(
                                       security_objects().size(), 0.8)]) +
                            " " +
                            std::string(security_nouns()[product_rng.zipf(
                                security_nouns().size(), 0.8)]) +
                            " in " + spec.display + " release " + version +
                            " allows an adversary to " +
                            std::string(security_verbs()[product_rng.zipf(
                                security_verbs().size(), 0.8)]) +
                            " controlled state.";
            kb::Platform bound = spec.platform;
            bound.version = version;
            v.platforms.push_back(std::move(bound));
            // 85% carry a CWE classification, zipf-skewed toward the head
            // of the weakness list — anchors sit at the head, so CWE-78
            // et al. accumulate realistic vulnerability mass.
            if (!weakness_ids.empty() && product_rng.chance(0.85)) {
                v.weaknesses.push_back(
                    weakness_ids[product_rng.zipf(weakness_ids.size(), 1.1)]);
                if (product_rng.chance(0.1))
                    v.weaknesses.push_back(
                        weakness_ids[product_rng.zipf(weakness_ids.size(), 1.1)]);
                std::sort(v.weaknesses.begin(), v.weaknesses.end());
                v.weaknesses.erase(std::unique(v.weaknesses.begin(), v.weaknesses.end()),
                                   v.weaknesses.end());
            }
            if (product_rng.chance(0.9)) v.cvss_vector = cvss_vector_for(product_rng);
            corpus.add(std::move(v));
        }
    }

    corpus.reindex();
    return corpus;
}

} // namespace cybok::synth
