// Demonstration fixtures: the particle-separation centrifuge SCADA system
// of the paper's Section 3 (Fig. 1) with its hazard model, and a UAV
// control system (the authors' recurring second case study) used by the
// examples and tests.

#pragma once

#include "model/system_model.hpp"
#include "safety/hazards.hpp"

namespace cybok::synth {

/// The Fig. 1 architecture: Programming WS, Control firewall, SIS
/// platform, BPCS platform, Temperature sensor, Centrifuge — with the
/// attributes the paper's Table 1 queries (Cisco ASA, NI RT Linux OS,
/// Windows 7, LabVIEW, NI cRIO 9063/9064) at implementation fidelity and
/// functional/logical descriptors below that.
[[nodiscard]] model::SystemModel centrifuge_model();

/// Losses, hazards, and unsafe control actions for the centrifuge:
/// temperature out of range (fire / viscous product), rotor speed out of
/// tolerance (useless product), safety monitor suppressed (the Triton
/// scenario the paper invokes).
[[nodiscard]] safety::HazardModel centrifuge_hazards();

/// A refined centrifuge architecture for the what-if loop: Windows 7 on
/// the Programming WS replaced by a hardened RTOS product absent from the
/// vulnerability corpus, and an engineering-access firewall rule modeled
/// explicitly. Posture must strictly improve against centrifuge_model().
[[nodiscard]] model::SystemModel centrifuge_model_hardened();

/// The UAV case study: ground control station, datalink radio, autopilot,
/// GPS receiver, IMU, and airframe actuators.
[[nodiscard]] model::SystemModel uav_model();
[[nodiscard]] safety::HazardModel uav_hazards();

} // namespace cybok::synth
