#!/usr/bin/env python3
"""Bench-counter regression gate.

Reads one or more Google Benchmark JSON output files and checks the
deterministic user counters (postings_scanned, blocks_decoded,
postings_bytes, ...) against the ceilings committed in
tools/bench_thresholds.json. Wall-clock times are never compared — only
counters that are pure functions of the corpus seed and query, so the
gate is exact on any machine.

A rule is either a plain counter ceiling:

    {"benchmark": "BM_Bm25KernelTopK/50", "counter": "postings_scanned",
     "max": 2000}

or a ratio ceiling between two counters of the same benchmark:

    {"benchmark": "BM_IndexBuild/50",
     "ratio": ["postings_bytes", "uncompressed_bytes"], "max": 0.5}

A benchmark or counter missing from the JSON fails the gate: a silently
renamed benchmark must not turn the check into a no-op.

Usage:
    check_bench_regression.py [--thresholds FILE] RESULTS.json [...]

Exit status 0 when every rule holds, 1 otherwise.
"""

import argparse
import json
import os
import sys


def load_benchmarks(paths):
    """Map benchmark name -> counter dict, across all result files."""
    out = {}
    for path in paths:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        for bench in doc.get("benchmarks", []):
            # Repetition aggregates ("mean"/"median") carry the same
            # counters; the plain entry wins when both are present.
            name = bench.get("name", "")
            if name not in out or bench.get("run_type") == "iteration":
                out[name] = bench
    return out


def check_rule(rule, benchmarks):
    """Return (ok, description) for one threshold rule."""
    name = rule["benchmark"]
    bench = benchmarks.get(name)
    if bench is None:
        return False, f"{name}: benchmark missing from results"
    limit = rule["max"]
    if "ratio" in rule:
        num_key, den_key = rule["ratio"]
        num, den = bench.get(num_key), bench.get(den_key)
        if num is None or den is None:
            return False, f"{name}: counter {num_key}/{den_key} missing"
        if den == 0:
            return False, f"{name}: {den_key} is zero"
        value = num / den
        label = f"{num_key}/{den_key}"
    else:
        key = rule["counter"]
        value = bench.get(key)
        if value is None:
            return False, f"{name}: counter {key} missing"
        label = key
    ok = value <= limit
    verdict = "ok" if ok else "REGRESSION"
    return ok, f"{name}: {label} = {value:g} (limit {limit:g}) {verdict}"


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_thresholds = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                      "bench_thresholds.json")
    parser.add_argument("--thresholds", default=default_thresholds,
                        help="threshold rules file (default: next to this script)")
    parser.add_argument("results", nargs="+", help="benchmark JSON output file(s)")
    args = parser.parse_args(argv)

    with open(args.thresholds, "r", encoding="utf-8") as fh:
        rules = json.load(fh)["rules"]
    benchmarks = load_benchmarks(args.results)

    failures = 0
    for rule in rules:
        ok, line = check_rule(rule, benchmarks)
        print(("PASS  " if ok else "FAIL  ") + line)
        if not ok:
            failures += 1
    if failures:
        print(f"\n{failures} of {len(rules)} bench-counter rules failed", file=sys.stderr)
        return 1
    print(f"\nall {len(rules)} bench-counter rules hold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
