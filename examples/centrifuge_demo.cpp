// The paper's Section 3 demonstration: the particle-separation centrifuge
// SCADA system. Reproduces Table 1 (attack vectors per model attribute),
// surfaces the CWE-78 BPCS/SIS finding, maps attack vectors to physical
// consequences (the Triton-style SIS-suppression trace), and writes the
// dashboard export bundle.
//
//   $ ./centrifuge_demo [output-dir]

#include <iostream>

#include "core/session.hpp"
#include "synth/corpus_gen.hpp"
#include "synth/scada.hpp"

using namespace cybok;

int main(int argc, char** argv) {
    kb::Corpus corpus = synth::generate_corpus(synth::CorpusProfile::scada_demo());
    safety::HazardModel hazards = synth::centrifuge_hazards();

    core::AnalysisSession session(synth::centrifuge_model(), corpus);
    session.set_hazards(hazards);

    // Capability 1: the general architectural model.
    std::cout << "Architecture: " << session.architecture().node_count() << " nodes, "
              << session.architecture().edge_count() << " edges (GraphML "
              << session.architecture_graphml().size() << " bytes)\n\n";

    // Capability 2 + 3: associations rendered as the paper's Table 1.
    std::cout << "Table 1: attack vectors per SCADA model attribute\n";
    std::cout << dashboard::attribute_summary_table(session.associations()).render() << '\n';

    // The CWE-78 finding on the control platforms.
    for (const char* component : {"BPCS platform", "SIS platform"}) {
        const search::ComponentAssociation* ca = session.associations().find(component);
        for (const search::AttributeAssociation& aa : ca->attributes) {
            for (const search::Match& m : aa.matches) {
                if (m.id == "CWE-78") {
                    std::cout << component << " <- " << m.id << " (" << m.title << ") via "
                              << match_via_name(m.via) << '\n';
                }
            }
        }
    }
    std::cout << '\n';

    // Physical consequences: attack vectors to unsafe control actions.
    std::cout << "Externally-initiated consequence traces:\n";
    safety::ConsequenceAnalyzer analyzer(session.model(), hazards);
    for (const safety::ConsequenceTrace& t :
         analyzer.externally_reachable(session.associations()))
        std::cout << "  " << safety::to_string(t) << '\n';
    std::cout << '\n';

    // Mission impact: which missions the attack surface threatens.
    session.set_missions(analysis::centrifuge_missions());
    std::cout << "Mission impact:\n";
    for (const analysis::MissionImpact& impact : session.mission_impacts()) {
        std::cout << "  " << impact.mission_id << " \"" << impact.mission_text << "\": "
                  << (impact.threatened() ? "THREATENED via" : "not threatened");
        for (const std::string& c : impact.threatened_via) std::cout << ' ' << c << ';';
        std::cout << '\n';
    }
    std::cout << '\n';

    // Full report + bundle.
    if (argc > 1) {
        for (const std::string& f : session.export_bundle(argv[1]))
            std::cout << "wrote " << f << '\n';
    } else {
        std::cout << dashboard::render_text(session.report());
    }
    return 0;
}
