// Quickstart: build a three-component model, generate a synthetic
// MITRE-style corpus, associate attack vectors, and print the report.
//
//   $ ./quickstart

#include <iostream>

#include "core/session.hpp"
#include "synth/corpus_gen.hpp"

using namespace cybok;

int main() {
    // 1. A small system model: an operator workstation commanding a pump
    //    controller that drives a pump.
    model::SystemModel m("demo-plant", "quickstart example");

    model::ComponentId ws = m.add_component("Operator WS", model::ComponentType::Compute);
    m.component(ws).external_facing = true;
    model::Attribute os;
    os.name = "os";
    os.value = "Windows 7";
    os.kind = model::AttributeKind::PlatformRef;
    os.fidelity = model::Fidelity::Implementation;
    os.platform = kb::Platform{kb::PlatformPart::OperatingSystem, "microsoft", "windows_7", ""};
    m.set_attribute(ws, os);

    model::ComponentId plc = m.add_component("Pump controller", model::ComponentType::Controller);
    model::Attribute role;
    role.name = "role";
    role.value = "basic process control modbus plc";
    m.set_attribute(plc, role);

    model::ComponentId pump = m.add_component("Pump", model::ComponentType::Actuator);

    m.connect(ws, plc, "engineering", model::ChannelKind::Ethernet, /*bidirectional=*/true);
    m.connect(plc, pump, "drive", model::ChannelKind::AnalogSignal);

    // 2. Attack-vector data (synthetic stand-in for the MITRE databases).
    kb::Corpus corpus = synth::generate_corpus(synth::CorpusProfile::scada_demo());
    std::cout << "Corpus: " << corpus.stats().patterns << " attack patterns, "
              << corpus.stats().weaknesses << " weaknesses, "
              << corpus.stats().vulnerabilities << " vulnerabilities\n\n";

    // 3. Associate and report.
    core::AnalysisSession session(std::move(m), corpus);
    std::cout << dashboard::render_text(session.report());
    return 0;
}
