// The dashboard's what-if loop: evaluate an architectural refinement
// (swap the Programming WS onto a hardened RTOS, tighten the firewall
// policy) against the baseline centrifuge architecture and report the
// qualitative posture change — "a component or subsystem that relates
// with less attack vectors than a functionally equivalent system has a
// better security posture".
//
//   $ ./whatif_refinement

#include <iostream>

#include "analysis/attack_paths.hpp"
#include "core/session.hpp"
#include "synth/corpus_gen.hpp"
#include "synth/scada.hpp"

using namespace cybok;

int main() {
    kb::Corpus corpus = synth::generate_corpus(synth::CorpusProfile::scada_demo());
    core::AnalysisSession session(synth::centrifuge_model(), corpus);

    std::cout << "Baseline total attack vectors: " << session.associations().total() << "\n\n";

    // Propose the hardened architecture without committing.
    model::SystemModel candidate = synth::centrifuge_model_hardened();
    analysis::WhatIfResult result = session.propose(candidate);

    std::cout << "Proposed refinement:\n" << model::to_string(result.diff) << '\n';
    std::cout << "Verdict: " << analysis::verdict_name(result.comparison.verdict)
              << " (delta " << result.comparison.delta_total << " vectors)\n";
    for (const auto& row : result.comparison.rows)
        std::cout << "  " << row.component << ": " << row.delta_patterns << " patterns, "
                  << row.delta_weaknesses << " weaknesses, " << row.delta_vulnerabilities
                  << " vulnerabilities\n";
    std::cout << '\n';

    // Adopt it; associations update incrementally.
    session.commit(std::move(candidate));
    std::cout << "Committed. New total attack vectors: " << session.associations().total()
              << '\n';

    // Attack paths to the physical process before/after have the same
    // topology, but the entry component now carries far fewer vectors.
    const analysis::AttackPathsResult paths = analysis::attack_paths(
        session.model(), session.associations(), "BPCS platform");
    std::cout << "Feasible attacker paths to BPCS platform: " << paths.size() << '\n';
    for (const analysis::AttackPath& p : paths) {
        std::cout << "  ";
        for (std::size_t i = 0; i < p.components.size(); ++i) {
            if (i > 0) std::cout << " -> ";
            std::cout << p.components[i];
        }
        std::cout << " (weakest link " << p.weakest_link << " vectors)\n";
    }
    return 0;
}
