// Re-evaluating a deployed system when new advisories land — the paper's
// second application of model-based security analysis: the plant is built
// and unchangeable on short notice, but the attack-vector corpus moves
// every week. The stored baseline association is diffed against a fresh
// corpus snapshot (here: the baseline corpus plus a small NVD advisory
// feed) to surface exactly the new exposure.
//
//   $ ./deployed_reevaluation

#include <iostream>

#include "analysis/monitoring.hpp"
#include "kb/import_nvd.hpp"
#include "synth/corpus_gen.hpp"
#include "synth/scada.hpp"

using namespace cybok;

namespace {

// This week's advisories, in the NVD feed format an operator would pull.
constexpr const char* kFreshAdvisories = R"({
  "CVE_data_type": "CVE",
  "CVE_Items": [
    {
      "cve": {
        "CVE_data_meta": {"ID": "CVE-2021-30001"},
        "problemtype": {"problemtype_data": [
          {"description": [{"value": "CWE-78"}]}]},
        "description": {"description_data": [
          {"lang": "en", "value": "A command injection in the realtime controller service."}]}
      },
      "configurations": {"nodes": [{"operator": "OR", "cpe_match": [
        {"vulnerable": true, "cpe23Uri": "cpe:2.3:o:ni:rt_linux:9:*:*:*:*:*:*:*"}]}]},
      "impact": {"baseMetricV3": {"cvssV3": {
        "vectorString": "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"}}}
    },
    {
      "cve": {
        "CVE_data_meta": {"ID": "CVE-2021-30002"},
        "problemtype": {"problemtype_data": [
          {"description": [{"value": "CWE-787"}]}]},
        "description": {"description_data": [
          {"lang": "en", "value": "A heap write flaw in the legacy desktop platform."}]}
      },
      "configurations": {"nodes": [{"operator": "OR", "cpe_match": [
        {"vulnerable": true, "cpe23Uri": "cpe:2.3:o:microsoft:windows_7:*:*:*:*:*:*:*:*"}]}]},
      "impact": {"baseMetricV2": {"cvssV2": {"vectorString": "AV:N/AC:L/Au:N/C:P/I:P/A:P"}}}
    },
    {
      "cve": {
        "CVE_data_meta": {"ID": "CVE-2021-30003"},
        "description": {"description_data": [
          {"lang": "en", "value": "A flaw in an unrelated product."}]}
      },
      "configurations": {"nodes": [{"operator": "OR", "cpe_match": [
        {"vulnerable": true, "cpe23Uri": "cpe:2.3:a:acme:widget:*:*:*:*:*:*:*:*"}]}]}
    }
  ]
})";

} // namespace

int main() {
    // Commissioning time: baseline corpus and stored association.
    kb::Corpus baseline_corpus = synth::generate_corpus(synth::CorpusProfile::scada_demo());
    model::SystemModel deployed = synth::centrifuge_model();
    search::SearchEngine baseline_engine(baseline_corpus);
    search::AssociationMap baseline = search::associate(deployed, baseline_engine);
    std::cout << "Baseline (commissioning): " << baseline.total() << " associated vectors\n";

    // One year later: same records plus this week's advisories.
    kb::Corpus fresh_corpus = synth::generate_corpus(synth::CorpusProfile::scada_demo());
    kb::NvdImportStats stats;
    for (kb::Vulnerability& v : kb::import_nvd_feed_text(kFreshAdvisories, &stats))
        fresh_corpus.add(std::move(v));
    fresh_corpus.reindex();
    std::cout << "Imported " << stats.imported << " fresh advisories\n\n";

    search::SearchEngine fresh_engine(fresh_corpus);
    analysis::ReevaluationResult result =
        analysis::reevaluate(deployed, baseline, baseline_corpus, fresh_engine);

    std::cout << "Corpus delta: " << result.delta.new_vulnerabilities.size()
              << " new vulnerabilities";
    for (const std::string& id : result.delta.new_vulnerabilities) std::cout << ' ' << id;
    std::cout << "\n\nNew exposure on the deployed system:\n";
    for (const analysis::NewExposure& e : result.new_exposures)
        std::cout << "  " << e.component << " [" << e.attribute << "] <- " << e.match.id
                  << " (severity "
                  << (e.match.severity >= 0 ? std::to_string(e.match.severity) : "n/a")
                  << ")\n";
    std::cout << "\nAffected components:";
    for (const std::string& c : result.affected_components()) std::cout << ' ' << c << ';';
    std::cout << "\nNote: the advisory for the unrelated product correctly matched nothing.\n";
    return 0;
}
