// cybok — the command-line interface to the toolkit, mirroring the
// paper's "CYBOK command line interface" companion tool. Everything the
// library does, scriptable over files:
//
//   cybok generate  --out corpus.json [--scale F] [--seed N]
//   cybok model     --demo centrifuge|centrifuge-hardened|uav --out sys.sysm
//   cybok model     --synth N [--seed S] --out sys.sysm
//   cybok search    --corpus corpus.json --query "text" [--class CLASS]
//   cybok associate --corpus corpus.json --model sys.sysm [--out assoc.json]
//   cybok lint      --corpus corpus.json --model sys.sysm [--hazards demo] [--associate]
//                   [--format text|json|sarif] [--threads N] [--disable CODES] [--severity C=S,...]
//   cybok flow      --corpus corpus.json --model sys.sysm [--hazards demo]
//                   [--format text|json] [--fingerprint]
//   cybok report    --corpus corpus.json --model sys.sysm --out-dir DIR [--hazards demo]
//   cybok table1
//
// Exit code 0 on success, 1 on usage errors, 2 on runtime failures, 3 when
// lint finds error-severity diagnostics.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <optional>
#include <string>

#include "analysis/fleet.hpp"
#include "core/session.hpp"
#include "dashboard/fleet_view.hpp"
#include "dashboard/vector_graph.hpp"
#include "graph/graphml.hpp"
#include "kb/serialize.hpp"
#include "lint/lint.hpp"
#include "model/dsl.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "synth/corpus_gen.hpp"
#include "synth/model_gen.hpp"
#include "synth/scada.hpp"
#include "util/bytes.hpp"
#include "util/fault.hpp"
#include "util/strings.hpp"

using namespace cybok;

namespace {

/// --key value argument bag.
class Args {
public:
    Args(int argc, char** argv, int first) {
        for (int i = first; i < argc; ++i) {
            std::string key = argv[i];
            if (key.rfind("--", 0) != 0) throw Error("unexpected argument: " + key);
            key = key.substr(2);
            // Both "--format json" and "--format=json" spellings work.
            if (std::size_t eq = key.find('='); eq != std::string::npos) {
                values_[key.substr(0, eq)] = key.substr(eq + 1);
            } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
                values_[key] = argv[++i];
            } else {
                values_[key] = "";
            }
        }
    }

    [[nodiscard]] std::string get(const std::string& key, const std::string& fallback = "") const {
        auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }
    [[nodiscard]] std::string require(const std::string& key) const {
        auto it = values_.find(key);
        if (it == values_.end()) throw Error("missing required option --" + key);
        return it->second;
    }

private:
    std::map<std::string, std::string> values_;
};

model::SystemModel demo_model(const std::string& name) {
    if (name == "centrifuge") return synth::centrifuge_model();
    if (name == "centrifuge-hardened") return synth::centrifuge_model_hardened();
    if (name == "uav") return synth::uav_model();
    throw Error("unknown demo model: " + name + " (try centrifuge|centrifuge-hardened|uav)");
}

int cmd_generate(const Args& args) {
    double scale = std::stod(args.get("scale", "1.0"));
    std::uint64_t seed = std::stoull(args.get("seed", "20200629"));
    synth::CorpusProfile profile = scale == 1.0 ? synth::CorpusProfile::scada_demo()
                                                : synth::CorpusProfile::scaled(scale, seed);
    profile.seed = seed;
    kb::Corpus corpus = synth::generate_corpus(profile);
    kb::save_corpus(args.require("out"), corpus);
    kb::Corpus::Stats s = corpus.stats();
    std::printf("wrote %s: %zu patterns, %zu weaknesses, %zu vulnerabilities\n",
                args.require("out").c_str(), s.patterns, s.weaknesses, s.vulnerabilities);
    return 0;
}

int cmd_model(const Args& args) {
    model::SystemModel m;
    if (std::string zoo = args.get("zoo"); !zoo.empty()) {
        const std::optional<synth::ZooDomain> domain = synth::parse_zoo_domain(zoo);
        if (!domain)
            throw Error("unknown --zoo domain: " + zoo + " (try uav|automotive|grid|water)");
        synth::ZooConfig config;
        config.domain = *domain;
        config.components = std::stoul(args.get("components", "50"));
        config.seed = std::stoull(args.get("seed", "11"));
        m = synth::generate_zoo_system(config).model;
    } else if (std::string synth = args.get("synth"); !synth.empty()) {
        synth::ModelGenConfig config;
        config.components = std::stoul(synth);
        config.seed = std::stoull(args.get("seed", "11"));
        m = synth::generate_model(config);
    } else {
        m = demo_model(args.get("demo", "centrifuge"));
    }
    model::save_dsl(args.require("out"), m);
    std::printf("wrote %s: %zu components, %zu connectors\n", args.require("out").c_str(),
                m.component_count(), m.connectors().size());
    return 0;
}

int cmd_search(const Args& args) {
    kb::Corpus corpus = kb::load_corpus(args.require("corpus"));
    search::SearchEngine engine(corpus);
    std::string cls_name = args.get("class", "");
    std::vector<search::VectorClass> classes;
    if (cls_name.empty()) {
        classes = {search::VectorClass::AttackPattern, search::VectorClass::Weakness,
                   search::VectorClass::Vulnerability};
    } else if (cls_name == "pattern") classes = {search::VectorClass::AttackPattern};
    else if (cls_name == "weakness") classes = {search::VectorClass::Weakness};
    else if (cls_name == "vulnerability") classes = {search::VectorClass::Vulnerability};
    else throw Error("unknown --class: " + cls_name);

    std::size_t limit = std::stoul(args.get("limit", "10"));
    for (search::VectorClass cls : classes) {
        auto hits = engine.query_text(args.require("query"), cls);
        std::printf("%s: %zu hits\n", std::string(vector_class_name(cls)).c_str(),
                    hits.size());
        for (std::size_t i = 0; i < hits.size() && i < limit; ++i)
            std::printf("  %-14s score=%.3f  %s\n", hits[i].id.c_str(), hits[i].score,
                        hits[i].title.c_str());
    }
    return 0;
}

int cmd_associate(const Args& args) {
    kb::Corpus corpus = kb::load_corpus(args.require("corpus"));
    model::SystemModel m = model::load_dsl(args.require("model"));
    core::AnalysisSession session(std::move(m), corpus);
    const search::AssociationMap& assoc = session.associations();
    std::fputs(dashboard::attribute_summary_table(assoc).render().c_str(), stdout);
    std::string out = args.get("out");
    if (!out.empty()) {
        json::save_file(out, dashboard::associations_to_json(assoc));
        std::printf("wrote %s\n", out.c_str());
    }
    return 0;
}

int cmd_lint(const Args& args) {
    kb::Corpus corpus = kb::load_corpus(args.require("corpus"));
    model::SystemModel m = model::load_dsl(args.require("model"));
    std::optional<safety::HazardModel> hazards;
    if (args.get("hazards") == "demo")
        hazards = m.name().rfind("uav", 0) == 0 ? synth::uav_hazards()
                                                : synth::centrifuge_hazards();

    lint::LintOptions options;
    options.threads = std::stoul(args.get("threads", "0"));
    const std::string disable = args.get("disable");
    for (std::string_view code : strings::split(disable, ',')) {
        code = strings::trim(code);
        if (!code.empty()) options.disabled.insert(std::string(code));
    }
    const std::string severity = args.get("severity");
    for (std::string_view spec : strings::split(severity, ',')) {
        spec = strings::trim(spec);
        if (spec.empty()) continue;
        auto parts = strings::split(spec, '=');
        std::optional<lint::Severity> sev;
        if (parts.size() == 2) sev = lint::severity_from_name(strings::trim(parts[1]));
        if (!sev.has_value())
            throw Error("bad --severity entry: " + std::string(spec) +
                        " (want CODE=note|warning|error)");
        options.severity_overrides[std::string(strings::trim(parts[0]))] = *sev;
    }

    // --associate runs the association engine first and hands the map to
    // the lint pass, enabling the flow rules (F001-F003) and deepening the
    // consequence pass (C003/C004). Off by default: plain `cybok lint` is
    // the cheap pre-association defect scan.
    std::optional<core::AnalysisSession> session;
    lint::LintInput input;
    input.corpus = &corpus;
    if (hazards.has_value()) input.hazards = &*hazards;
    if (args.get("associate", "absent") != "absent") {
        session.emplace(std::move(m), corpus);
        input.model = &session->model();
        input.associations = &session->associations();
    } else {
        input.model = &m;
    }
    lint::LintResult result = lint::run_lint(input, options);

    const std::string format = args.get("format", "text");
    if (format == "json")
        std::fputs((json::dump(result.to_json(), 2) + "\n").c_str(), stdout);
    else if (format == "sarif")
        std::fputs((json::dump(result.to_sarif(), 2) + "\n").c_str(), stdout);
    else
        std::fputs(result.render_text().c_str(), stdout);
    return result.ok() ? 0 : 3;
}

int cmd_flow(const Args& args) {
    kb::Corpus corpus = kb::load_corpus(args.require("corpus"));
    model::SystemModel m = model::load_dsl(args.require("model"));
    core::AnalysisSession session(std::move(m), corpus);
    if (args.get("hazards") == "demo") {
        if (session.model().name().rfind("uav", 0) == 0)
            session.set_hazards(synth::uav_hazards());
        else
            session.set_hazards(synth::centrifuge_hazards());
    }
    const flow::FlowResult& r = session.flow();

    if (args.get("fingerprint", "absent") != "absent") {
        // The canonical byte rendering — what the incremental-vs-full
        // oracle and the determinism CI jobs compare.
        std::fputs(r.fingerprint().c_str(), stdout);
        return r.converged ? 0 : 2;
    }
    if (args.get("format", "text") == "json") {
        std::fputs((json::dump(r.to_json(), 2) + "\n").c_str(), stdout);
        return r.converged ? 0 : 2;
    }
    std::printf("%s\n", r.summary().c_str());
    for (const flow::ComponentFlow& cf : r.components) {
        if (cf.taint <= 0.0) continue;
        std::printf("  %-28s taint %.3f depth %u perm %.3f%s%s\n", cf.component.c_str(),
                    cf.taint, cf.depth, cf.permeability, cf.entry_point ? " [entry]" : "",
                    cf.hazard_linked ? " [hazard-linked]" : "");
    }
    for (const flow::HazardSlice& s : r.slices) {
        std::printf("  slice %s (%zu components%s):", s.hazard.c_str(), s.components.size(),
                    s.tainted_reach ? ", tainted reach" : "");
        for (const std::string& c : s.components) std::printf(" %s;", c.c_str());
        std::printf("\n");
    }
    for (const flow::Chokepoint& c : r.chokepoints)
        std::printf("  chokepoint %-20s severs %zu/%zu%s%s\n", c.component.c_str(), c.severed,
                    r.flows_total, c.in_min_cut ? " [min-cut]" : "",
                    c.articulation ? " [articulation]" : "");
    return r.converged ? 0 : 2;
}

int cmd_report(const Args& args) {
    kb::Corpus corpus = kb::load_corpus(args.require("corpus"));
    model::SystemModel m = model::load_dsl(args.require("model"));
    core::AnalysisSession session(std::move(m), corpus);
    if (args.get("hazards") == "demo") {
        if (session.model().name().rfind("uav", 0) == 0)
            session.set_hazards(synth::uav_hazards());
        else
            session.set_hazards(synth::centrifuge_hazards());
    }
    for (const std::string& f : session.export_bundle(args.require("out-dir")))
        std::printf("wrote %s\n", f.c_str());
    // Also write the merged component/attack-vector graph.
    graph::PropertyGraph vg = dashboard::build_vector_graph(
        session.model(), session.associations(), session.corpus());
    std::string path = args.require("out-dir") + "/vector_graph.graphml";
    graph::save_graphml(path, vg);
    std::printf("wrote %s\n", path.c_str());
    return 0;
}

int cmd_fleet(const Args& args) {
    // Same engine bootstrap as `serve`: files when given, the SCADA demo
    // corpus otherwise, with the snapshot cold-start cache available.
    kb::Corpus corpus = args.get("corpus").empty()
                            ? synth::generate_corpus(synth::CorpusProfile::scada_demo())
                            : kb::load_corpus(args.require("corpus"));
    core::SessionOptions engine_opts;
    engine_opts.snapshot_path = args.get("snapshot");
    std::shared_ptr<const core::SharedEngine> engine =
        core::make_shared_engine(corpus, engine_opts);

    analysis::FleetOptions options;
    options.systems = std::stoul(args.get("systems", "16"));
    options.base_seed = std::stoull(args.get("seed", "11"));
    options.components = std::stoul(args.get("components", "50"));
    options.threads = std::stoul(args.get("threads", "0"));
    options.top_paths = std::stoul(args.get("top", "3"));
    for (std::string_view name : strings::split(args.get("domains"), ',')) {
        name = strings::trim(name);
        if (name.empty()) continue;
        const std::optional<synth::ZooDomain> d = synth::parse_zoo_domain(name);
        if (!d)
            throw Error("unknown --domains entry: " + std::string(name) +
                        " (try uav|automotive|grid|water)");
        options.domains.push_back(*d);
    }

    const analysis::FleetResult result = analysis::analyze_fleet(engine->query(), options);
    if (args.get("fingerprint", "absent") != "absent") {
        // The canonical byte rendering — what the cross-thread-count
        // determinism checks compare.
        std::fputs(result.fingerprint().c_str(), stdout);
        return 0;
    }
    const std::string format = args.get("format", "text");
    if (format == "json")
        std::fputs((json::dump(result.to_json(), 2) + "\n").c_str(), stdout);
    else
        std::fputs(dashboard::render_fleet_table(result, format == "markdown").c_str(),
                   stdout);
    return 0;
}

int cmd_serve(const Args& args) {
    // Corpus + base model: from files when given, the paper's SCADA demo
    // otherwise — so `cybok serve` with no options is a working server.
    kb::Corpus corpus = args.get("corpus").empty()
                            ? synth::generate_corpus(synth::CorpusProfile::scada_demo())
                            : kb::load_corpus(args.require("corpus"));
    model::SystemModel base = args.get("model").empty()
                                  ? synth::centrifuge_model()
                                  : model::load_dsl(args.require("model"));
    core::SessionOptions engine_opts;
    engine_opts.snapshot_path = args.get("snapshot");
    // Built (or thawed + staleness-checked) exactly once here; every
    // session the server opens shares this one engine.
    std::shared_ptr<const core::SharedEngine> engine =
        core::make_shared_engine(corpus, engine_opts);

    serve::ServerOptions options;
    options.bind = args.get("bind", "127.0.0.1");
    options.port = static_cast<std::uint16_t>(std::stoul(args.get("port", "0")));
    options.lanes = std::stoul(args.get("lanes", "0"));
    options.queue_capacity = std::stoul(args.get("queue", "256"));
    options.registry.max_sessions = std::stoul(args.get("max-sessions", "4096"));

    serve::Server server(engine, std::move(base), options);
    server.start();
    const kb::Corpus::Stats s = engine->corpus().stats();
    std::printf("cybok-serve listening on %s:%u (%zu patterns, %zu weaknesses, "
                "%zu vulnerabilities; %zu lanes, queue %zu, max %zu sessions)\n",
                server.options().bind.c_str(), server.port(), s.patterns, s.weaknesses,
                s.vulnerabilities, server.options().lanes, server.options().queue_capacity,
                server.options().registry.max_sessions);
    std::fflush(stdout);
    // Runs until a client sends `shutdown` (the graceful path — in-flight
    // requests complete and their responses are written first).
    server.wait();
    const serve::ServerStats& st = server.stats();
    std::printf("cybok-serve stopped: %llu connections, %llu requests, %llu responses, "
                "%llu overload rejections\n",
                static_cast<unsigned long long>(st.connections_accepted.load()),
                static_cast<unsigned long long>(st.requests_received.load()),
                static_cast<unsigned long long>(st.responses_sent.load()),
                static_cast<unsigned long long>(st.overload_rejections.load()));
    return 0;
}

int cmd_client(const Args& args) {
    const std::string wire = args.require("type");
    std::optional<serve::MsgType> type;
    for (const serve::MessageTypeInfo& info : serve::known_message_types())
        if (info.wire == wire) type = info.type;
    if (!type.has_value()) throw Error("unknown --type: " + wire);

    serve::Request req;
    req.type = *type;
    req.session = args.get("session");
    req.text = args.get("text", args.get("query"));
    req.cls = args.get("class");
    req.limit = std::stoul(args.get("limit", "10"));
    if (const std::string path = args.get("model"); !path.empty())
        req.model_dsl = util::read_file(path);
    req.commit = args.get("commit", "absent") != "absent";
    req.snapshot = args.get("snapshot");
    req.delta = args.get("delta");
    req.systems = std::stoul(args.get("systems", "8"));
    req.domains = args.get("domains");
    req.seed = std::stoull(args.get("seed", "11"));
    req.components = std::stoul(args.get("components", "40"));

    serve::BlockingClient client(args.get("host", "127.0.0.1"),
                                 static_cast<std::uint16_t>(std::stoul(args.require("port"))));
    const serve::Response resp = client.call(req);
    json::Value out;
    out["id"] = resp.id;
    out["ok"] = resp.ok;
    if (resp.ok) {
        out["type"] = resp.type;
        out["result"] = resp.body;
    } else {
        json::Value error;
        error["code"] = resp.error_code;
        error["message"] = resp.error_message;
        out["error"] = std::move(error);
    }
    std::fputs((json::dump(out, 2) + "\n").c_str(), stdout);
    return resp.ok ? 0 : 4;
}

int cmd_table1(const Args&) {
    kb::Corpus corpus = synth::generate_corpus(synth::CorpusProfile::scada_demo());
    core::AnalysisSession session(synth::centrifuge_model(), corpus);
    std::fputs(dashboard::attribute_summary_table(session.associations()).render().c_str(),
               stdout);
    return 0;
}

void usage() {
    std::fputs(
        "usage: cybok <command> [options]\n"
        "  generate  --out corpus.json [--scale F] [--seed N]   synthesize a corpus\n"
        "  model     --demo NAME --out sys.sysm                 write a demo model (DSL)\n"
        "  model     --synth N [--seed S] --out sys.sysm        write a generated model\n"
        "  model     --zoo D [--components N] [--seed S] --out sys.sysm\n"
        "            write a zoo architecture (uav|automotive|grid|water)\n"
        "  search    --corpus C --query Q [--class K] [--limit N]\n"
        "  associate --corpus C --model M [--out assoc.json]\n"
        "  lint      --corpus C --model M [--hazards demo] [--format text|json|sarif]\n"
        "            [--threads N] [--disable CODES] [--severity CODE=SEV,...] [--associate]\n"
        "            static defect scan; --associate enables the flow rules\n"
        "            (F001-F003); exit 3 when errors are found\n"
        "  flow      --corpus C --model M [--hazards demo] [--format text|json]\n"
        "            [--fingerprint]\n"
        "            dataflow fixpoints: exposure taint, hazard slices, chokepoints\n"
        "  fleet     [--corpus C] [--snapshot PATH] [--systems N] [--domains CSV]\n"
        "            [--seed S] [--components N] [--threads N] [--top N]\n"
        "            [--format text|markdown|json] [--fingerprint]\n"
        "            batch-analyze N generated zoo systems (uav|automotive|grid|water)\n"
        "            against one shared engine; byte-deterministic comparative ranking\n"
        "  report    --corpus C --model M --out-dir D [--hazards demo]\n"
        "  serve     [--corpus C] [--model M] [--snapshot PATH] [--bind A] [--port P]\n"
        "            [--lanes N] [--queue N] [--max-sessions N]\n"
        "            analysis server (docs/PROTOCOL.md, docs/OPERATIONS.md);\n"
        "            stop it with `cybok client --type shutdown`\n"
        "  client    --port P --type T [--host A] [--session S] [--text Q] [--class K]\n"
        "            [--limit N] [--model FILE] [--commit] [--snapshot PATH]\n"
        "            [--delta PATH] [--systems N] [--domains CSV] [--seed S]\n"
        "            [--components N]\n"
        "            send one request, print the JSON response; exit 4 on a\n"
        "            typed error response\n"
        "  table1                                               reproduce the paper's Table 1\n"
        "global options (any command):\n"
        "  --fault-spec SPEC   arm deterministic fault injection for repro, e.g.\n"
        "                      'seed=7;kb.snapshot.open;search.cache.get=p:0.25;\n"
        "                      util.json.parse=nth:3' (sites listed in ARCHITECTURE.md §6);\n"
        "                      a per-site hit/fire report is printed to stderr on exit\n",
        stderr);
}

} // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        usage();
        return 1;
    }
    const std::string command = argv[1];
    try {
        Args args(argc, argv, 2);
        // Arm fault injection before dispatch so every site a command
        // crosses (corpus load, engine build, snapshot IO, cache) is
        // live; report observed hits/fires on the way out for repro.
        const bool faults_armed = !args.get("fault-spec").empty();
        if (faults_armed) util::FaultInjector::instance().arm_spec(args.get("fault-spec"));
        const auto dispatch = [&]() -> int {
            if (command == "generate") return cmd_generate(args);
            if (command == "model") return cmd_model(args);
            if (command == "search") return cmd_search(args);
            if (command == "associate") return cmd_associate(args);
            if (command == "lint") return cmd_lint(args);
            if (command == "flow") return cmd_flow(args);
            if (command == "fleet") return cmd_fleet(args);
            if (command == "report") return cmd_report(args);
            if (command == "serve") return cmd_serve(args);
            if (command == "client") return cmd_client(args);
            if (command == "table1") return cmd_table1(args);
            usage();
            return 1;
        };
        const int rc = dispatch();
        if (faults_armed) {
            for (const util::FaultSiteReport& s : util::FaultInjector::instance().report())
                std::fprintf(stderr, "fault-site %s: %llu hits, %llu fires\n", s.site.c_str(),
                             static_cast<unsigned long long>(s.hits),
                             static_cast<unsigned long long>(s.fires));
        }
        return rc;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "cybok %s: error: %s\n", command.c_str(), e.what());
        return 2;
    }
}
