// Second domain scenario: a small UAV control system. Exercises the
// safety layer end-to-end — control-structure extraction, attack-vector
// association, and consequence traces from the radio entry point to
// airframe-level hazards (GPS spoofing into the estimator, waypoint
// manipulation out of the approved volume).
//
//   $ ./uav_demo

#include <algorithm>
#include <iostream>

#include "core/session.hpp"
#include "search/filters.hpp"
#include "synth/corpus_gen.hpp"
#include "synth/scada.hpp"

using namespace cybok;

int main() {
    kb::Corpus corpus = synth::generate_corpus(synth::CorpusProfile::scada_demo());
    safety::HazardModel hazards = synth::uav_hazards();

    // Analysts drown without filters; keep the strongest findings only.
    core::SessionOptions options;
    options.filters.add(search::min_severity(cvss::Severity::High)).top_k_per_class(25);

    core::AnalysisSession session(synth::uav_model(), corpus, std::move(options));
    session.set_hazards(hazards);

    std::cout << "Control structure:\n";
    safety::ControlStructure cs = safety::extract_control_structure(session.model());
    for (const auto& a : cs.actions)
        std::cout << "  action: " << a.controller << " --[" << a.via << "]--> "
                  << a.controlled << '\n';
    for (const auto& f : cs.feedback)
        std::cout << "  feedback: " << f.source << " --[" << f.via << "]--> " << f.controller
                  << '\n';
    std::cout << '\n';

    std::cout << dashboard::render_text(session.report());

    std::cout << "Traces initiated from outside the aircraft:\n";
    safety::ConsequenceAnalyzer analyzer(session.model(), hazards);
    for (const safety::ConsequenceTrace& t :
         analyzer.externally_reachable(session.associations()))
        std::cout << "  " << safety::to_string(t) << '\n';

    // STPA-with-security causal scenarios: how each unsafe control action
    // could be *made* to happen, and which weakness classes support it.
    std::cout << "\nCausal scenarios (supported ones first):\n";
    std::vector<safety::CausalScenario> scenarios = session.causal_scenarios();
    std::stable_partition(scenarios.begin(), scenarios.end(),
                          [](const safety::CausalScenario& s) { return s.supported(); });
    for (const safety::CausalScenario& s : scenarios)
        std::cout << "  " << safety::to_string(s) << '\n';

    std::cout << "\nHardening priorities:\n";
    for (const analysis::HardeningCandidate& c : session.hardening_candidates())
        std::cout << "  " << c.component << ": blocks " << c.traces_blocked
                  << " trace(s), cuts " << c.paths_cut << " path(s), removes "
                  << c.vectors_removed << " vector(s)"
                  << (c.articulation_point ? " [architectural choke point]" : "") << '\n';
    return 0;
}
