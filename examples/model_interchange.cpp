// Model interchange: export the SCADA architecture to GraphML (the format
// the paper's SysML exporter emits), reload it, and show that the security
// analysis is identical on the round-tripped model — the modularity
// property that lets any modeling language participate in the pipeline.
//
//   $ ./model_interchange

#include <iostream>

#include "core/session.hpp"
#include "graph/graphml.hpp"
#include "model/export.hpp"
#include "synth/corpus_gen.hpp"
#include "synth/scada.hpp"

using namespace cybok;

int main() {
    kb::Corpus corpus = synth::generate_corpus(synth::CorpusProfile::scada_demo());

    // Export: model -> general architectural graph -> GraphML text.
    model::SystemModel original = synth::centrifuge_model();
    std::string graphml = graph::to_graphml(model::to_graph(original), original.name());
    std::cout << "GraphML export: " << graphml.size() << " bytes\n";

    // A different tool imports the same document...
    model::SystemModel imported = model::from_graph(graph::from_graphml(graphml));
    std::cout << "Imported " << imported.component_count() << " components, "
              << imported.connectors().size() << " connectors\n";

    // ...and the security analysis agrees.
    core::AnalysisSession a(std::move(original), corpus);
    core::AnalysisSession b(std::move(imported), corpus);
    std::cout << "original total vectors:     " << a.associations().total() << '\n';
    std::cout << "round-tripped total vectors: " << b.associations().total() << '\n';
    std::cout << (a.associations().total() == b.associations().total()
                      ? "analysis identical after round trip\n"
                      : "MISMATCH\n");
    return 0;
}
