// Serve-layer tests: the session registry's copy-on-write overlays,
// admission control, and hot swap; the server end to end over real
// sockets (typed errors on the wire, pipelining, graceful shutdown); the
// hot-swap-under-load drain guarantee (zero lost in-flight requests); and
// every serve.* fault site forced to fire its documented degradation.
// The Serve* suite names put the concurrency tests in the CI tsan net.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <set>
#include <thread>
#include <vector>

#include "kb/delta.hpp"
#include "model/dsl.hpp"
#include "serve/client.hpp"
#include "util/bytes.hpp"
#include "serve/server.hpp"
#include "synth/corpus_gen.hpp"
#include "synth/scada.hpp"
#include "util/fault.hpp"

using namespace cybok;
using namespace cybok::serve;

namespace {

/// Small corpus (a few hundred records) so server start is milliseconds.
const kb::Corpus& serve_corpus() {
    static const kb::Corpus corpus =
        synth::generate_corpus(synth::CorpusProfile::scaled(0.05, 42));
    return corpus;
}

std::shared_ptr<const core::SharedEngine> serve_engine() {
    static const std::shared_ptr<const core::SharedEngine> engine =
        core::make_shared_engine(serve_corpus(), core::SessionOptions{});
    return engine;
}

RegistryOptions small_registry(std::size_t max_sessions = 64) {
    RegistryOptions opts;
    opts.max_sessions = max_sessions;
    return opts;
}

/// A registry over the shared test engine and the centrifuge base model.
std::unique_ptr<SessionRegistry> make_registry(std::size_t max_sessions = 64) {
    return std::make_unique<SessionRegistry>(serve_engine(), synth::centrifuge_model(),
                                             small_registry(max_sessions));
}

/// Write a thawable engine snapshot to a temp path and return it.
std::string write_snapshot(const std::string& name) {
    const std::string path = (std::filesystem::temp_directory_path() / name).string();
    search::save_engine_snapshot(*serve_engine()->engine, path);
    return path;
}

struct ServerFixture {
    explicit ServerFixture(ServerOptions options = {}) {
        options.port = 0; // ephemeral
        server = std::make_unique<Server>(serve_engine(), synth::centrifuge_model(),
                                          std::move(options));
        server->start();
    }
    ~ServerFixture() {
        server->stop();
        server->wait();
    }
    [[nodiscard]] BlockingClient connect() const {
        return BlockingClient("127.0.0.1", server->port());
    }
    std::unique_ptr<Server> server;
};

Request make_request(MsgType type) {
    Request req;
    req.type = type;
    return req;
}

} // namespace

// -- registry: copy-on-write overlays -----------------------------------------

TEST(ServeRegistry, OverlaySessionsShareTheBaseAnalysis) {
    auto registry = make_registry();
    const std::string a = registry->open("");
    const std::string b = registry->open("");
    EXPECT_FALSE(registry->find(a)->materialized());
    EXPECT_FALSE(registry->find(b)->materialized());
    // Both overlays read the same lazily computed base association map.
    std::size_t total_a = 0;
    {
        ServeSession::AnalysisGuard guard(*registry->find(a));
        total_a = guard->associations().total();
    }
    {
        ServeSession::AnalysisGuard guard(*registry->find(b));
        EXPECT_EQ(guard->associations().total(), total_a);
    }
}

TEST(ServeRegistry, MaterializeForksWithoutDisturbingTheBase) {
    auto registry = make_registry();
    const std::string cow = registry->open("");
    const std::string witness = registry->open("");
    std::size_t base_total = 0;
    {
        ServeSession::AnalysisGuard guard(*registry->find(witness));
        base_total = guard->associations().total();
    }
    // Fork + commit a hardened candidate on the COW session.
    const std::shared_ptr<ServeSession> session = registry->find(cow);
    registry->materialize(*session);
    EXPECT_TRUE(session->materialized());
    {
        ServeSession::AnalysisGuard guard(*session);
        (void)guard->commit(synth::centrifuge_model_hardened());
    }
    // The witness overlay still sees the untouched base model's map.
    ServeSession::AnalysisGuard guard(*registry->find(witness));
    EXPECT_EQ(guard->associations().total(), base_total);
    EXPECT_FALSE(registry->find(witness)->materialized());
}

TEST(ServeRegistry, OwnModelSessionsAreMaterializedFromBirth) {
    auto registry = make_registry();
    const std::string id = registry->open(model::to_dsl(synth::uav_model()));
    EXPECT_TRUE(registry->find(id)->materialized());
    ServeSession::AnalysisGuard guard(*registry->find(id));
    EXPECT_EQ(guard->model().name(), synth::uav_model().name());
}

TEST(ServeRegistry, BadModelDslIsATypedRejection) {
    auto registry = make_registry();
    try {
        (void)registry->open("this is not the DSL");
        FAIL() << "expected ProtocolError";
    } catch (const ProtocolError& e) {
        EXPECT_EQ(e.code(), ErrorCode::ModelInvalid);
    }
    EXPECT_EQ(registry->stats().open_sessions, 0u); // nothing leaked
}

TEST(ServeRegistry, SessionLimitIsEnforcedWithTypedRejection) {
    auto registry = make_registry(2);
    (void)registry->open("");
    (void)registry->open("");
    try {
        (void)registry->open("");
        FAIL() << "expected ProtocolError";
    } catch (const ProtocolError& e) {
        EXPECT_EQ(e.code(), ErrorCode::SessionLimit);
    }
    const RegistryStats stats = registry->stats();
    EXPECT_EQ(stats.open_sessions, 2u);
    EXPECT_EQ(stats.session_limit_rejections, 1u);
    // Closing frees capacity.
    registry->close("s-1");
    EXPECT_NO_THROW((void)registry->open(""));
}

TEST(ServeRegistry, UnknownSessionIsTyped) {
    auto registry = make_registry();
    try {
        (void)registry->find("s-404");
        FAIL() << "expected ProtocolError";
    } catch (const ProtocolError& e) {
        EXPECT_EQ(e.code(), ErrorCode::UnknownSession);
    }
    EXPECT_THROW(registry->close("s-404"), ProtocolError);
}

// -- registry: hot swap -------------------------------------------------------

TEST(ServeRegistry, SwapInstallsANewGenerationAndPinsOldSessions) {
    auto registry = make_registry();
    const std::string old_session = registry->open("");
    EXPECT_EQ(registry->find(old_session)->generation(), 1u);

    const std::string path = write_snapshot("serve_swap_gen2.snap");
    const std::uint64_t gen = registry->swap(path);
    EXPECT_EQ(gen, 2u);
    EXPECT_EQ(registry->current()->id, 2u);
    EXPECT_EQ(registry->current()->source, path);

    // The pre-swap session stays pinned to generation 1 and still answers.
    EXPECT_EQ(registry->find(old_session)->generation(), 1u);
    {
        ServeSession::AnalysisGuard guard(*registry->find(old_session));
        EXPECT_GT(guard->associations().total(), 0u);
    }
    // New sessions land on generation 2.
    const std::string fresh = registry->open("");
    EXPECT_EQ(registry->find(fresh)->generation(), 2u);
    std::filesystem::remove(path);
}

TEST(ServeRegistry, FailedSwapKeepsTheOldGenerationServing) {
    auto registry = make_registry();
    try {
        (void)registry->swap("/nonexistent/gen.snap");
        FAIL() << "expected ProtocolError";
    } catch (const ProtocolError& e) {
        EXPECT_EQ(e.code(), ErrorCode::SwapFailed);
    }
    EXPECT_EQ(registry->current()->id, 1u);
    EXPECT_NO_THROW((void)registry->open(""));
}

TEST(ServeRegistry, AggregateMetricsCountsColdStartOncePerGeneration) {
    auto registry = make_registry();
    const std::string first = registry->open("");
    (void)registry->open("");
    (void)registry->open(model::to_dsl(synth::uav_model()));
    {
        // Associations are lazy; drive one so the aggregate has content.
        ServeSession::AnalysisGuard guard(*registry->find(first));
        (void)guard->associations().total();
    }
    const search::AssocMetrics total = registry->aggregate_metrics();
    // The shared test engine was built fresh (no snapshot), so shared
    // cold-start degradations must be zero — not multiplied per session.
    EXPECT_EQ(total.degrade.snapshot_fallbacks, 0u);
    EXPECT_GE(total.components, 1u);
}

// -- registry: concurrency (tsan) ---------------------------------------------

TEST(ServeConcurrency, ConcurrentOpenQueryCloseIsRaceFree) {
    auto registry = make_registry(256);
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(8);
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < 12; ++i) {
                try {
                    const std::string id = registry->open("");
                    {
                        ServeSession::AnalysisGuard guard(*registry->find(id));
                        (void)guard->associations().total();
                    }
                    if ((t + i) % 2 == 0) registry->close(id);
                } catch (const Error&) {
                    ++failures;
                }
            }
        });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(failures.load(), 0);
    const RegistryStats stats = registry->stats();
    EXPECT_EQ(stats.total_opened, 96u);
    EXPECT_EQ(stats.open_sessions, stats.total_opened - 48u);
}

TEST(ServeConcurrency, SwapUnderLoadLosesNoRequests) {
    auto registry = make_registry(256);
    const std::string path = write_snapshot("serve_swap_load.snap");
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<int> failures{0};
    std::vector<std::thread> workers;
    workers.reserve(4);
    for (int t = 0; t < 4; ++t) {
        workers.emplace_back([&] {
            while (!stop.load(std::memory_order_acquire)) {
                try {
                    // Pin a generation exactly as a server lane would, and
                    // run a query against it; the lease must always
                    // observe a fully formed generation.
                    SessionRegistry::ReadLease lease(*registry);
                    const auto hits = lease.generation()->engine->engine->query_text(
                        "control network overflow", search::VectorClass::Weakness);
                    (void)hits;
                    ++completed;
                } catch (const Error&) {
                    ++failures;
                }
            }
        });
    }
    std::uint64_t swaps = 0;
    for (int i = 0; i < 5; ++i) {
        (void)registry->swap(path);
        ++swaps;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    stop.store(true, std::memory_order_release);
    for (std::thread& t : workers) t.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_GT(completed.load(), 0u);
    EXPECT_EQ(registry->stats().swaps, swaps);
    EXPECT_EQ(registry->current()->id, 1u + swaps);
    std::filesystem::remove(path);
}

// -- server: end to end over sockets ------------------------------------------

TEST(ServeServer, HelloPingQueryOverTheWire) {
    ServerFixture fixture;
    BlockingClient client = fixture.connect();

    const Response hello = client.call(make_request(MsgType::Hello));
    ASSERT_TRUE(hello.ok);
    EXPECT_EQ(hello.body.get_int("protocol"), kProtocolVersion);
    EXPECT_EQ(hello.body.get_int("generation"), 1);
    EXPECT_EQ(hello.body.at("corpus").get_int("patterns"),
              static_cast<std::int64_t>(serve_corpus().patterns().size()));

    Request ping = make_request(MsgType::Ping);
    ping.text = "hi";
    const Response pong = client.call(ping);
    ASSERT_TRUE(pong.ok);
    EXPECT_EQ(pong.body.get_string("echo"), "hi");

    Request query = make_request(MsgType::Query);
    query.text = "buffer overflow";
    query.limit = 3;
    const Response hits = client.call(query);
    ASSERT_TRUE(hits.ok);
    EXPECT_GT(hits.body.get_int("count"), 0);
}

TEST(ServeServer, SessionLifecycleAndWhatIfCommit) {
    ServerFixture fixture;
    BlockingClient client = fixture.connect();

    const Response open = client.call(make_request(MsgType::SessionOpen));
    ASSERT_TRUE(open.ok);
    const std::string sid = open.body.get_string("session");
    EXPECT_FALSE(open.body.get_bool("materialized"));

    Request assoc = make_request(MsgType::Associate);
    assoc.session = sid;
    const Response table = client.call(assoc);
    ASSERT_TRUE(table.ok);
    EXPECT_GT(table.body.get_int("total"), 0);

    Request whatif = make_request(MsgType::WhatIf);
    whatif.session = sid;
    whatif.model_dsl = model::to_dsl(synth::centrifuge_model_hardened());
    whatif.commit = true;
    const Response verdict = client.call(whatif);
    ASSERT_TRUE(verdict.ok);
    EXPECT_TRUE(verdict.body.get_bool("committed"));
    EXPECT_LE(verdict.body.get_int("delta_total"), 0); // hardening helps

    const Response list = client.call(make_request(MsgType::SessionList));
    ASSERT_TRUE(list.ok);
    EXPECT_EQ(list.body.get_int("count"), 1);
    EXPECT_TRUE(list.body.at("sessions").as_array()[0].get_bool("materialized"));

    Request close = make_request(MsgType::SessionClose);
    close.session = sid;
    ASSERT_TRUE(client.call(close).ok);
    const Response again = client.call(close);
    EXPECT_FALSE(again.ok);
    EXPECT_EQ(again.error_code, "unknown_session");
}

TEST(ServeServer, DeltaApplyMakesRecordsVisibleAndCompactKeepsThem) {
    ServerFixture fixture;
    BlockingClient client = fixture.connect();

    // One feed tick: a probe record whose vocabulary no base query hits.
    kb::CorpusDelta delta;
    kb::Weakness probe;
    probe.id = kb::WeaknessId{900001};
    probe.name = "Unverified glimmerwick frame origin";
    probe.description =
        "Relay accepts glimmerwick maintenance frames without verifying origin.";
    delta.weaknesses.push_back(std::move(probe));
    const std::string path =
        (std::filesystem::temp_directory_path() / "serve_tick.delta").string();
    util::write_file(path, kb::freeze_corpus_delta(delta));

    Request query = make_request(MsgType::Query);
    query.text = "glimmerwick maintenance frames";
    query.cls = "weakness";
    EXPECT_EQ(client.call(query).body.get_int("count"), 0);

    Request apply = make_request(MsgType::DeltaApply);
    apply.delta = path;
    const Response applied = client.call(apply);
    ASSERT_TRUE(applied.ok);
    EXPECT_EQ(applied.body.get_int("generation"), 2);
    EXPECT_EQ(applied.body.at("applied").get_int("records"), 1);
    EXPECT_EQ(applied.body.at("applied").get_int("segments"), 1);

    // Staleness-to-visibility: the very next sessionless query sees it.
    const Response hit = client.call(query);
    ASSERT_TRUE(hit.ok);
    EXPECT_GT(hit.body.get_int("count"), 0);

    // Compaction folds the segment into a fresh sealed base generation
    // and the record survives the flip.
    const Response folded = client.call(make_request(MsgType::Compact));
    ASSERT_TRUE(folded.ok);
    EXPECT_TRUE(folded.body.get_bool("folded"));
    EXPECT_EQ(folded.body.get_int("generation"), 3);
    EXPECT_GT(client.call(query).body.get_int("count"), 0);

    // Compacting a sealed base is the identity: no generation flip.
    const Response noop = client.call(make_request(MsgType::Compact));
    ASSERT_TRUE(noop.ok);
    EXPECT_FALSE(noop.body.get_bool("folded"));
    EXPECT_EQ(noop.body.get_int("generation"), 3);

    std::filesystem::remove(path);
}

TEST(ServeServer, SixtyFourConcurrentSessionsServeConcurrently) {
    ServerOptions options;
    options.registry.max_sessions = 128;
    ServerFixture fixture(options);

    // 8 client threads x 8 sessions each: open, then posture every one.
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(8);
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&] {
            try {
                BlockingClient client = fixture.connect();
                std::vector<std::string> mine;
                for (int i = 0; i < 8; ++i) {
                    const Response open = client.call(make_request(MsgType::SessionOpen));
                    if (!open.ok) throw Error("open failed: " + open.error_message);
                    mine.push_back(open.body.get_string("session"));
                }
                for (const std::string& sid : mine) {
                    Request posture = make_request(MsgType::Posture);
                    posture.session = sid;
                    if (!client.call(posture).ok) throw Error("posture failed");
                }
            } catch (const Error&) {
                ++failures;
            }
        });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(failures.load(), 0);
    BlockingClient client = fixture.connect();
    const Response list = client.call(make_request(MsgType::SessionList));
    ASSERT_TRUE(list.ok);
    EXPECT_EQ(list.body.get_int("count"), 64);
}

TEST(ServeServer, PipelinedRequestsAllComeBackCorrelated) {
    ServerFixture fixture;
    BlockingClient client = fixture.connect();
    constexpr int kInFlight = 32;
    for (int i = 0; i < kInFlight; ++i) {
        Request ping = make_request(MsgType::Ping);
        ping.text = "m" + std::to_string(i);
        client.send(std::move(ping));
    }
    std::set<std::int64_t> seen;
    for (int i = 0; i < kInFlight; ++i) {
        const Response resp = client.receive();
        EXPECT_TRUE(resp.ok);
        seen.insert(resp.id);
    }
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(kInFlight)); // every id exactly once
}

TEST(ServeServer, BadFrameGetsTypedErrorThenConnectionCloses) {
    // Drive a framing violation through a server whose frame ceiling is
    // tiny: the oversized length prefix is a BadFrame on arrival.
    ServerOptions small;
    small.max_frame_bytes = 64;
    ServerFixture tiny(small);
    BlockingClient tiny_client = tiny.connect();
    Request big = make_request(MsgType::Ping);
    big.text = std::string(256, 'x');
    tiny_client.send(std::move(big));
    const Response err = tiny_client.receive();
    EXPECT_FALSE(err.ok);
    EXPECT_EQ(err.error_code, "bad_frame");
    // The server then closes the stream: the next receive sees EOF.
    EXPECT_THROW((void)tiny_client.receive(), IoError);
}

TEST(ServeServer, ZeroCapacityQueueShedsLoadWithTypedRejection) {
    ServerOptions options;
    options.queue_capacity = 0; // admission control in its tightest setting
    ServerFixture fixture(options);
    BlockingClient client = fixture.connect();
    client.send(make_request(MsgType::Ping));
    const Response resp = client.receive();
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.error_code, "overloaded");
    EXPECT_GE(fixture.server->stats().overload_rejections.load(), 1u);
}

TEST(ServeServer, GracefulShutdownAcknowledgesThenStops) {
    ServerFixture fixture;
    BlockingClient client = fixture.connect();
    const Response resp = client.call(make_request(MsgType::Shutdown));
    ASSERT_TRUE(resp.ok);
    EXPECT_TRUE(resp.body.get_bool("stopping"));
    fixture.server->wait();
    EXPECT_FALSE(fixture.server->running());
}

TEST(ServeConcurrency, HotSwapUnderLoadLosesNoInFlightRequests) {
    ServerOptions options;
    options.queue_capacity = 4096; // no overload shedding in this test
    ServerFixture fixture(options);
    const std::string path = write_snapshot("serve_e2e_swap.snap");

    // A pre-swap session must keep answering from its pinned generation.
    BlockingClient setup = fixture.connect();
    const Response open = setup.call(make_request(MsgType::SessionOpen));
    ASSERT_TRUE(open.ok);
    const std::string pinned = open.body.get_string("session");

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> ok_count{0};
    std::atomic<int> failures{0};
    std::vector<std::thread> hammers;
    hammers.reserve(4);
    for (int t = 0; t < 4; ++t) {
        hammers.emplace_back([&] {
            try {
                BlockingClient client = fixture.connect();
                while (!stop.load(std::memory_order_acquire)) {
                    Request query = make_request(MsgType::Query);
                    query.text = "firmware tamper network";
                    query.limit = 2;
                    const Response resp = client.call(std::move(query));
                    if (resp.ok)
                        ++ok_count;
                    else
                        ++failures;
                }
            } catch (const Error&) {
                ++failures;
            }
        });
    }
    // Swap generations twice while the hammers run.
    for (int i = 0; i < 2; ++i) {
        Request swap = make_request(MsgType::SnapshotSwap);
        swap.snapshot = path;
        const Response resp = setup.call(std::move(swap));
        ASSERT_TRUE(resp.ok) << resp.error_message;
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
    stop.store(true, std::memory_order_release);
    for (std::thread& t : hammers) t.join();

    // Zero losses: every request either completed ok (against whichever
    // generation it pinned) — none vanished or failed.
    EXPECT_EQ(failures.load(), 0);
    EXPECT_GT(ok_count.load(), 0u);
    // The pre-swap session still answers, pinned to generation 1.
    Request posture = make_request(MsgType::Posture);
    posture.session = pinned;
    EXPECT_TRUE(setup.call(posture).ok);
    const Response hello = setup.call(make_request(MsgType::Hello));
    EXPECT_EQ(hello.body.get_int("generation"), 3);
    std::filesystem::remove(path);
}

// -- fault sites --------------------------------------------------------------

TEST(ServeFaults, FrameDecodeFaultIsTypedBadFrame) {
    util::FaultScope scope("serve.frame.decode");
    FrameDecoder decoder;
    decoder.feed(encode_frame(std::string_view("{}")));
    try {
        (void)decoder.next();
        FAIL() << "expected ProtocolError";
    } catch (const ProtocolError& e) {
        EXPECT_EQ(e.code(), ErrorCode::BadFrame);
    }
}

TEST(ServeFaults, RequestDecodeFaultIsTypedBadRequest) {
    util::FaultScope scope("serve.request.decode");
    try {
        (void)decode_request(R"({"type":"ping"})");
        FAIL() << "expected ProtocolError";
    } catch (const ProtocolError& e) {
        EXPECT_EQ(e.code(), ErrorCode::BadRequest);
    }
}

TEST(ServeFaults, SessionOpenFaultLeaksNoSession) {
    auto registry = make_registry();
    {
        util::FaultScope scope("serve.session.open");
        EXPECT_THROW((void)registry->open(""), Error);
    }
    EXPECT_EQ(registry->stats().open_sessions, 0u);
    EXPECT_NO_THROW((void)registry->open("")); // healthy after disarm
}

TEST(ServeFaults, SwapLoadFaultKeepsOldGeneration) {
    auto registry = make_registry();
    const std::string path = write_snapshot("serve_fault_swap.snap");
    {
        util::FaultScope scope("serve.swap.load");
        try {
            (void)registry->swap(path);
            FAIL() << "expected ProtocolError";
        } catch (const ProtocolError& e) {
            EXPECT_EQ(e.code(), ErrorCode::SwapFailed);
        }
    }
    EXPECT_EQ(registry->current()->id, 1u);
    EXPECT_EQ(registry->swap(path), 2u); // healthy after disarm
    std::filesystem::remove(path);
}

TEST(ServeFaults, AcceptFaultDropsOneConnectionListenerSurvives) {
    ServerFixture fixture;
    {
        util::FaultScope scope("serve.accept=nth:1");
        // The first accept is injected to fail: that connection is dropped
        // (the client sees EOF on its first read), later ones are fine.
        try {
            BlockingClient dropped = fixture.connect();
            (void)dropped.call(make_request(MsgType::Ping));
            // Acceptable alternate outcome: connect raced ahead of the
            // injected accept; either way the server must still serve.
        } catch (const Error&) {
            // expected: server dropped the connection
        }
        BlockingClient healthy = fixture.connect();
        EXPECT_TRUE(healthy.call(make_request(MsgType::Ping)).ok);
    }
}

TEST(ServeFaults, ResponseWriteFaultClosesConnectionAfterExecution) {
    ServerFixture fixture;
    BlockingClient client = fixture.connect();
    ASSERT_TRUE(client.call(make_request(MsgType::Ping)).ok);
    {
        util::FaultScope scope("serve.response.write=nth:1");
        client.send(make_request(MsgType::Ping));
        // The request executed but its response was abandoned; the server
        // closes the connection, so the client sees EOF.
        EXPECT_THROW((void)client.receive(), IoError);
    }
    EXPECT_GE(fixture.server->stats().write_failures.load(), 1u);
    BlockingClient fresh = fixture.connect();
    EXPECT_TRUE(fresh.call(make_request(MsgType::Ping)).ok);
}
