#include <gtest/gtest.h>

#include "dashboard/vector_graph.hpp"
#include "graph/graphml.hpp"
#include "synth/corpus_gen.hpp"
#include "synth/scada.hpp"

using namespace cybok;
using namespace cybok::dashboard;

namespace {
struct Fixture {
    kb::Corpus corpus = synth::generate_corpus(synth::CorpusProfile::scaled(0.1, 99));
    model::SystemModel m = synth::centrifuge_model();
    search::SearchEngine engine{corpus};
    search::AssociationMap assoc = search::associate(m, engine);
};
Fixture& fixture() {
    static Fixture f;
    return f;
}
} // namespace

TEST(VectorGraph, ContainsAllComponentNodes) {
    Fixture& f = fixture();
    graph::PropertyGraph g = build_vector_graph(f.m, f.assoc, f.corpus);
    VectorGraphStats stats = vector_graph_stats(g);
    EXPECT_EQ(stats.components, 6u);
    EXPECT_GT(stats.patterns, 0u);
    EXPECT_GT(stats.weaknesses, 0u);
    EXPECT_GT(stats.vulnerability_groups, 0u);
    EXPECT_GT(stats.association_edges, 0u);
}

TEST(VectorGraph, GroupingBoundsVulnerabilityNodes) {
    Fixture& f = fixture();
    graph::PropertyGraph grouped = build_vector_graph(f.m, f.assoc, f.corpus);
    // Grouped: far fewer vulnerability nodes than CVE matches.
    std::size_t cves = f.assoc.total(search::VectorClass::Vulnerability);
    EXPECT_LT(vector_graph_stats(grouped).vulnerability_groups, cves / 2);

    VectorGraphOptions ungrouped;
    ungrouped.group_vulnerabilities = false;
    graph::PropertyGraph raw = build_vector_graph(f.m, f.assoc, f.corpus, ungrouped);
    EXPECT_GT(raw.node_count(), grouped.node_count());
}

TEST(VectorGraph, SharedWeaknessHasFanoutTwo) {
    // CWE-78 is associated to both BPCS and SIS (same descriptor class),
    // so its node must record fanout >= 2 — the paper's shared finding.
    Fixture& f = fixture();
    graph::PropertyGraph g = build_vector_graph(f.m, f.assoc, f.corpus);
    bool found = false;
    for (graph::NodeId n : g.nodes()) {
        if (g.node(n).label.rfind("CWE-78 ", 0) != 0) continue;
        found = true;
        const graph::Property* fanout = g.get_property(n, "fanout");
        ASSERT_NE(fanout, nullptr);
        EXPECT_GE(std::get<std::int64_t>(*fanout), 2);
    }
    EXPECT_TRUE(found);
    EXPECT_GT(vector_graph_stats(g).shared_vectors, 0u);
}

TEST(VectorGraph, MinComponentDegreeFiltersPrivateVectors) {
    Fixture& f = fixture();
    VectorGraphOptions opts;
    opts.min_component_degree = 2;
    graph::PropertyGraph shared_only = build_vector_graph(f.m, f.assoc, f.corpus, opts);
    graph::PropertyGraph all = build_vector_graph(f.m, f.assoc, f.corpus);
    EXPECT_LT(shared_only.node_count(), all.node_count());
    // Every surviving vector node has fanout >= 2.
    for (graph::NodeId n : shared_only.nodes()) {
        const graph::Property* fanout = shared_only.get_property(n, "fanout");
        if (fanout != nullptr) {
            EXPECT_GE(std::get<std::int64_t>(*fanout), 2);
        }
    }
}

TEST(VectorGraph, CrossReferenceEdgesPresent) {
    Fixture& f = fixture();
    graph::PropertyGraph g = build_vector_graph(f.m, f.assoc, f.corpus);
    VectorGraphStats stats = vector_graph_stats(g);
    EXPECT_GT(stats.cross_reference_edges, 0u);

    VectorGraphOptions no_xref;
    no_xref.include_cross_references = false;
    graph::PropertyGraph plain = build_vector_graph(f.m, f.assoc, f.corpus, no_xref);
    EXPECT_EQ(vector_graph_stats(plain).cross_reference_edges, 0u);
}

TEST(VectorGraph, ArchitectureEdgesToggle) {
    Fixture& f = fixture();
    VectorGraphOptions no_arch;
    no_arch.include_architecture = false;
    graph::PropertyGraph without = build_vector_graph(f.m, f.assoc, f.corpus, no_arch);
    graph::PropertyGraph with = build_vector_graph(f.m, f.assoc, f.corpus);
    EXPECT_GT(with.edge_count(), without.edge_count());
}

TEST(VectorGraph, SerializesToGraphml) {
    Fixture& f = fixture();
    graph::PropertyGraph g = build_vector_graph(f.m, f.assoc, f.corpus);
    std::string xml = graph::to_graphml(g, "vector-space");
    graph::PropertyGraph back = graph::from_graphml(xml);
    EXPECT_EQ(back.node_count(), g.node_count());
    EXPECT_EQ(back.edge_count(), g.edge_count());
}

TEST(VectorGraph, EmptyAssociationYieldsArchitectureOnly) {
    Fixture& f = fixture();
    graph::PropertyGraph g = build_vector_graph(f.m, search::AssociationMap{}, f.corpus);
    VectorGraphStats stats = vector_graph_stats(g);
    EXPECT_EQ(stats.components, 6u);
    EXPECT_EQ(stats.patterns + stats.weaknesses + stats.vulnerability_groups, 0u);
    EXPECT_EQ(stats.association_edges, 0u);
}
