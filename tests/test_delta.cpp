// Segmented incremental indexing — the delta path's unit tests and the
// differential oracle (fast half; the 16-seed fault-armed sweep lives in
// test_fault_matrix.cpp under the soak label).
//
// The contract under test: a SegmentedEngine over base + N deltas answers
// every query *bitwise identically* to a from-scratch SearchEngine over
// the merged corpus — scores compared with EXPECT_EQ on doubles, never
// NEAR — pre- and post-compaction, across tombstone edge cases (withdraw
// then re-add, withdraw of a delta-only record, the empty delta).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "kb/delta.hpp"
#include "kb/serialize.hpp"
#include "kb/snapshot.hpp"
#include "search/engine.hpp"
#include "search/generation.hpp"
#include "synth/corpus_gen.hpp"
#include "synth/model_gen.hpp"
#include "util/fault.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

using namespace cybok;

namespace {

kb::Corpus small_corpus(std::uint64_t seed = 7) {
    return synth::generate_corpus(synth::CorpusProfile::scaled(0.02, seed));
}

/// Canonical byte form of a corpus (ordered-key JSON), for "unchanged"
/// and "same merged content" assertions.
std::string corpus_bytes(const kb::Corpus& corpus) {
    return json::dump(kb::to_json(corpus));
}

/// A mixed delta over `corpus`: a few modified records per class, a few
/// withdrawals (disjoint from the modifications), and fresh additions
/// carrying `tag`-unique vocabulary. Pure function of (corpus, rng, tag).
kb::CorpusDelta make_delta(const kb::Corpus& corpus, Rng& rng, std::uint32_t tag) {
    kb::CorpusDelta d;
    const auto& ps = corpus.patterns();
    const auto& ws = corpus.weaknesses();
    const auto& vs = corpus.vulnerabilities();

    const std::vector<std::size_t> pi = rng.sample_indices(ps.size(), 4);
    d.patterns.push_back(ps[pi[0]]);
    d.patterns.back().summary += " revised actuator spoofing note rev" + std::to_string(tag);
    d.patterns.push_back(ps[pi[1]]);
    d.patterns.back().name += " (revised)";
    d.withdraw_patterns.push_back(ps[pi[2]].id);
    d.withdraw_patterns.push_back(ps[pi[3]].id);

    const std::vector<std::size_t> wi = rng.sample_indices(ws.size(), 4);
    d.weaknesses.push_back(ws[wi[0]]);
    d.weaknesses.back().description += " amended sensor calibration drift discussion";
    d.withdraw_weaknesses.push_back(ws[wi[1]].id);

    if (!vs.empty()) {
        const std::vector<std::size_t> vi = rng.sample_indices(vs.size(), 2);
        d.vulnerabilities.push_back(vs[vi[0]]);
        d.vulnerabilities.back().description += " patched firmware image reissued";
        d.withdraw_vulnerabilities.push_back(vs[vi[1]].id);
    }

    // Fresh records with tag-unique vocabulary, so oracle queries can
    // prove delta-only content is findable.
    kb::AttackPattern ap;
    ap.id = kb::AttackPatternId{900000 + tag};
    ap.name = "Quillphase relay injection rev" + std::to_string(tag);
    ap.summary = "Adversary injects forged quillphase frames into the relay "
                 "maintenance channel to desynchronize breaker timing.";
    ap.prerequisites = {"maintenance channel reachable", "no frame authentication"};
    d.patterns.push_back(std::move(ap));

    kb::Weakness wk;
    wk.id = kb::WeaknessId{800000 + tag};
    wk.name = "Unverified quillphase frame origin";
    wk.description = "The relay accepts quillphase maintenance frames without "
                     "verifying their origin, so any bus participant can "
                     "retime protective elements. rev" + std::to_string(tag);
    wk.consequences = {"integrity: protection settings modified"};
    d.weaknesses.push_back(std::move(wk));

    kb::Vulnerability vu;
    vu.id = kb::VulnerabilityId{2099, 10000 + tag};
    vu.description = "Quillphase relay firmware accepts unsigned maintenance "
                     "frames allowing remote retiming. rev" + std::to_string(tag);
    d.vulnerabilities.push_back(std::move(vu));
    return d;
}

/// Field-wise exact Match comparison — scores with EXPECT_EQ (the
/// bit-identity claim), not EXPECT_NEAR.
void expect_matches_eq(const std::vector<search::Match>& got,
                       const std::vector<search::Match>& want, const std::string& what) {
    ASSERT_EQ(got.size(), want.size()) << what;
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(static_cast<int>(got[i].cls), static_cast<int>(want[i].cls)) << what;
        EXPECT_EQ(got[i].corpus_index, want[i].corpus_index) << what;
        EXPECT_EQ(got[i].id, want[i].id) << what;
        EXPECT_EQ(got[i].title, want[i].title) << what;
        EXPECT_EQ(got[i].score, want[i].score) << what << " [" << got[i].id << "]";
        EXPECT_EQ(static_cast<int>(got[i].via), static_cast<int>(want[i].via)) << what;
        EXPECT_EQ(got[i].evidence, want[i].evidence) << what;
        EXPECT_EQ(got[i].severity, want[i].severity) << what;
    }
}

/// The differential oracle: `got` (segmented or compacted) must answer a
/// query battery bitwise identically to `want` (a from-scratch rebuild
/// over the merged corpus) — free-text per class, full attribute fan-out
/// over a synthetic model (lexical + platform binding), weakness
/// expansion, and explain() audit strings.
void expect_bit_identical(const search::QueryEngine& got, const search::QueryEngine& want,
                          std::uint64_t qseed) {
    ASSERT_EQ(corpus_bytes(got.corpus()), corpus_bytes(want.corpus()));

    Rng rng(qseed);
    std::vector<std::string> queries = {
        "", "nonexistent-zzz-token", "quillphase relay maintenance frames",
    };
    const auto& ps = want.corpus().patterns();
    const auto& ws = want.corpus().weaknesses();
    for (int i = 0; i < 8; ++i) {
        queries.push_back(ps[rng.uniform(0, ps.size() - 1)].name);
        const kb::Weakness& w = ws[rng.uniform(0, ws.size() - 1)];
        queries.push_back(w.name + " " + w.description.substr(0, 48));
    }
    for (const std::string& q : queries) {
        for (search::VectorClass cls :
             {search::VectorClass::AttackPattern, search::VectorClass::Weakness,
              search::VectorClass::Vulnerability}) {
            expect_matches_eq(got.query_text(q, cls), want.query_text(q, cls),
                              "query_text(\"" + q + "\")");
        }
    }

    synth::ModelGenConfig cfg;
    cfg.seed = 17 + qseed;
    cfg.components = 12;
    const model::SystemModel m = synth::generate_model(cfg);
    for (const model::Component& c : m.components()) {
        for (const model::Attribute& attr : c.attributes) {
            const std::vector<search::Match> g = got.query_attribute(attr);
            const std::vector<search::Match> w = want.query_attribute(attr);
            expect_matches_eq(g, w, "attribute " + attr.name + "=" + attr.value);
            for (std::size_t i = 0; i < g.size() && i < 2; ++i) {
                EXPECT_EQ(got.explain(attr, g[i]), want.explain(attr, w[i]));
                if (g[i].cls == search::VectorClass::Weakness)
                    expect_matches_eq(got.expand_weakness(g[i]), want.expand_weakness(w[i]),
                                      "expand " + g[i].id);
            }
        }
    }
}

} // namespace

// ------------------------------------------------- kb::apply_corpus_delta

TEST(CorpusDelta, ApplyCountsAddModifyWithdraw) {
    kb::Corpus corpus = small_corpus();
    Rng rng(1);
    const kb::CorpusDelta d = make_delta(corpus, rng, 1);
    const std::size_t patterns_before = corpus.patterns().size();
    const std::size_t weaknesses_before = corpus.weaknesses().size();

    const kb::DeltaApplyReport r = kb::apply_corpus_delta(corpus, d);
    EXPECT_EQ(r.patterns.added, 1u);
    EXPECT_EQ(r.patterns.modified, 2u);
    EXPECT_EQ(r.patterns.withdrawn, 2u);
    EXPECT_EQ(r.weaknesses.added, 1u);
    EXPECT_EQ(r.weaknesses.modified, 1u);
    EXPECT_EQ(r.weaknesses.withdrawn, 1u);
    EXPECT_EQ(r.vulnerabilities.added, 1u);
    EXPECT_EQ(r.vulnerabilities.modified, 1u);
    EXPECT_EQ(r.vulnerabilities.withdrawn, 1u);
    EXPECT_EQ(r.total(), 11u);

    // adds - withdrawals net out; the corpus is reindexed and ready.
    EXPECT_EQ(corpus.patterns().size(), patterns_before - 1);
    EXPECT_EQ(corpus.weaknesses().size(), weaknesses_before);
    EXPECT_TRUE(corpus.indexed());
    // Appends land at the tail in upsert order.
    EXPECT_EQ(corpus.patterns().back().id.value, 900001u);
}

TEST(CorpusDelta, RejectsBadDeltasAndLeavesCorpusUntouched) {
    kb::Corpus corpus = small_corpus();
    const std::string before = corpus_bytes(corpus);

    kb::CorpusDelta unknown_withdraw;
    unknown_withdraw.withdraw_patterns.push_back(kb::AttackPatternId{999999});
    EXPECT_THROW(kb::apply_corpus_delta(corpus, unknown_withdraw), ValidationError);

    kb::CorpusDelta dup_upsert;
    dup_upsert.weaknesses.push_back(corpus.weaknesses().front());
    dup_upsert.weaknesses.push_back(corpus.weaknesses().front());
    EXPECT_THROW(kb::apply_corpus_delta(corpus, dup_upsert), ValidationError);

    kb::CorpusDelta dup_withdraw;
    dup_withdraw.withdraw_weaknesses.push_back(corpus.weaknesses().front().id);
    dup_withdraw.withdraw_weaknesses.push_back(corpus.weaknesses().front().id);
    EXPECT_THROW(kb::apply_corpus_delta(corpus, dup_withdraw), ValidationError);

    EXPECT_EQ(corpus_bytes(corpus), before);
}

TEST(CorpusDelta, InjectedApplyFaultIsTransactional) {
    kb::Corpus corpus = small_corpus();
    const std::string before = corpus_bytes(corpus);
    Rng rng(2);
    const kb::CorpusDelta d = make_delta(corpus, rng, 2);

    {
        util::FaultScope scope("kb.delta.apply");
        EXPECT_THROW(kb::apply_corpus_delta(corpus, d), ValidationError);
        EXPECT_EQ(corpus_bytes(corpus), before);
    }
    // Disarmed: the identical delta applies cleanly.
    EXPECT_EQ(kb::apply_corpus_delta(corpus, d).total(), 11u);
}

TEST(CorpusDelta, FreezeThawRoundTrip) {
    kb::Corpus corpus = small_corpus();
    Rng rng(3);
    const kb::CorpusDelta d = make_delta(corpus, rng, 3);
    const std::string blob = kb::freeze_corpus_delta(d);
    const kb::CorpusDelta thawed = kb::thaw_corpus_delta(blob);

    kb::Corpus a = corpus;
    kb::Corpus b = std::move(corpus);
    kb::apply_corpus_delta(a, d);
    kb::apply_corpus_delta(b, thawed);
    EXPECT_EQ(corpus_bytes(a), corpus_bytes(b));

    EXPECT_THROW((void)kb::thaw_corpus_delta("not a delta frame"), kb::SnapshotError);
}

// --------------------------------------------------- differential oracle

/// One instantiation per corpus seed (fast subset; the full 16-seed sweep
/// with faults armed runs in the soak suite).
class DeltaOracle : public ::testing::TestWithParam<int> {};

TEST_P(DeltaOracle, SegmentedChainMatchesRebuildBitwise) {
    const auto seed = static_cast<std::uint64_t>(GetParam());
    const kb::Corpus base = small_corpus(seed);
    search::EngineOptions opts;
    opts.max_lexical_hits = 8; // arms kernel pruning on both sides

    const search::SearchEngine base_engine(base, opts);
    Rng rng(100 + seed);
    const kb::CorpusDelta d1 = make_delta(base, rng, 10);

    kb::Corpus merged = base;
    kb::apply_corpus_delta(merged, d1);
    const kb::CorpusDelta d2 = make_delta(merged, rng, 20);
    kb::apply_corpus_delta(merged, d2);
    const kb::CorpusDelta d3 = make_delta(merged, rng, 30);
    kb::apply_corpus_delta(merged, d3);

    const search::SegmentedEngine g1(base_engine, d1);
    const search::SegmentedEngine g2(g1, d2);
    const search::SegmentedEngine g3(g2, d3);
    EXPECT_EQ(g3.segment_count(), 3u);

    const search::SearchEngine rebuilt(merged, opts);
    expect_bit_identical(g3, rebuilt, 500 + seed);

    // Apply metrics describe the last delta, not the chain.
    EXPECT_EQ(g3.apply_metrics().segments, 3u);
    EXPECT_EQ(g3.apply_metrics().report.total(), d3.size());
    EXPECT_GT(g3.apply_metrics().segment_docs, 0u);
}

TEST_P(DeltaOracle, CompactionPreservesBitIdentity) {
    const auto seed = static_cast<std::uint64_t>(GetParam());
    const kb::Corpus base = small_corpus(seed);
    core::SessionOptions sopts;
    sopts.engine.max_lexical_hits = 8;

    const std::shared_ptr<const core::SharedEngine> g0 = core::make_shared_engine(base, sopts);
    Rng rng(200 + seed);
    const kb::CorpusDelta d1 = make_delta(base, rng, 40);
    const std::shared_ptr<const core::SharedEngine> g1 = core::apply_corpus_delta(g0, d1);
    const kb::CorpusDelta d2 = make_delta(g1->corpus(), rng, 50);
    const std::shared_ptr<const core::SharedEngine> g2 = core::apply_corpus_delta(g1, d2);

    kb::Corpus merged = base;
    kb::apply_corpus_delta(merged, d1);
    kb::apply_corpus_delta(merged, d2);
    const search::SearchEngine rebuilt(merged, sopts.engine);

    expect_bit_identical(g2->query(), rebuilt, 700 + seed);

    const std::shared_ptr<const core::SharedEngine> folded = core::compact(g2);
    ASSERT_NE(folded, g2);
    EXPECT_EQ(folded->segmented, nullptr);
    ASSERT_NE(folded->engine, nullptr);
    expect_bit_identical(folded->query(), rebuilt, 700 + seed);

    // Nothing to fold on a plain base generation: compact is the identity.
    EXPECT_EQ(core::compact(folded), folded);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaOracle, ::testing::Values(1, 2, 3));

// ------------------------------------------------------- tombstone edges

TEST(DeltaEdges, WithdrawThenReaddAcrossDeltas) {
    const kb::Corpus base = small_corpus();
    const search::SearchEngine base_engine(base, {});

    const kb::Weakness victim = base.weaknesses().front();
    kb::CorpusDelta d1;
    d1.withdraw_weaknesses.push_back(victim.id);

    kb::CorpusDelta d2;
    kb::Weakness reborn = victim;
    reborn.description = "Re-added with fresh vermilion flux telemetry wording.";
    d2.weaknesses.push_back(reborn);

    const search::SegmentedEngine g1(base_engine, d1);
    EXPECT_EQ(g1.live_docs(search::VectorClass::Weakness), base.weaknesses().size() - 1);
    EXPECT_TRUE(g1.query_text(victim.id.to_string() + " " + victim.name,
                              search::VectorClass::Weakness)
                    .empty() ||
                g1.corpus().find(victim.id) == nullptr);

    const search::SegmentedEngine g2(g1, d2);
    EXPECT_EQ(g2.live_docs(search::VectorClass::Weakness), base.weaknesses().size());
    // Re-add takes a fresh ordinal: the record now lives at the tail.
    EXPECT_EQ(g2.corpus().weaknesses().back().id, victim.id);

    kb::Corpus merged = base;
    kb::apply_corpus_delta(merged, d1);
    kb::apply_corpus_delta(merged, d2);
    const search::SearchEngine rebuilt(merged, {});
    expect_bit_identical(g2, rebuilt, 901);

    const std::vector<search::Match> hits =
        g2.query_text("vermilion flux telemetry", search::VectorClass::Weakness);
    ASSERT_FALSE(hits.empty());
    EXPECT_EQ(hits.front().id, victim.id.to_string());
}

TEST(DeltaEdges, WithdrawDeltaOnlyRecord) {
    const kb::Corpus base = small_corpus();
    const search::SearchEngine base_engine(base, {});

    kb::CorpusDelta d1;
    kb::AttackPattern ap;
    ap.id = kb::AttackPatternId{910000};
    ap.name = "Ephemeral cobaltine bus flooding";
    ap.summary = "Flood the cobaltine arbitration bus until the scheduler starves.";
    d1.patterns.push_back(ap);

    const search::SegmentedEngine g1(base_engine, d1);
    ASSERT_FALSE(g1.query_text("cobaltine arbitration bus",
                               search::VectorClass::AttackPattern)
                     .empty());

    kb::CorpusDelta d2;
    d2.withdraw_patterns.push_back(ap.id);
    const search::SegmentedEngine g2(g1, d2);
    EXPECT_TRUE(g2.query_text("cobaltine arbitration bus",
                              search::VectorClass::AttackPattern)
                    .empty());
    EXPECT_EQ(g2.live_docs(search::VectorClass::AttackPattern), base.patterns().size());

    kb::Corpus merged = base;
    kb::apply_corpus_delta(merged, d1);
    kb::apply_corpus_delta(merged, d2);
    const search::SearchEngine rebuilt(merged, {});
    expect_bit_identical(g2, rebuilt, 902);
}

TEST(DeltaEdges, EmptyDeltaIsBitIdenticalNoop) {
    const kb::Corpus base = small_corpus();
    const search::SearchEngine base_engine(base, {});

    const search::SegmentedEngine g1(base_engine, kb::CorpusDelta{});
    EXPECT_EQ(g1.segment_count(), 0u); // no segment materialized for zero docs
    EXPECT_EQ(g1.apply_metrics().report.total(), 0u);
    expect_bit_identical(g1, base_engine, 903);
}

TEST(DeltaEdges, TfidfRankerRejectsDeltas) {
    const kb::Corpus base = small_corpus();
    search::EngineOptions opts;
    opts.ranker = search::EngineOptions::Ranker::Tfidf;
    const search::SearchEngine base_engine(base, opts);
    Rng rng(4);
    const kb::CorpusDelta d = make_delta(base, rng, 60);
    EXPECT_THROW(search::SegmentedEngine(base_engine, d), ValidationError);
}

// ------------------------------------------- generations in core::Session

TEST(DeltaSession, QueryCacheCannotServeAStaleGeneration) {
    const kb::Corpus base = small_corpus();
    core::SessionOptions opts;
    opts.assoc.threads = 2;
    opts.assoc.cache_enabled = true;

    model::SystemModel m("plant", "delta visibility probe");
    const model::ComponentId relay = m.add_component("protection relay",
                                                     model::ComponentType::Controller);
    model::Attribute role;
    role.name = "role";
    role.value = "quillphase maintenance frame handler";
    m.set_attribute(relay, role);
    const model::ComponentId hmi = m.add_component("hmi", model::ComponentType::HumanInterface);
    m.connect(relay, hmi, "status link");

    std::shared_ptr<const core::SharedEngine> g0 = core::make_shared_engine(base, opts);
    core::AnalysisSession session(std::move(m), g0, opts);
    const std::uint64_t gen0 = session.engine().engine_generation();

    // First run populates the cache; the corpus has no quillphase records
    // yet, so the attribute associates nothing lexical with that term.
    auto count_quill = [&session]() {
        std::size_t n = 0;
        for (const search::ComponentAssociation& ca : session.associations().components)
            if (ca.component == "protection relay")
                for (const search::AttributeAssociation& am : ca.attributes)
                    for (const search::Match& match : am.matches)
                        for (const std::string& ev : match.evidence)
                            if (ev.find("quillphas") != std::string::npos) ++n;
        return n;
    };
    EXPECT_EQ(count_quill(), 0u);

    // Feed tick: a delta adds quillphase records; the session adopts the
    // next generation. The cached (miss) entry for the same token sequence
    // is keyed on the old engine generation, so it cannot be served now.
    Rng rng(5);
    const std::shared_ptr<const core::SharedEngine> g1 =
        core::apply_corpus_delta(session.engine_handle(), make_delta(base, rng, 70));
    session.adopt_engine(g1);
    EXPECT_NE(session.engine().engine_generation(), gen0);
    EXPECT_GT(count_quill(), 0u);
}

TEST(DeltaSession, KeepaliveChainSurvivesIntermediateGenerationDrop) {
    const kb::Corpus base = small_corpus();
    std::shared_ptr<const core::SharedEngine> g0 = core::make_shared_engine(base, {});
    const std::weak_ptr<const core::SharedEngine> base_watch = g0;

    Rng rng(6);
    std::shared_ptr<const core::SharedEngine> g1 =
        core::apply_corpus_delta(g0, make_delta(g0->corpus(), rng, 80));
    std::shared_ptr<const core::SharedEngine> g2 =
        core::apply_corpus_delta(g1, make_delta(g1->corpus(), rng, 81));

    // Both overlays keep the ROOT base alive directly (depth-one chain).
    EXPECT_EQ(g1->base.get(), g0.get());
    EXPECT_EQ(g2->base.get(), g0.get());

    const std::weak_ptr<const core::SharedEngine> g1_watch = g1;
    g0.reset();
    g1.reset();
    EXPECT_FALSE(base_watch.expired()); // g2->base still holds the root
    EXPECT_TRUE(g1_watch.expired());    // intermediate generation is free to die

    // The surviving generation still answers queries over all segments.
    EXPECT_FALSE(g2->query()
                     .query_text("quillphase relay maintenance",
                                 search::VectorClass::AttackPattern)
                     .empty());

    // Compacting releases the chain entirely.
    std::shared_ptr<const core::SharedEngine> folded = core::compact(g2);
    g2.reset();
    EXPECT_TRUE(base_watch.expired());
    EXPECT_FALSE(folded->query()
                     .query_text("quillphase relay maintenance",
                                 search::VectorClass::AttackPattern)
                     .empty());
}
