// Property-based tests: randomized inputs (deterministic seeds) driving
// invariants that must hold for *every* instance — serialization round
// trips, incremental-equals-full association, metric ranges, generator
// determinism.

#include <gtest/gtest.h>

#include <cmath>

#include "cvss/cvss.hpp"
#include "cvss/cvss2.hpp"
#include "graph/algorithms.hpp"
#include "graph/graphml.hpp"
#include "model/diff.hpp"
#include "model/dsl.hpp"
#include "model/export.hpp"
#include "search/association.hpp"
#include "kb/serialize.hpp"
#include "synth/corpus_gen.hpp"
#include "synth/model_gen.hpp"
#include "text/tokenize.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

using namespace cybok;

namespace {

/// Random JSON value generator (bounded depth).
json::Value random_json(Rng& rng, int depth) {
    const std::uint64_t kind = rng.uniform(0, depth <= 0 ? 3 : 5);
    switch (kind) {
        case 0: return json::Value(nullptr);
        case 1: return json::Value(rng.chance(0.5));
        case 2: {
            // Mix integers and fractions; avoid NaN/Inf by construction.
            if (rng.chance(0.5))
                return json::Value(static_cast<std::int64_t>(rng.uniform(0, 1u << 30)) -
                                   (1 << 29));
            return json::Value(rng.uniform01() * 1e6 - 5e5);
        }
        case 3: {
            std::string s;
            std::size_t len = rng.uniform(0, 12);
            for (std::size_t i = 0; i < len; ++i)
                s.push_back(static_cast<char>(rng.uniform(0x20, 0x7E)));
            if (rng.chance(0.3)) s += "\"\\\n\t"; // escaping stress
            return json::Value(std::move(s));
        }
        case 4: {
            json::Array a;
            std::size_t n = rng.uniform(0, 4);
            for (std::size_t i = 0; i < n; ++i) a.push_back(random_json(rng, depth - 1));
            return json::Value(std::move(a));
        }
        default: {
            json::Object o;
            std::size_t n = rng.uniform(0, 4);
            for (std::size_t i = 0; i < n; ++i)
                o.emplace("k" + std::to_string(rng.uniform(0, 99)),
                          random_json(rng, depth - 1));
            return json::Value(std::move(o));
        }
    }
}

/// Random property graph.
graph::PropertyGraph random_graph(Rng& rng, std::size_t nodes, std::size_t edges) {
    graph::PropertyGraph g;
    std::vector<graph::NodeId> ids;
    for (std::size_t i = 0; i < nodes; ++i) {
        graph::NodeId n = g.add_node("n" + std::to_string(i));
        if (rng.chance(0.5)) g.set_property(n, "w", rng.uniform01());
        if (rng.chance(0.3)) g.set_property(n, "tag", std::string("x<&>\"y"));
        if (rng.chance(0.3))
            g.set_property(n, "count", static_cast<std::int64_t>(rng.uniform(0, 1000)));
        ids.push_back(n);
    }
    for (std::size_t i = 0; i < edges && nodes > 0; ++i) {
        graph::NodeId a = ids[rng.uniform(0, ids.size() - 1)];
        graph::NodeId b = ids[rng.uniform(0, ids.size() - 1)];
        graph::EdgeId e = g.add_edge(a, b, "e" + std::to_string(i));
        if (rng.chance(0.5)) g.set_property(e, "flag", rng.chance(0.5));
    }
    return g;
}

} // namespace

class SeededProperty : public testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty, testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

TEST_P(SeededProperty, JsonDumpParseRoundTrip) {
    Rng rng(GetParam());
    for (int i = 0; i < 50; ++i) {
        json::Value v = random_json(rng, 4);
        ASSERT_EQ(json::parse(json::dump(v)), v);
        ASSERT_EQ(json::parse(json::dump(v, 2)), v);
    }
}

TEST_P(SeededProperty, GraphmlRoundTripPreservesTopologyAndProperties) {
    Rng rng(GetParam());
    graph::PropertyGraph g = random_graph(rng, rng.uniform(0, 30), rng.uniform(0, 60));
    graph::PropertyGraph back = graph::from_graphml(graph::to_graphml(g));
    ASSERT_EQ(back.node_count(), g.node_count());
    ASSERT_EQ(back.edge_count(), g.edge_count());
    // Degree multiset preserved (labels identify nodes).
    for (graph::NodeId n : g.nodes()) {
        auto m = back.find_node(g.node(n).label);
        ASSERT_TRUE(m.has_value());
        EXPECT_EQ(back.out_degree(*m), g.out_degree(n));
        EXPECT_EQ(back.in_degree(*m), g.in_degree(n));
        EXPECT_EQ(back.node(*m).properties, g.node(n).properties);
    }
}

TEST_P(SeededProperty, BfsReachabilitySubsetOfNodes) {
    Rng rng(GetParam() + 100);
    graph::PropertyGraph g = random_graph(rng, 20, 35);
    for (graph::NodeId n : g.nodes()) {
        auto reach = graph::bfs_order(g, n);
        EXPECT_LE(reach.size(), g.node_count());
        ASSERT_FALSE(reach.empty());
        EXPECT_EQ(reach.front(), n);
        // Distances are consistent with membership.
        auto dist = graph::bfs_distances(g, n);
        for (graph::NodeId r : reach) EXPECT_NE(dist[r.value], UINT32_MAX);
    }
}

TEST_P(SeededProperty, BetweennessNonNegativeAndBounded) {
    Rng rng(GetParam() + 200);
    graph::PropertyGraph g = random_graph(rng, 15, 30);
    const double n = static_cast<double>(g.node_count());
    for (const auto& [node, score] : graph::betweenness_centrality(g)) {
        EXPECT_GE(score, 0.0);
        EXPECT_LE(score, (n - 1.0) * (n - 2.0) + 1e-9);
    }
}

TEST_P(SeededProperty, DslRoundTripOnGeneratedModels) {
    synth::ModelGenConfig cfg;
    cfg.seed = GetParam();
    cfg.components = 12 + GetParam() % 10;
    model::SystemModel m = synth::generate_model(cfg);
    model::SystemModel back = model::parse_dsl(model::to_dsl(m));
    EXPECT_TRUE(model::diff(m, back).empty()) << model::to_string(model::diff(m, back));
}

TEST_P(SeededProperty, GraphExportRoundTripOnGeneratedModels) {
    synth::ModelGenConfig cfg;
    cfg.seed = GetParam() * 7 + 1;
    cfg.components = 10;
    model::SystemModel m = synth::generate_model(cfg);
    model::SystemModel back = model::from_graph(model::to_graph(m));
    model::ModelDiff d = model::diff(m, back);
    EXPECT_TRUE(d.attribute_changes.empty());
    EXPECT_TRUE(d.added_components.empty());
    EXPECT_TRUE(d.removed_components.empty());
}

TEST_P(SeededProperty, IncrementalAssociationEqualsFull) {
    static const kb::Corpus corpus = synth::generate_corpus(synth::CorpusProfile::scaled(0.05, 77));
    static const search::SearchEngine engine(corpus);

    synth::ModelGenConfig cfg;
    cfg.seed = GetParam() * 31;
    cfg.components = 14;
    model::SystemModel before = synth::generate_model(cfg);
    search::AssociationMap before_map = search::associate(before, engine);

    // Random edit: touch a random component's attribute.
    Rng rng(GetParam() + 999);
    model::SystemModel after = synth::generate_model(cfg);
    const auto& comps = after.components();
    model::ComponentId victim = comps[rng.uniform(0, comps.size() - 1)].id;
    model::Attribute extra;
    extra.name = "note";
    extra.value = rng.chance(0.5) ? "modbus gateway revision" : "wireless maintenance port";
    after.set_attribute(victim, extra);
    if (rng.chance(0.5)) after.remove_component(comps.front().id);

    model::ModelDiff d = model::diff(before, after);
    search::AssociationMap incremental = search::reassociate(before_map, d, after, engine);
    search::AssociationMap full = search::associate(after, engine);
    ASSERT_EQ(incremental.components.size(), full.components.size());
    for (std::size_t i = 0; i < full.components.size(); ++i) {
        SCOPED_TRACE(full.components[i].component);
        EXPECT_EQ(incremental.components[i].total(), full.components[i].total());
    }
}

TEST_P(SeededProperty, CorpusGenerationDeterministic) {
    synth::CorpusProfile p = synth::CorpusProfile::scaled(0.03, GetParam());
    kb::Corpus a = synth::generate_corpus(p);
    kb::Corpus b = synth::generate_corpus(p);
    EXPECT_EQ(json::dump(kb::to_json(a)), json::dump(kb::to_json(b)));
}

TEST_P(SeededProperty, RandomCvss3VectorsScoreInRange) {
    Rng rng(GetParam() + 404);
    const char* av[] = {"N", "A", "L", "P"};
    const char* lh[] = {"L", "H"};
    const char* pr[] = {"N", "L", "H"};
    const char* ui[] = {"N", "R"};
    const char* sc[] = {"U", "C"};
    const char* cia[] = {"H", "L", "N"};
    for (int i = 0; i < 200; ++i) {
        std::string vec = std::string("CVSS:3.1/AV:") + av[rng.uniform(0, 3)] +
                          "/AC:" + lh[rng.uniform(0, 1)] + "/PR:" + pr[rng.uniform(0, 2)] +
                          "/UI:" + ui[rng.uniform(0, 1)] + "/S:" + sc[rng.uniform(0, 1)] +
                          "/C:" + cia[rng.uniform(0, 2)] + "/I:" + cia[rng.uniform(0, 2)] +
                          "/A:" + cia[rng.uniform(0, 2)];
        cvss::Vector v = cvss::parse(vec);
        double base = cvss::base_score(v);
        ASSERT_GE(base, 0.0) << vec;
        ASSERT_LE(base, 10.0) << vec;
        ASSERT_LE(cvss::temporal_score(v), base + 1e-9) << vec;
        double env = cvss::environmental_score(v);
        ASSERT_GE(env, 0.0) << vec;
        ASSERT_LE(env, 10.0) << vec;
        // Round trip through to_string preserves the score.
        ASSERT_DOUBLE_EQ(cvss::base_score(cvss::parse(cvss::to_string(v))), base) << vec;
    }
}

TEST_P(SeededProperty, FilterChainNeverGrowsResultSet) {
    static const kb::Corpus corpus = synth::generate_corpus(synth::CorpusProfile::scaled(0.05, 7));
    static const search::SearchEngine engine(corpus);
    Rng rng(GetParam() + 808);

    model::Attribute attr;
    attr.name = "os";
    attr.value = "NI RT Linux OS";
    attr.kind = model::AttributeKind::PlatformRef;
    attr.platform = kb::Platform{kb::PlatformPart::OperatingSystem, "ni", "rt_linux", ""};
    std::vector<search::Match> matches = engine.query_attribute(attr);

    search::FilterChain chain;
    if (rng.chance(0.5)) chain.add(search::min_severity(cvss::Severity::Medium));
    if (rng.chance(0.5)) chain.add(search::by_class(search::VectorClass::Vulnerability));
    if (rng.chance(0.5)) chain.add(search::min_score(rng.uniform01() * 3));
    chain.top_k_per_class(rng.uniform(1, 50));

    search::FilterChain::Report report;
    auto kept = chain.apply(matches, &report);
    EXPECT_LE(kept.size(), matches.size());
    EXPECT_EQ(report.input, matches.size());
    EXPECT_EQ(report.output, kept.size());
    // Idempotence: filtering the filtered set changes nothing.
    auto twice = chain.apply(kept);
    EXPECT_EQ(twice.size(), kept.size());
}

TEST_P(SeededProperty, StemmerIdempotentOnItsOutput) {
    Rng rng(GetParam() + 555);
    for (int i = 0; i < 300; ++i) {
        std::string word;
        std::size_t len = rng.uniform(1, 12);
        for (std::size_t j = 0; j < len; ++j)
            word.push_back(static_cast<char>('a' + rng.uniform(0, 25)));
        std::string once = text::stem(word);
        // Stemming must terminate and produce a non-empty suffix-trimmed
        // token no longer than the input.
        ASSERT_FALSE(once.empty());
        ASSERT_LE(once.size(), word.size());
    }
}
