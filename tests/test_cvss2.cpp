#include <gtest/gtest.h>

#include "cvss/cvss2.hpp"
#include "util/error.hpp"

using namespace cybok;

TEST(Cvss2Parse, FullVector) {
    cvss2::Vector v = cvss2::parse("AV:N/AC:L/Au:N/C:P/I:P/A:P");
    EXPECT_EQ(v.av, cvss2::AccessVector::Network);
    EXPECT_EQ(v.ac, cvss2::AccessComplexity::Low);
    EXPECT_EQ(v.au, cvss2::Authentication::None);
    EXPECT_EQ(v.conf, cvss2::Impact2::Partial);
}

TEST(Cvss2Parse, AcceptsNvdWrappers) {
    EXPECT_NO_THROW((void)cvss2::parse("CVSS2#AV:L/AC:M/Au:S/C:C/I:N/A:N"));
    EXPECT_NO_THROW((void)cvss2::parse("(AV:N/AC:L/Au:N/C:N/I:N/A:C)"));
}

TEST(Cvss2Parse, RoundTrip) {
    const char* vectors[] = {"AV:N/AC:L/Au:N/C:P/I:P/A:P", "AV:L/AC:H/Au:M/C:C/I:N/A:N",
                             "AV:A/AC:M/Au:S/C:N/I:C/A:P"};
    for (const char* s : vectors) {
        cvss2::Vector v = cvss2::parse(s);
        EXPECT_EQ(cvss2::parse(cvss2::to_string(v)), v) << s;
    }
}

TEST(Cvss2Parse, RejectsMalformed) {
    EXPECT_THROW((void)cvss2::parse(""), cybok::ParseError);
    EXPECT_THROW((void)cvss2::parse("AV:N/AC:L/Au:N"), cybok::ParseError); // missing CIA
    EXPECT_THROW((void)cvss2::parse("AV:Z/AC:L/Au:N/C:P/I:P/A:P"), cybok::ParseError);
    EXPECT_THROW((void)cvss2::parse("AV:N/AC:L/Au:N/C:P/I:P/A:P/QQ:X"), cybok::ParseError);
}

// Reference scores from NVD's published v2 scores.
struct V2Case {
    const char* vector;
    double expected;
};

class Cvss2Score : public testing::TestWithParam<V2Case> {};

TEST_P(Cvss2Score, MatchesReference) {
    EXPECT_DOUBLE_EQ(cvss2::base_score(cvss2::parse(GetParam().vector)), GetParam().expected)
        << GetParam().vector;
}

INSTANTIATE_TEST_SUITE_P(
    Reference, Cvss2Score,
    testing::Values(V2Case{"AV:N/AC:L/Au:N/C:P/I:P/A:P", 7.5},
                    V2Case{"AV:N/AC:L/Au:N/C:C/I:C/A:C", 10.0},
                    V2Case{"AV:N/AC:L/Au:N/C:N/I:N/A:C", 7.8},
                    V2Case{"AV:N/AC:L/Au:N/C:N/I:N/A:N", 0.0},
                    V2Case{"AV:L/AC:L/Au:N/C:P/I:N/A:N", 2.1},
                    V2Case{"AV:N/AC:M/Au:N/C:P/I:N/A:N", 4.3},
                    V2Case{"AV:L/AC:H/Au:N/C:C/I:C/A:C", 6.2},
                    V2Case{"AV:A/AC:L/Au:N/C:C/I:C/A:C", 8.3}));

TEST(Cvss2Score, RangeInvariant) {
    const char* avs[] = {"L", "A", "N"};
    const char* acs[] = {"H", "M", "L"};
    const char* cias[] = {"N", "P", "C"};
    for (const char* av : avs)
        for (const char* ac : acs)
            for (const char* c : cias)
                for (const char* a : cias) {
                    std::string vec = std::string("AV:") + av + "/AC:" + ac +
                                      "/Au:N/C:" + c + "/I:N/A:" + a;
                    double score = cvss2::base_score(cvss2::parse(vec));
                    EXPECT_GE(score, 0.0) << vec;
                    EXPECT_LE(score, 10.0) << vec;
                }
}

TEST(ScoreAny, DispatchesByGeneration) {
    auto v3 = cvss::score_any("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H");
    ASSERT_TRUE(v3.has_value());
    EXPECT_DOUBLE_EQ(*v3, 9.8);

    auto v2 = cvss::score_any("AV:N/AC:L/Au:N/C:P/I:P/A:P");
    ASSERT_TRUE(v2.has_value());
    EXPECT_DOUBLE_EQ(*v2, 7.5);

    EXPECT_FALSE(cvss::score_any("garbage").has_value());
    EXPECT_FALSE(cvss::score_any("").has_value());
    EXPECT_FALSE(cvss::score_any("CVSS:3.1/AV:N").has_value());
}
