#include <gtest/gtest.h>

#include "model/diff.hpp"
#include "model/dsl.hpp"
#include "synth/scada.hpp"

using namespace cybok;
using namespace cybok::model;

namespace {
constexpr const char* kSample = R"(
# A minimal plant, hand-written.
system "mini-plant" {
  description "two-component demo"

  component "WS" type=compute subsystem="office" external {
    description "engineering workstation"
    descriptor role = "operator console" fidelity=conceptual
    platform os = "Windows 7" cpe="cpe:2.3:o:microsoft:windows_7:*"
    parameter uptime = "24x7"
  }

  component "PLC" type=controller {
    descriptor role = "process controller"
  }

  connect "WS" <-> "PLC" via "engineering" kind=ethernet
  connect "PLC" -> "WS" via "alarms" kind=logical-flow fidelity=implementation
}
)";
} // namespace

TEST(Dsl, ParsesSampleDocument) {
    SystemModel m = parse_dsl(kSample);
    EXPECT_EQ(m.name(), "mini-plant");
    EXPECT_EQ(m.description(), "two-component demo");
    EXPECT_EQ(m.component_count(), 2u);

    ComponentId ws = *m.find_component("WS");
    EXPECT_EQ(m.component(ws).type, ComponentType::Compute);
    EXPECT_EQ(m.component(ws).subsystem, "office");
    EXPECT_TRUE(m.component(ws).external_facing);
    EXPECT_EQ(m.component(ws).description, "engineering workstation");

    const Attribute* role = m.find_attribute(ws, "role");
    ASSERT_NE(role, nullptr);
    EXPECT_EQ(role->kind, AttributeKind::Descriptor);
    EXPECT_EQ(role->fidelity, Fidelity::Conceptual); // explicit override

    const Attribute* os = m.find_attribute(ws, "os");
    ASSERT_NE(os, nullptr);
    EXPECT_EQ(os->kind, AttributeKind::PlatformRef);
    EXPECT_EQ(os->fidelity, Fidelity::Implementation); // default for platform
    ASSERT_TRUE(os->platform.has_value());
    EXPECT_EQ(os->platform->vendor, "microsoft");

    const Attribute* uptime = m.find_attribute(ws, "uptime");
    ASSERT_NE(uptime, nullptr);
    EXPECT_EQ(uptime->kind, AttributeKind::Parameter);

    ASSERT_EQ(m.connectors().size(), 2u);
    EXPECT_TRUE(m.connectors()[0].bidirectional);
    EXPECT_EQ(m.connectors()[0].kind, ChannelKind::Ethernet);
    EXPECT_FALSE(m.connectors()[1].bidirectional);
    EXPECT_EQ(m.connectors()[1].fidelity, Fidelity::Implementation);
}

TEST(Dsl, RoundTripIsDiffEmpty) {
    SystemModel original = parse_dsl(kSample);
    SystemModel reparsed = parse_dsl(to_dsl(original));
    EXPECT_TRUE(diff(original, reparsed).empty()) << to_string(diff(original, reparsed));
}

TEST(Dsl, CentrifugeFixtureRoundTrips) {
    SystemModel original = synth::centrifuge_model();
    SystemModel reparsed = parse_dsl(to_dsl(original));
    EXPECT_TRUE(diff(original, reparsed).empty()) << to_string(diff(original, reparsed));
    EXPECT_EQ(reparsed.description(), original.description());
}

TEST(Dsl, UavFixtureRoundTrips) {
    SystemModel original = synth::uav_model();
    SystemModel reparsed = parse_dsl(to_dsl(original));
    EXPECT_TRUE(diff(original, reparsed).empty());
}

TEST(Dsl, EscapedStringsRoundTrip) {
    SystemModel m("quote\"and\\slash", "line\nbreak");
    m.add_component("C \"1\"", ComponentType::Other);
    SystemModel reparsed = parse_dsl(to_dsl(m));
    EXPECT_EQ(reparsed.name(), "quote\"and\\slash");
    EXPECT_EQ(reparsed.description(), "line\nbreak");
    EXPECT_TRUE(reparsed.find_component("C \"1\"").has_value());
}

TEST(Dsl, SyntaxErrors) {
    EXPECT_THROW(parse_dsl(""), cybok::ParseError);
    EXPECT_THROW(parse_dsl("system \"x\" {"), cybok::ParseError); // unterminated block
    EXPECT_THROW(parse_dsl("system \"x\" { bogus }"), cybok::ParseError);
    EXPECT_THROW(parse_dsl("system \"x\" { component \"a\" type=compute { descriptor r = } }"),
                 cybok::ParseError); // missing string
    EXPECT_THROW(parse_dsl("system \"x\" {} trailing"), cybok::ParseError);
    EXPECT_THROW(parse_dsl("system \"x\" { component \"a\" type=warp-drive {} }"),
                 cybok::ParseError); // unknown enum
    EXPECT_THROW(parse_dsl("system \"x\" { component \"a\" type=compute { descriptor r = \"v\" fidelity=ultra } }"),
                 cybok::ParseError);
}

TEST(Dsl, SemanticErrors) {
    // Platform attribute without cpe.
    EXPECT_THROW(parse_dsl(R"(system "x" {
        component "a" type=compute { platform os = "Win" } })"),
                 cybok::ValidationError);
    // Connect to unknown component.
    EXPECT_THROW(parse_dsl(R"(system "x" {
        component "a" type=compute {}
        connect "a" -> "ghost" via "l" })"),
                 cybok::ValidationError);
    // Missing component type.
    EXPECT_THROW(parse_dsl(R"(system "x" { component "a" {} })"), cybok::ValidationError);
    // Duplicate component.
    EXPECT_THROW(parse_dsl(R"(system "x" {
        component "a" type=compute {}
        component "a" type=compute {} })"),
                 cybok::ValidationError);
}

TEST(Dsl, CommentsAndWhitespaceIgnored) {
    SystemModel m = parse_dsl(R"(
# leading comment
system "c" { # trailing comment
  component "only" type=sensor {
    # comment inside block
  }
}
)");
    EXPECT_EQ(m.component_count(), 1u);
}

TEST(Dsl, FileRoundTrip) {
    std::string path = testing::TempDir() + "/cybok_dsl_test.sysm";
    save_dsl(path, synth::centrifuge_model());
    SystemModel loaded = load_dsl(path);
    EXPECT_EQ(loaded.component_count(), 6u);
    EXPECT_THROW(load_dsl("/nonexistent/x.sysm"), cybok::IoError);
}
