// Binary engine snapshots: freeze/thaw round trips, framing rejection,
// and the determinism contract of the parallel sharded build.
//
// The strongest assertions here compare frozen blobs byte for byte:
// freeze() serializes every posting, IDF entry, norm, and scorer table,
// so blob equality proves two engines are bit-identical — the same
// mechanism verifies both "thaw reproduces the frozen engine" and
// "parallel build reproduces the sequential reference".

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/session.hpp"
#include "kb/snapshot.hpp"
#include "search/association.hpp"
#include "search/engine.hpp"
#include "synth/corpus_gen.hpp"
#include "synth/scada.hpp"
#include "util/bytes.hpp"

using namespace cybok;

namespace {

const kb::Corpus& shared_corpus() {
    static const kb::Corpus corpus =
        synth::generate_corpus(synth::CorpusProfile::scaled(0.1, 99));
    return corpus;
}

/// Deterministic full serialization of an association map (hexfloat
/// scores): equal fingerprints mean byte-identical results.
std::string fingerprint(const search::AssociationMap& map) {
    std::ostringstream out;
    out << std::hexfloat;
    for (const search::ComponentAssociation& c : map.components) {
        out << "C " << c.component << '\n';
        for (const search::AttributeAssociation& a : c.attributes) {
            out << " A " << a.attribute_name << '=' << a.attribute_value << '\n';
            for (const search::Match& m : a.matches) {
                out << "  M " << static_cast<int>(m.cls) << ' ' << m.corpus_index << ' '
                    << m.id << ' ' << m.score << ' ' << static_cast<int>(m.via) << ' '
                    << m.severity;
                for (const std::string& e : m.evidence) out << ' ' << e;
                out << '\n';
            }
        }
    }
    return out.str();
}

std::string temp_path(const char* name) {
    std::string p = testing::TempDir() + name;
    std::remove(p.c_str());
    return p;
}

} // namespace

// ---------------------------------------------------------------- byte IO

TEST(Bytes, PrimitivesRoundTripLittleEndian) {
    util::ByteWriter w;
    w.u8(0xAB);
    w.u32(0xDEADBEEFu);
    w.u64(0x0123456789ABCDEFull);
    w.f32(3.5f);
    w.f64(-0.125);
    w.str("snapshot");
    w.str(""); // empty strings must round-trip too

    const std::string bytes = std::move(w).take();
    // Spot-check the wire form: u32 after the leading byte, little-endian.
    ASSERT_GE(bytes.size(), 5u);
    EXPECT_EQ(static_cast<unsigned char>(bytes[1]), 0xEF);
    EXPECT_EQ(static_cast<unsigned char>(bytes[4]), 0xDE);

    util::ByteReader r(bytes);
    EXPECT_EQ(r.u8(), 0xAB);
    EXPECT_EQ(r.u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.f32(), 3.5f);
    EXPECT_EQ(r.f64(), -0.125);
    EXPECT_EQ(r.str(), "snapshot");
    EXPECT_EQ(r.str(), "");
    EXPECT_TRUE(r.done());
}

TEST(Bytes, ReaderRejectsExhaustedInput) {
    util::ByteWriter w;
    w.u32(7);
    const std::string bytes = std::move(w).take();
    util::ByteReader r(bytes);
    (void)r.u32();
    EXPECT_THROW((void)r.u8(), ParseError);
    // A length prefix pointing past the end must throw, not over-read.
    util::ByteWriter lying;
    lying.u32(1000); // claims 1000 string bytes, provides none
    const std::string lie = std::move(lying).take();
    util::ByteReader r2(lie);
    EXPECT_THROW((void)r2.str(), ParseError);
}

TEST(Bytes, Fnv1a64MatchesReferenceVectors) {
    // Published FNV-1a test vectors.
    EXPECT_EQ(util::fnv1a64(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(util::fnv1a64("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(util::fnv1a64("foobar"), 0x85944171f73967e8ull);
}

// ---------------------------------------------------------------- framing

TEST(SnapshotFraming, SealOpenRoundTrip) {
    const std::string eager = "the eager payload bytes";
    const std::string slabs(130, '\x5a');
    const std::string blob = kb::seal_snapshot(eager, slabs);
    const kb::SnapshotSections sections = kb::open_snapshot(blob);
    EXPECT_EQ(sections.eager, eager);
    EXPECT_EQ(sections.slabs, slabs);
    // The slab section sits at a 64-byte-aligned file offset so an mmap'd
    // blob (page-aligned base) can be viewed in place by the slab tables.
    const auto slab_off = static_cast<std::size_t>(sections.slabs.data() - blob.data());
    EXPECT_EQ(slab_off, kb::snapshot_slab_offset(eager.size()));
    EXPECT_EQ(slab_off % 64, 0u);

    // Empty sections round-trip too.
    const std::string tiny = kb::seal_snapshot("", "");
    const kb::SnapshotSections none = kb::open_snapshot(tiny);
    EXPECT_TRUE(none.eager.empty());
    EXPECT_TRUE(none.slabs.empty());
    EXPECT_EQ(tiny.size(), kb::kSnapshotHeaderSize);
}

TEST(SnapshotFraming, RejectsBadMagic) {
    std::string blob = kb::seal_snapshot("payload", "slabs");
    blob[0] = 'X';
    EXPECT_THROW((void)kb::open_snapshot(blob), kb::SnapshotError);
    // Arbitrary non-snapshot files must be rejected up front, too.
    EXPECT_THROW((void)kb::open_snapshot("{\"json\": true}"), kb::SnapshotError);
    EXPECT_THROW((void)kb::open_snapshot(""), kb::SnapshotError);
}

TEST(SnapshotFraming, RejectsVersionMismatch) {
    std::string blob = kb::seal_snapshot("payload", "slabs");
    blob[8] = static_cast<char>(kb::kSnapshotVersion + 1); // version u32 LSB
    try {
        (void)kb::open_snapshot(blob);
        FAIL() << "expected SnapshotError";
    } catch (const kb::SnapshotError& e) {
        EXPECT_NE(std::string(e.what()).find("version mismatch"), std::string::npos);
    }
}

TEST(SnapshotFraming, RejectsTruncationAtEveryBoundary) {
    const std::string blob =
        kb::seal_snapshot("a longer payload for truncation", "slab bytes here");
    // Every proper prefix must be rejected (header cuts read as bad magic
    // or truncation; section cuts as truncation — never accepted).
    for (std::size_t len :
         {std::size_t{0}, std::size_t{4}, std::size_t{8}, std::size_t{12}, std::size_t{27},
          std::size_t{63}, std::size_t{70}, blob.size() - 1}) {
        EXPECT_THROW((void)kb::open_snapshot(blob.substr(0, len)), kb::SnapshotError)
            << "prefix length " << len;
    }
}

TEST(SnapshotFraming, RejectsTrailingBytes) {
    std::string blob = kb::seal_snapshot("payload", "slabs");
    blob += "junk";
    try {
        (void)kb::open_snapshot(blob);
        FAIL() << "expected SnapshotError";
    } catch (const kb::SnapshotError& e) {
        EXPECT_NE(std::string(e.what()).find("trailing"), std::string::npos);
    }
}

TEST(SnapshotFraming, RejectsChecksumMismatch) {
    std::string blob = kb::seal_snapshot("payload to corrupt", "slab section");
    blob[kb::kSnapshotHeaderSize + 2] ^= 0x40; // flip one eager-section bit
    try {
        (void)kb::open_snapshot(blob);
        FAIL() << "expected SnapshotError";
    } catch (const kb::SnapshotError& e) {
        EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
    }
}

TEST(SnapshotFraming, SlabChecksumIsOptionalForMappedOpens) {
    const std::string good = kb::seal_snapshot("eager bytes", "slab section");
    std::string slab_corrupt = good;
    slab_corrupt[slab_corrupt.size() - 1] ^= 0x01; // flip one slab-section bit
    // The verifying open (owning path) catches it...
    try {
        (void)kb::open_snapshot(slab_corrupt);
        FAIL() << "expected SnapshotError";
    } catch (const kb::SnapshotError& e) {
        EXPECT_NE(std::string(e.what()).find("slab checksum"), std::string::npos);
    }
    // ...while the mmap path skips the slab hash (it would fault in the
    // whole file) and relies on structural + per-block validation instead.
    const kb::SnapshotSections lax = kb::open_snapshot(slab_corrupt, {}, false);
    EXPECT_EQ(lax.eager, "eager bytes");
    // Eager corruption is always fatal, verified or not.
    std::string eager_corrupt = good;
    eager_corrupt[kb::kSnapshotHeaderSize] ^= 0x01;
    EXPECT_THROW((void)kb::open_snapshot(eager_corrupt, {}, false), kb::SnapshotError);
}

// ----------------------------------------------------------------- corpus

TEST(SnapshotCorpus, RoundTripPreservesRecordsAndDerivedIndexes) {
    const kb::Corpus& original = shared_corpus();
    util::ByteWriter w;
    kb::freeze_corpus(w, original);
    const std::string payload = std::move(w).take(); // reader borrows, so keep it alive
    util::ByteReader r(payload);
    const kb::Corpus thawed = kb::thaw_corpus(r);
    EXPECT_TRUE(r.done());
    EXPECT_TRUE(thawed.indexed());

    const kb::Corpus::Stats a = original.stats();
    const kb::Corpus::Stats b = thawed.stats();
    EXPECT_EQ(a.patterns, b.patterns);
    EXPECT_EQ(a.weaknesses, b.weaknesses);
    EXPECT_EQ(a.vulnerabilities, b.vulnerabilities);
    EXPECT_EQ(a.platform_bindings, b.platform_bindings);
    EXPECT_EQ(a.pattern_weakness_links, b.pattern_weakness_links);
    EXPECT_EQ(a.vulnerability_weakness_links, b.vulnerability_weakness_links);

    // Field-level spot checks across all three classes.
    ASSERT_FALSE(original.patterns().empty());
    const kb::AttackPattern& p = original.patterns().front();
    const kb::AttackPattern& tp = thawed.patterns().front();
    EXPECT_EQ(p.id.value, tp.id.value);
    EXPECT_EQ(p.name, tp.name);
    EXPECT_EQ(p.summary, tp.summary);
    EXPECT_EQ(p.prerequisites, tp.prerequisites);
    EXPECT_EQ(p.likelihood, tp.likelihood);

    ASSERT_FALSE(original.weaknesses().empty());
    const kb::Weakness& wk = original.weaknesses().front();
    const kb::Weakness& twk = thawed.weaknesses().front();
    EXPECT_EQ(wk.id.value, twk.id.value);
    EXPECT_EQ(wk.description, twk.description);
    EXPECT_EQ(wk.applicable_platforms, twk.applicable_platforms);

    ASSERT_FALSE(original.vulnerabilities().empty());
    const kb::Vulnerability& v = original.vulnerabilities().front();
    const kb::Vulnerability& tv = thawed.vulnerabilities().front();
    EXPECT_EQ(v.id.year, tv.id.year);
    EXPECT_EQ(v.id.number, tv.id.number);
    EXPECT_EQ(v.cvss_vector, tv.cvss_vector);
    ASSERT_EQ(v.platforms.size(), tv.platforms.size());
    for (std::size_t i = 0; i < v.platforms.size(); ++i)
        EXPECT_EQ(v.platforms[i].uri(), tv.platforms[i].uri());

    // Derived platform index (rebuilt by reindex inside thaw_corpus).
    for (const kb::Platform& plat : original.known_platforms()) {
        const auto want = original.vulnerabilities_for(plat);
        const auto got = thawed.vulnerabilities_for(plat);
        ASSERT_EQ(want.size(), got.size()) << plat.uri();
        for (std::size_t i = 0; i < want.size(); ++i)
            EXPECT_EQ(want[i].to_string(), got[i].to_string());
    }
}

// ----------------------------------------------------------------- engine

TEST(SnapshotEngine, ThawedEngineIsBitIdentical) {
    search::SearchEngine fresh(shared_corpus());
    const std::string blob = freeze_engine(fresh);

    search::EngineSnapshot snap = search::thaw_engine(blob);
    ASSERT_NE(snap.corpus, nullptr);
    ASSERT_NE(snap.engine, nullptr);
    EXPECT_TRUE(snap.engine->build_metrics().from_snapshot);
    EXPECT_EQ(snap.engine->options().signature(), fresh.options().signature());

    // Re-freezing the thawed engine must reproduce the blob byte for byte
    // — postings, IDF tables, norms, vocabulary, scorer tables, all of it.
    EXPECT_EQ(freeze_engine(*snap.engine), blob);
}

TEST(SnapshotEngine, ThawedEngineAnswersQueriesIdentically) {
    search::EngineOptions opts;
    opts.lexical_vulnerabilities = true; // exercise the third lexical index
    search::SearchEngine fresh(shared_corpus(), opts);
    search::EngineSnapshot snap = search::thaw_engine(freeze_engine(fresh));

    const char* queries[] = {"linux kernel privilege escalation",
                             "scada controller modbus command injection",
                             "buffer overflow firmware update"};
    for (const char* q : queries) {
        for (search::VectorClass cls :
             {search::VectorClass::AttackPattern, search::VectorClass::Weakness,
              search::VectorClass::Vulnerability}) {
            const auto want = fresh.query_text(q, cls);
            const auto got = snap.engine->query_text(q, cls);
            ASSERT_EQ(want.size(), got.size()) << q;
            for (std::size_t i = 0; i < want.size(); ++i) {
                EXPECT_EQ(want[i].id, got[i].id);
                EXPECT_EQ(want[i].score, got[i].score); // exact, not approximate
                EXPECT_EQ(want[i].evidence, got[i].evidence);
                EXPECT_EQ(want[i].severity, got[i].severity);
            }
        }
    }

    // Platform-binding path over the thawed corpus's rebuilt indexes.
    for (const kb::Platform& plat : shared_corpus().known_platforms()) {
        const auto want = fresh.query_platform(plat);
        const auto got = snap.engine->query_platform(plat);
        ASSERT_EQ(want.size(), got.size()) << plat.uri();
        for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(want[i].id, got[i].id);
    }

    // Whole-model association equality (all three record classes at once).
    model::SystemModel scada = synth::centrifuge_model();
    EXPECT_EQ(fingerprint(search::associate(scada, *snap.engine)),
              fingerprint(search::associate(scada, fresh)));
}

TEST(SnapshotEngine, TfidfEngineRoundTrips) {
    search::EngineOptions opts;
    opts.ranker = search::EngineOptions::Ranker::Tfidf;
    search::SearchEngine fresh(shared_corpus(), opts);
    const std::string blob = freeze_engine(fresh);
    search::EngineSnapshot snap = search::thaw_engine(blob);
    EXPECT_EQ(freeze_engine(*snap.engine), blob);
    const auto want = fresh.query_text("command injection", search::VectorClass::Weakness);
    const auto got = snap.engine->query_text("command injection", search::VectorClass::Weakness);
    ASSERT_EQ(want.size(), got.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(want[i].id, got[i].id);
        EXPECT_EQ(want[i].score, got[i].score);
    }
}

TEST(SnapshotEngine, RejectsCorruptEngineBlobs) {
    search::SearchEngine fresh(shared_corpus());
    const std::string blob = freeze_engine(fresh);

    // Truncations inside the payload die in the frame check (size field).
    EXPECT_THROW((void)search::thaw_engine(std::string_view(blob).substr(0, blob.size() / 2)),
                 kb::SnapshotError);
    // Payload bit flips die on the checksum, never in the record codec.
    std::string corrupt = blob;
    corrupt[corrupt.size() / 2] ^= 0x01;
    EXPECT_THROW((void)search::thaw_engine(corrupt), kb::SnapshotError);
}

// ------------------------------------------------------------- mmap thaw

TEST(SnapshotMmap, LoadServesSlabsStraightFromTheMapping) {
    const std::string path = temp_path("mmap_snapshot.bin");
    search::SearchEngine fresh(shared_corpus());
    search::save_engine_snapshot(fresh, path);

    search::EngineSnapshot snap = search::load_engine_snapshot(path);
    ASSERT_TRUE(snap.zero_copy());
    EXPECT_TRUE(snap.mmap_fallback_reason.empty());
    EXPECT_TRUE(snap.slab_backing.empty()); // no owned slab copy was made

    // Every big table — postings and scorer slabs of every class index —
    // must point into the file mapping, not into private memory.
    for (search::VectorClass cls :
         {search::VectorClass::AttackPattern, search::VectorClass::Weakness,
          search::VectorClass::Vulnerability}) {
        const text::InvertedIndex& idx = snap.engine->class_index(cls);
        EXPECT_FALSE(idx.store().owning());
        EXPECT_TRUE(snap.mapping->contains(idx.store().term_bytes().data()));
        EXPECT_TRUE(snap.mapping->contains(idx.store().block_bytes().data()));
        EXPECT_TRUE(snap.mapping->contains(idx.store().data_bytes().data()));
    }
    EXPECT_TRUE(snap.engine->index_stats().mapped);

    // And the mapped engine answers bit-identically to the fresh build.
    const auto want = fresh.query_text("modbus command injection",
                                       search::VectorClass::Weakness);
    const auto got =
        snap.engine->query_text("modbus command injection", search::VectorClass::Weakness);
    ASSERT_EQ(want.size(), got.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(want[i].id, got[i].id);
        EXPECT_EQ(want[i].score, got[i].score);
    }
    // Re-freezing the mapped engine reproduces the file byte for byte.
    EXPECT_EQ(search::freeze_engine(*snap.engine), util::read_file(path));

    std::remove(path.c_str());
}

TEST(SnapshotMmap, SessionsShareOneMappingAndHotSwapKeepsItAlive) {
    const std::string path = temp_path("mmap_shared.bin");
    search::SearchEngine fresh(shared_corpus());
    search::save_engine_snapshot(fresh, path);

    core::SessionOptions opts;
    opts.snapshot_path = path;
    std::shared_ptr<const core::SharedEngine> handle =
        core::make_shared_engine(shared_corpus(), opts);
    ASSERT_NE(handle->mapping, nullptr);
    EXPECT_EQ(handle->cold_start.mmap_fallbacks, 0u);

    // N sessions over the handle: same engine object, same mapping, zero
    // per-session copies of the index.
    core::AnalysisSession a(synth::centrifuge_model(), handle);
    core::AnalysisSession b(synth::centrifuge_model(), handle);
    EXPECT_EQ(&a.engine(), &b.engine());
    EXPECT_TRUE(handle->mapping->contains(a.engine_handle()
                                              ->engine->class_index(search::VectorClass::Weakness)
                                              .store()
                                              .data_bytes()
                                              .data()));
    EXPECT_GT(a.associations().total(), 0u);

    // Hot swap: delete the file, drop our handle reference — the pinned
    // sessions' shared_ptr keeps the mapping (and the deleted file's
    // pages) alive, so in-flight analysis is undisturbed.
    std::remove(path.c_str());
    const std::weak_ptr<const core::SharedEngine> watch = handle;
    handle.reset();
    EXPECT_FALSE(watch.expired()); // sessions still hold it
    EXPECT_GT(b.associations().total(), 0u);
}

TEST(SnapshotMmap, MappedAndOwningThawsAgreeExactly) {
    const std::string path = temp_path("mmap_vs_owning.bin");
    search::SearchEngine fresh(shared_corpus());
    search::save_engine_snapshot(fresh, path);

    search::EngineSnapshot mapped = search::load_engine_snapshot(path);
    ASSERT_TRUE(mapped.zero_copy());
    search::EngineSnapshot owning = search::thaw_engine(util::read_file(path), path);
    EXPECT_FALSE(owning.zero_copy());
    EXPECT_FALSE(owning.slab_backing.empty());

    EXPECT_EQ(search::freeze_engine(*mapped.engine), search::freeze_engine(*owning.engine));
    model::SystemModel scada = synth::centrifuge_model();
    EXPECT_EQ(fingerprint(search::associate(scada, *mapped.engine)),
              fingerprint(search::associate(scada, *owning.engine)));

    std::remove(path.c_str());
}

// ---------------------------------------------------- parallel determinism

TEST(SnapshotDeterminism, ParallelBuildBitIdenticalToSequential) {
    // The tentpole contract: shard-parallel construction must produce the
    // same engine as the fused sequential loop, bit for bit. Frozen blobs
    // cover postings order, interning order, IDF/norm tables, and scorer
    // tables, so blob equality is the whole claim. Explicit thread counts
    // force real worker threads even on single-core CI runners.
    search::EngineOptions seq_opts;
    seq_opts.build_threads = 1;
    search::SearchEngine sequential(shared_corpus(), seq_opts);
    const std::string reference = freeze_engine(sequential);

    for (std::size_t threads : {std::size_t{0}, std::size_t{2}, std::size_t{5}}) {
        search::EngineOptions par_opts;
        par_opts.build_threads = threads;
        search::SearchEngine parallel(shared_corpus(), par_opts);
        EXPECT_EQ(freeze_engine(parallel), reference) << "build_threads=" << threads;
    }

    // Same contract when the build shares an external pool.
    util::ThreadPool pool(4);
    search::SearchEngine pooled(shared_corpus(), search::EngineOptions{}, &pool);
    EXPECT_EQ(freeze_engine(pooled), reference);
}

TEST(SnapshotDeterminism, BuildMetricsRecordTheShape) {
    search::EngineOptions opts;
    opts.build_threads = 3;
    search::SearchEngine engine(shared_corpus(), opts);
    const search::BuildMetrics& m = engine.build_metrics();
    EXPECT_FALSE(m.from_snapshot);
    EXPECT_EQ(m.threads, 3u);
    EXPECT_EQ(m.docs, shared_corpus().patterns().size() +
                          shared_corpus().weaknesses().size() +
                          shared_corpus().vulnerabilities().size());
    EXPECT_GT(m.wall_ns, 0u);
    EXPECT_GT(m.tokenize_ns, 0u); // two-phase build separates the costs
    EXPECT_GT(m.index_ns, 0u);

    // The associator surfaces the engine's build in its metrics.
    search::Associator assoc(engine, search::AssocOptions{});
    EXPECT_EQ(assoc.metrics().build.threads, 3u);
    EXPECT_GT(assoc.metrics().build.wall_ns, 0u);
}

// ---------------------------------------------------------------- session

TEST(SnapshotSession, ColdStartWritesThenThaws) {
    const std::string path = temp_path("session_snapshot.bin");
    model::SystemModel scada = synth::centrifuge_model();

    core::SessionOptions opts;
    opts.snapshot_path = path;

    // First start: no file yet — build fresh, write the snapshot.
    core::AnalysisSession first(scada, shared_corpus(), opts);
    EXPECT_FALSE(first.from_snapshot());
    const std::string ref = fingerprint(first.associations());
    EXPECT_FALSE(util::read_file(path).empty()); // snapshot was written

    // Second start: thaw — and produce byte-identical associations.
    core::AnalysisSession second(synth::centrifuge_model(), shared_corpus(), opts);
    EXPECT_TRUE(second.from_snapshot());
    EXPECT_TRUE(second.corpus().indexed());
    EXPECT_EQ(fingerprint(second.associations()), ref);
    EXPECT_TRUE(second.assoc_metrics().build.from_snapshot);

    std::remove(path.c_str());
}

TEST(SnapshotSession, StaleSnapshotTriggersRebuild) {
    const std::string path = temp_path("session_snapshot_stale.bin");
    core::SessionOptions bm25_opts;
    bm25_opts.snapshot_path = path;
    core::AnalysisSession writer(synth::centrifuge_model(), shared_corpus(), bm25_opts);
    EXPECT_FALSE(writer.from_snapshot());

    // Different engine options: the signature guard must reject the file
    // and rebuild (then rewrite it under the new options).
    core::SessionOptions tfidf_opts;
    tfidf_opts.snapshot_path = path;
    tfidf_opts.engine.ranker = search::EngineOptions::Ranker::Tfidf;
    core::AnalysisSession rebuilt(synth::centrifuge_model(), shared_corpus(), tfidf_opts);
    EXPECT_FALSE(rebuilt.from_snapshot());

    // The rewrite is effective: a third session under tfidf options thaws.
    core::AnalysisSession thawed(synth::centrifuge_model(), shared_corpus(), tfidf_opts);
    EXPECT_TRUE(thawed.from_snapshot());

    std::remove(path.c_str());
}

TEST(SnapshotSession, CorruptSnapshotFallsBackToFreshBuild) {
    const std::string path = temp_path("session_snapshot_corrupt.bin");
    util::write_file(path, "CYBOKSNP this is not a valid snapshot body");

    core::SessionOptions opts;
    opts.snapshot_path = path;
    core::AnalysisSession session(synth::centrifuge_model(), shared_corpus(), opts);
    EXPECT_FALSE(session.from_snapshot()); // fell back, no throw
    EXPECT_GT(session.associations().total(), 0u);

    // And the corrupt file was replaced by a valid one.
    core::AnalysisSession next(synth::centrifuge_model(), shared_corpus(), opts);
    EXPECT_TRUE(next.from_snapshot());

    std::remove(path.c_str());
}

TEST(SnapshotSession, CorpusShapeGuardRejectsMismatchedCorpus) {
    const std::string path = temp_path("session_snapshot_shape.bin");
    core::SessionOptions opts;
    opts.snapshot_path = path;
    core::AnalysisSession writer(synth::centrifuge_model(), shared_corpus(), opts);
    EXPECT_FALSE(writer.from_snapshot());

    // A different corpus (different scale) must not adopt the snapshot.
    const kb::Corpus other = synth::generate_corpus(synth::CorpusProfile::scaled(0.05, 3));
    core::AnalysisSession mismatched(synth::centrifuge_model(), other, opts);
    EXPECT_FALSE(mismatched.from_snapshot());

    std::remove(path.c_str());
}
