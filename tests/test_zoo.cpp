// Property tests for the architecture zoo (src/synth/zoo.*): determinism
// (bit-identical generation at any concurrency), seed sensitivity, and
// per-domain structural invariants that must hold from 10 to 10k
// components.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "model/dsl.hpp"
#include "synth/zoo.hpp"
#include "util/thread_pool.hpp"

using namespace cybok;

namespace {

synth::ZooConfig config_for(synth::ZooDomain domain, std::uint64_t seed,
                            std::size_t components) {
    synth::ZooConfig c;
    c.domain = domain;
    c.seed = seed;
    c.components = components;
    return c;
}

/// One canonical byte rendering per system: model DSL plus the hazard
/// structure, so "bit-identical" covers both halves of ZooSystem.
std::string system_bytes(const synth::ZooSystem& sys) {
    std::string out = model::to_dsl(sys.model);
    for (const safety::Loss& l : sys.hazards.losses()) out += l.id + '|' + l.text + '\n';
    for (const safety::Hazard& h : sys.hazards.hazards()) {
        out += h.id + '|' + h.text + '|';
        for (const std::string& l : h.losses) out += l + ',';
        out += '\n';
    }
    for (const safety::UnsafeControlAction& u : sys.hazards.ucas()) {
        out += u.id + '|' + u.controller + '|' + u.action + '|' + u.context + '|';
        for (const std::string& h : u.hazards) out += h + ',';
        out += '\n';
    }
    return out;
}

} // namespace

TEST(Zoo, DomainNamesRoundTrip) {
    ASSERT_EQ(synth::all_zoo_domains().size(), 4u);
    for (synth::ZooDomain d : synth::all_zoo_domains()) {
        const std::string_view name = synth::zoo_domain_name(d);
        const auto parsed = synth::parse_zoo_domain(name);
        ASSERT_TRUE(parsed.has_value()) << name;
        EXPECT_EQ(*parsed, d);
    }
    EXPECT_FALSE(synth::parse_zoo_domain("centrifuge").has_value());
    EXPECT_FALSE(synth::parse_zoo_domain("").has_value());
    EXPECT_FALSE(synth::parse_zoo_domain("UAV").has_value()); // wire names are lowercase
}

TEST(Zoo, RejectsOutOfBoundsComponentCounts) {
    EXPECT_THROW((void)synth::generate_zoo_system(
                     config_for(synth::ZooDomain::Uav, 1, synth::kZooMinComponents - 1)),
                 ValidationError);
    EXPECT_THROW((void)synth::generate_zoo_system(
                     config_for(synth::ZooDomain::Grid, 1, synth::kZooMaxComponents + 1)),
                 ValidationError);
}

// Same config => bit-identical system, regardless of how many sibling
// generations run concurrently (the fleet layer's core assumption). Each
// (domain, seed) is generated on pools of 1/2/8 threads and every byte
// compared.
TEST(Zoo, DeterministicAcrossThreadCounts) {
    std::vector<synth::ZooConfig> configs;
    for (synth::ZooDomain d : synth::all_zoo_domains())
        for (std::uint64_t seed : {11u, 12u, 13u})
            configs.push_back(config_for(d, seed, 40));

    std::vector<std::string> reference(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i)
        reference[i] = system_bytes(synth::generate_zoo_system(configs[i]));

    for (std::size_t threads : {1u, 2u, 8u}) {
        util::ThreadPool pool(threads);
        std::vector<std::string> got(configs.size());
        pool.parallel_for(configs.size(), [&](std::size_t i) {
            got[i] = system_bytes(synth::generate_zoo_system(configs[i]));
        });
        for (std::size_t i = 0; i < configs.size(); ++i)
            EXPECT_EQ(got[i], reference[i])
                << "config " << i << " differs at " << threads << " threads";
    }
}

TEST(Zoo, SeedSensitivity) {
    for (synth::ZooDomain d : synth::all_zoo_domains()) {
        const std::string a =
            system_bytes(synth::generate_zoo_system(config_for(d, 11, 60)));
        const std::string b =
            system_bytes(synth::generate_zoo_system(config_for(d, 12, 60)));
        EXPECT_NE(a, b) << "seed must perturb " << synth::zoo_domain_name(d);
    }
}

TEST(Zoo, NameEncodesDomainSeedAndSize) {
    const synth::ZooConfig c = config_for(synth::ZooDomain::Water, 77, 123);
    EXPECT_EQ(synth::zoo_system_name(c), "zoo-water-s77-n123");
    EXPECT_EQ(synth::generate_zoo_system(c).model.name(), "zoo-water-s77-n123");
}

// The structural invariants every domain must hold at every size: the
// model validates (no dangling connectors, duplicates, or isolated
// components), the hazard model validates (referential integrity), there
// is at least one annotated entry point, and every UCA controller names a
// live component.
TEST(Zoo, StructuralInvariantsAcrossSizes) {
    for (synth::ZooDomain d : synth::all_zoo_domains()) {
        for (std::size_t n : {std::size_t{10}, std::size_t{100}, std::size_t{1000},
                              std::size_t{10000}}) {
            const synth::ZooSystem sys =
                synth::generate_zoo_system(config_for(d, 21, n));
            const std::string label =
                std::string(synth::zoo_domain_name(d)) + " n=" + std::to_string(n);
            EXPECT_EQ(sys.model.component_count(), n) << label;
            EXPECT_TRUE(sys.model.validate().empty()) << label;
            EXPECT_TRUE(sys.hazards.validate().empty()) << label;

            std::set<std::string> names;
            std::size_t entries = 0;
            for (const model::Component& c : sys.model.components()) {
                if (!c.id.valid()) continue;
                names.insert(c.name);
                if (c.external_facing) ++entries;
                EXPECT_FALSE(c.attributes.empty()) << label << ": " << c.name;
            }
            EXPECT_GE(entries, 1u) << label;
            for (const safety::UnsafeControlAction& u : sys.hazards.ucas())
                EXPECT_TRUE(names.count(u.controller))
                    << label << ": UCA controller " << u.controller;
        }
    }
}

// Automotive bus connectivity: every ECU/controller reaches the gateway
// through some CAN bus, i.e. each bus connects to the gateway and every
// ecu-* hangs off a bus.
TEST(Zoo, AutomotiveBusesBridgeThroughGateway) {
    const synth::ZooSystem sys =
        synth::generate_zoo_system(config_for(synth::ZooDomain::Automotive, 31, 400));
    const model::SystemModel& m = sys.model;
    std::map<std::string, std::set<std::string>> adj;
    for (const model::Connector& c : m.connectors()) {
        const std::string from = m.component(c.from).name;
        const std::string to = m.component(c.to).name;
        adj[from].insert(to);
        adj[to].insert(from);
    }
    std::size_t buses = 0;
    for (const model::Component& c : m.components()) {
        if (!c.id.valid()) continue;
        if (c.name.rfind("can-bus-", 0) == 0) {
            ++buses;
            EXPECT_TRUE(adj[c.name].count("can-gateway")) << c.name << " not bridged";
        }
        if (c.name.rfind("ecu-", 0) == 0) {
            bool on_bus = false;
            for (const std::string& peer : adj[c.name])
                if (peer.rfind("can-bus-", 0) == 0) on_bus = true;
            EXPECT_TRUE(on_bus) << c.name << " not on any bus";
        }
    }
    // 400 components force multiple segments (one per ~16 ECUs).
    EXPECT_GE(buses, 2u);
}

// Grid ring redundancy: with >= 3 switches, every switch carries at least
// two station-ring links, so no single switch failure partitions the bus.
TEST(Zoo, GridSwitchRingStaysRedundant) {
    const synth::ZooSystem sys =
        synth::generate_zoo_system(config_for(synth::ZooDomain::Grid, 41, 500));
    const model::SystemModel& m = sys.model;
    std::map<std::string, std::size_t> ring_degree;
    for (const model::Connector& c : m.connectors()) {
        if (c.name != "station-ring") continue;
        ++ring_degree[m.component(c.from).name];
        ++ring_degree[m.component(c.to).name];
    }
    ASSERT_GE(ring_degree.size(), 3u);
    for (const auto& [name, degree] : ring_degree)
        EXPECT_GE(degree, 2u) << name << " has a single ring link";
}

// Water process-chain acyclicity: the stage-to-stage "process-flow" edges
// must form a simple forward chain (each stage feeds exactly the next),
// so treatment stages never loop back.
TEST(Zoo, WaterStageChainIsAcyclic) {
    const synth::ZooSystem sys =
        synth::generate_zoo_system(config_for(synth::ZooDomain::Water, 51, 600));
    const model::SystemModel& m = sys.model;
    std::map<std::string, std::string> next;
    std::set<std::string> targets;
    for (const model::Connector& c : m.connectors()) {
        if (c.name != "process-flow") continue;
        const std::string from = m.component(c.from).name;
        const std::string to = m.component(c.to).name;
        EXPECT_TRUE(next.emplace(from, to).second) << from << " feeds two stages";
        EXPECT_TRUE(targets.insert(to).second) << to << " fed twice";
    }
    // Walk from the intake; the chain must terminate without revisiting.
    std::set<std::string> seen;
    std::string cur = "intake-basin";
    while (next.count(cur)) {
        ASSERT_TRUE(seen.insert(cur).second) << "cycle at " << cur;
        cur = next[cur];
    }
    EXPECT_EQ(seen.size() + 1, next.size() + 1); // every chain edge walked once
}

// UAV redundant command channels: the ground station always reaches the
// autopilot over at least two independent datalinks.
TEST(Zoo, UavKeepsRedundantCommandChannels) {
    const synth::ZooSystem sys =
        synth::generate_zoo_system(config_for(synth::ZooDomain::Uav, 61, 300));
    const model::SystemModel& m = sys.model;
    std::set<std::string> gcs_links, autopilot_links;
    for (const model::Connector& c : m.connectors()) {
        const std::string from = m.component(c.from).name;
        const std::string to = m.component(c.to).name;
        const bool is_link = [&](const std::string& n) {
            return n.rfind("datalink", 0) == 0;
        }(from.rfind("datalink", 0) == 0 ? from : to);
        if (!is_link) continue;
        const std::string link = from.rfind("datalink", 0) == 0 ? from : to;
        const std::string other = from.rfind("datalink", 0) == 0 ? to : from;
        if (other == "gcs") gcs_links.insert(link);
        if (other == "autopilot") autopilot_links.insert(link);
    }
    EXPECT_GE(gcs_links.size(), 2u);
    EXPECT_GE(autopilot_links.size(), 2u);
    // Every link the GCS can key reaches the autopilot.
    for (const std::string& l : gcs_links) EXPECT_TRUE(autopilot_links.count(l)) << l;
}

// The fidelity mix: platform refs are Implementation-fidelity, role
// descriptors Functional (or Conceptual on physical processes), and a
// coarser at_fidelity() view drops the platform layer.
TEST(Zoo, FidelityMixSpansLifecycleStages) {
    const synth::ZooSystem sys =
        synth::generate_zoo_system(config_for(synth::ZooDomain::Grid, 71, 200));
    std::size_t platform_refs = 0, parameters = 0, descriptors = 0;
    for (const model::Component& c : sys.model.components()) {
        if (!c.id.valid()) continue;
        for (const model::Attribute& a : c.attributes) {
            switch (a.kind) {
            case model::AttributeKind::PlatformRef:
                ++platform_refs;
                EXPECT_EQ(a.fidelity, model::Fidelity::Implementation);
                EXPECT_TRUE(a.platform.has_value());
                break;
            case model::AttributeKind::Parameter:
                ++parameters;
                EXPECT_EQ(a.fidelity, model::Fidelity::Logical);
                break;
            case model::AttributeKind::Descriptor: ++descriptors; break;
            }
        }
    }
    EXPECT_EQ(descriptors, 200u); // every component carries its role
    EXPECT_GT(platform_refs, 0u);
    EXPECT_GT(parameters, 0u);
}
