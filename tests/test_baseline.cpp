#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baseline/comparison.hpp"
#include "synth/corpus_gen.hpp"
#include "synth/scada.hpp"

using namespace cybok;
using namespace cybok::baseline;

namespace {
search::AssociationMap stub(std::initializer_list<std::pair<const char*, int>> items) {
    search::AssociationMap map;
    for (const auto& [name, n] : items) {
        search::ComponentAssociation ca;
        ca.component = name;
        search::AttributeAssociation aa;
        aa.attribute_name = "role";
        aa.attribute_value = "stub";
        for (int i = 0; i < n; ++i) {
            search::Match m;
            m.cls = search::VectorClass::Weakness;
            m.id = "CWE-" + std::to_string(100 + i);
            aa.matches.push_back(std::move(m));
        }
        ca.attributes.push_back(std::move(aa));
        map.components.push_back(std::move(ca));
    }
    return map;
}
} // namespace

// ------------------------------------------------------------------ STRIDE

TEST(Stride, CategoryChartPerElementClass) {
    EXPECT_EQ(applicable_categories(ElementClass::ExternalEntity).size(), 2u);
    EXPECT_EQ(applicable_categories(ElementClass::Process).size(), 6u);
    EXPECT_EQ(applicable_categories(ElementClass::DataFlow).size(), 3u);
    EXPECT_EQ(applicable_categories(ElementClass::DataStore).size(), 4u);
}

TEST(Stride, ClassificationOfCentrifugeComponents) {
    model::SystemModel m = synth::centrifuge_model();
    auto classify = [&](const char* name) {
        return classify_component(m.component(*m.find_component(name)));
    };
    EXPECT_EQ(classify("Programming WS"), ElementClass::ExternalEntity);
    EXPECT_EQ(classify("Control firewall"), ElementClass::Process);
    EXPECT_EQ(classify("BPCS platform"), ElementClass::Process);
    EXPECT_EQ(classify("Temperature sensor"), ElementClass::DataStore);
    // The physical process is not representable by the baseline at all.
    EXPECT_FALSE(baseline_models(m.component(*m.find_component("Centrifuge"))));
}

TEST(Stride, PerElementFindingCounts) {
    model::SystemModel m = synth::centrifuge_model();
    std::vector<StrideThreat> threats = stride_per_element(m);
    // WS(ext,2) + FW(proc,6) + SIS(proc,6) + BPCS(proc,6) + Temp(store,4)
    // = 24 component findings; flows among modeled components:
    // WS<->FW, FW<->BPCS, BPCS<->SIS (3 connectors), Temp->BPCS, Temp->SIS
    // = 5 flows x 3 = 15. Flows touching the Centrifuge are dropped.
    std::size_t component_findings = 0;
    std::size_t flow_findings = 0;
    for (const StrideThreat& t : threats) {
        if (t.element_class == ElementClass::DataFlow) ++flow_findings;
        else ++component_findings;
        EXPECT_FALSE(t.description.empty());
    }
    EXPECT_EQ(component_findings, 24u);
    EXPECT_EQ(flow_findings, 15u);
}

TEST(Stride, PhysicalFlowsExcluded) {
    model::SystemModel m = synth::centrifuge_model();
    for (const StrideThreat& t : stride_per_element(m))
        EXPECT_EQ(t.element.find("Centrifuge"), std::string::npos) << t.element;
}

TEST(Stride, Names) {
    EXPECT_EQ(stride_name(Stride::ElevationOfPrivilege), "elevation-of-privilege");
    EXPECT_EQ(element_class_name(ElementClass::DataFlow), "data-flow");
}

// -------------------------------------------------------------- attack tree

TEST(AttackTree, BuildFromPaths) {
    model::SystemModel m = synth::centrifuge_model();
    auto assoc = stub({{"Programming WS", 2}, {"Control firewall", 1}, {"BPCS platform", 3}});
    AttackTree tree = build_attack_tree(m, assoc, "BPCS platform");
    // One path WS->FW->BPCS: 1 AND branch with 3 leaves.
    EXPECT_EQ(tree.leaf_count(), 3u);
    auto sets = tree.minimal_attack_sets();
    ASSERT_EQ(sets.size(), 1u);
    EXPECT_EQ(sets[0].size(), 3u);
    std::string rendered = tree.render();
    EXPECT_NE(rendered.find("GOAL: compromise BPCS platform"), std::string::npos);
    EXPECT_NE(rendered.find("AND:"), std::string::npos);
    EXPECT_NE(rendered.find("exploit Control firewall (1 candidate vectors)"),
              std::string::npos);
}

TEST(AttackTree, NoPathsYieldsBareGoal) {
    model::SystemModel m = synth::centrifuge_model();
    AttackTree tree = build_attack_tree(m, search::AssociationMap{}, "BPCS platform");
    EXPECT_EQ(tree.leaf_count(), 0u);
    EXPECT_TRUE(tree.minimal_attack_sets().empty());
}

TEST(AttackTree, OrOverMultiplePaths) {
    // Diamond: two disjoint 2-hop routes to the target.
    model::SystemModel m("diamond", "");
    auto a = m.add_component("Entry", model::ComponentType::Compute);
    m.component(a).external_facing = true;
    auto b1 = m.add_component("RouteA", model::ComponentType::Network);
    auto b2 = m.add_component("RouteB", model::ComponentType::Network);
    auto t = m.add_component("Target", model::ComponentType::Controller);
    m.connect(a, b1, "l1");
    m.connect(a, b2, "l2");
    m.connect(b1, t, "l3");
    m.connect(b2, t, "l4");
    auto assoc = stub({{"Entry", 1}, {"RouteA", 1}, {"RouteB", 1}, {"Target", 1}});
    AttackTree tree = build_attack_tree(m, assoc, "Target");
    auto sets = tree.minimal_attack_sets();
    EXPECT_EQ(sets.size(), 2u); // one per route
    EXPECT_EQ(tree.leaf_count(), 6u);
}

TEST(AttackTree, MinimalSetsRespectCap) {
    AttackTree tree("goal");
    std::size_t or_node = tree.add_node(AttackTreeNode::Kind::Or, "choices", 0);
    for (int i = 0; i < 20; ++i)
        tree.add_node(AttackTreeNode::Kind::Leaf, "leaf" + std::to_string(i), or_node);
    EXPECT_EQ(tree.minimal_attack_sets(5).size(), 5u);
    EXPECT_THROW(tree.add_node(AttackTreeNode::Kind::Leaf, "x", 999), cybok::ValidationError);
}

// --------------------------------------------------------------- comparison

TEST(MethodologyComparison, BaselineHasZeroConsequenceLinks) {
    kb::Corpus corpus = synth::generate_corpus(synth::CorpusProfile::scaled(0.1, 99));
    model::SystemModel m = synth::centrifuge_model();
    search::SearchEngine engine(corpus);
    search::AssociationMap assoc = search::associate(m, engine);
    safety::HazardModel hazards = synth::centrifuge_hazards();

    MethodologyComparison cmp = compare_methodologies(m, assoc, hazards, "BPCS platform");

    // The baseline produces plenty of findings...
    EXPECT_GT(cmp.stride_findings, 30u);
    EXPECT_GT(cmp.attack_tree_leaves, 0u);
    // ...but cannot express a single physical consequence, and cannot even
    // model the centrifuge itself.
    EXPECT_EQ(cmp.baseline_consequence_links, 0u);
    EXPECT_EQ(cmp.unmodeled_components, 1u);

    // The CPS pipeline reaches every modeled loss.
    EXPECT_GT(cmp.consequence_traces, 0u);
    EXPECT_GT(cmp.supported_scenarios, 0u);
    EXPECT_EQ(cmp.distinct_losses_reached, 3u); // L-1, L-2, L-3
}
