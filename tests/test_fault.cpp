// The fault-injection subsystem: injector semantics (triggers, seeds,
// determinism, thread safety) and — the acceptance criterion — one test
// per registered fault site that forces it to fire and asserts the
// documented typed-error recovery. The recovery assertions are
// differential where it matters: a fault-armed run must produce an
// association map byte-identical to the fault-free baseline.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <set>
#include <sstream>
#include <thread>

#include "analysis/fleet.hpp"
#include "core/session.hpp"
#include "kb/serialize.hpp"
#include "kb/delta.hpp"
#include "kb/snapshot.hpp"
#include "search/association.hpp"
#include "search/engine.hpp"
#include "search/generation.hpp"
#include "serve/registry.hpp"
#include "synth/corpus_gen.hpp"
#include "synth/model_gen.hpp"
#include "util/bytes.hpp"
#include "util/fault.hpp"
#include "util/json.hpp"
#include "util/xml.hpp"

using namespace cybok;

namespace {

const kb::Corpus& small_corpus() {
    static const kb::Corpus corpus =
        synth::generate_corpus(synth::CorpusProfile::scaled(0.05, 42));
    return corpus;
}

model::SystemModel small_model() {
    synth::ModelGenConfig cfg;
    cfg.seed = 17;
    cfg.components = 20;
    return synth::generate_model(cfg);
}

std::string fingerprint(const search::AssociationMap& map) {
    std::ostringstream out;
    out << std::hexfloat;
    for (const search::ComponentAssociation& c : map.components) {
        out << "C " << c.component << '\n';
        for (const search::AttributeAssociation& a : c.attributes) {
            out << " A " << a.attribute_name << '=' << a.attribute_value << '\n';
            for (const search::Match& m : a.matches) {
                out << "  M " << static_cast<int>(m.cls) << ' ' << m.corpus_index << ' '
                    << m.id << ' ' << m.score << ' ' << static_cast<int>(m.via) << ' '
                    << m.severity;
                for (const std::string& e : m.evidence) out << ' ' << e;
                out << '\n';
            }
        }
    }
    return out.str();
}

std::string temp_path(const char* name) {
    std::string p = testing::TempDir() + name;
    std::remove(p.c_str());
    return p;
}

/// The fault-free association baseline for (small_corpus, small_model).
const std::string& baseline_fingerprint() {
    static const std::string fp = [] {
        search::SearchEngine engine(small_corpus(), {});
        search::AssocOptions opts;
        opts.threads = 4;
        search::Associator assoc(engine, opts);
        return fingerprint(assoc.associate(small_model()));
    }();
    return fp;
}

std::size_t non_parameter_attributes(const model::SystemModel& m) {
    std::size_t n = 0;
    for (const model::Component& c : m.components()) {
        if (!c.id.valid()) continue;
        for (const model::Attribute& a : c.attributes)
            if (a.kind != model::AttributeKind::Parameter) ++n;
    }
    return n;
}

} // namespace

// ---------------------------------------------------------------- injector

TEST(FaultInjector, BaselineComputesWithNoFaultsArmed) {
    // Materialize the shared differential baseline while the injector is
    // provably disarmed, so later fault-armed tests compare against a
    // clean run regardless of test ordering.
    ASSERT_FALSE(util::fault_enabled());
    EXPECT_FALSE(baseline_fingerprint().empty());
}

TEST(FaultInjector, DisabledByDefaultAndAfterReset) {
    EXPECT_FALSE(util::fault_enabled());
    {
        util::FaultScope scope("kb.snapshot.open");
        EXPECT_TRUE(util::fault_enabled());
    }
    EXPECT_FALSE(util::fault_enabled());
    // Unarmed sites never fire even while another site is armed.
    util::FaultScope scope("kb.snapshot.open");
    EXPECT_FALSE(util::FaultInjector::instance().on_hit("some.other.site"));
}

TEST(FaultInjector, AlwaysTriggerFiresEveryHit) {
    util::FaultScope scope("x.site");
    auto& inj = util::FaultInjector::instance();
    for (int i = 0; i < 5; ++i) EXPECT_TRUE(inj.on_hit("x.site"));
    const std::vector<util::FaultSiteReport> report = inj.report();
    ASSERT_EQ(report.size(), 1u);
    EXPECT_EQ(report[0].site, "x.site");
    EXPECT_EQ(report[0].hits, 5u);
    EXPECT_EQ(report[0].fires, 5u);
}

TEST(FaultInjector, NthTriggerFiresExactlyOnce) {
    util::FaultScope scope("x.site=nth:3");
    auto& inj = util::FaultInjector::instance();
    EXPECT_FALSE(inj.on_hit("x.site"));
    EXPECT_FALSE(inj.on_hit("x.site"));
    EXPECT_TRUE(inj.on_hit("x.site"));
    EXPECT_FALSE(inj.on_hit("x.site"));
    EXPECT_EQ(inj.report()[0].fires, 1u);
}

TEST(FaultInjector, ProbabilityIsDeterministicUnderSeed) {
    auto fired_indices = [](std::uint64_t seed) {
        util::FaultScope scope("p.site=p:0.5");
        auto& inj = util::FaultInjector::instance();
        inj.set_seed(seed);
        std::set<int> fired;
        for (int i = 0; i < 256; ++i)
            if (inj.on_hit("p.site")) fired.insert(i);
        return fired;
    };
    const std::set<int> a = fired_indices(7);
    const std::set<int> b = fired_indices(7);
    const std::set<int> c = fired_indices(8);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c); // 256 coin flips agreeing across seeds: ~2^-256
    // p=0.5 over 256 hits: expect a plausible fraction, not all-or-nothing.
    EXPECT_GT(a.size(), 64u);
    EXPECT_LT(a.size(), 192u);
}

TEST(FaultInjector, ProbabilityExtremesAreExact) {
    util::FaultScope scope("never=p:0;always=p:1");
    auto& inj = util::FaultInjector::instance();
    for (int i = 0; i < 64; ++i) {
        EXPECT_FALSE(inj.on_hit("never"));
        EXPECT_TRUE(inj.on_hit("always"));
    }
}

TEST(FaultInjector, SpecGrammarParses) {
    util::FaultScope scope("seed=99;a.site;b.site=nth:4;c.site=p:0.25");
    auto& inj = util::FaultInjector::instance();
    EXPECT_EQ(inj.seed(), 99u);
    const std::vector<util::FaultSiteReport> report = inj.report();
    ASSERT_EQ(report.size(), 3u); // sorted by site name
    EXPECT_EQ(report[0].site, "a.site");
    EXPECT_EQ(report[0].trigger.kind, util::FaultTrigger::Kind::Always);
    EXPECT_EQ(report[1].site, "b.site");
    EXPECT_EQ(report[1].trigger.kind, util::FaultTrigger::Kind::Nth);
    EXPECT_EQ(report[1].trigger.nth, 4u);
    EXPECT_EQ(report[2].site, "c.site");
    EXPECT_EQ(report[2].trigger.kind, util::FaultTrigger::Kind::Probability);
    EXPECT_DOUBLE_EQ(report[2].trigger.probability, 0.25);
}

TEST(FaultInjector, MalformedSpecsThrowTyped) {
    auto& inj = util::FaultInjector::instance();
    EXPECT_THROW(inj.arm_spec("a.site=nth:0"), ValidationError);
    EXPECT_THROW(inj.arm_spec("a.site=p:1.5"), ValidationError);
    EXPECT_THROW(inj.arm_spec("a.site=p:x"), ValidationError);
    EXPECT_THROW(inj.arm_spec("a.site=sometimes"), ValidationError);
    EXPECT_THROW(inj.arm_spec("seed=abc"), ValidationError);
    EXPECT_THROW(inj.arm_spec("=always"), ValidationError);
    inj.reset();
}

TEST(FaultInjector, KnownSiteTableIsWellFormed) {
    const std::vector<util::FaultSiteInfo>& sites = util::known_fault_sites();
    EXPECT_EQ(sites.size(), 27u);
    std::set<std::string_view> names;
    for (const util::FaultSiteInfo& s : sites) {
        EXPECT_FALSE(s.site.empty());
        EXPECT_FALSE(s.throws_type.empty());
        EXPECT_FALSE(s.degradation.empty());
        EXPECT_TRUE(names.insert(s.site).second) << "duplicate site " << s.site;
    }
}

TEST(FaultInjectorConcurrency, NthFiresExactlyOnceAcrossThreads) {
    util::FaultScope scope("x.site=nth:50");
    auto& inj = util::FaultInjector::instance();
    std::atomic<int> fires{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t)
        threads.emplace_back([&] {
            for (int i = 0; i < 100; ++i)
                if (inj.on_hit("x.site")) ++fires;
        });
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(fires.load(), 1);
    EXPECT_EQ(inj.report()[0].hits, 800u);
}

// ------------------------------------------------------------- IO sites

TEST(FaultSites, ReadFileOpenThrowsTypedIoError) {
    const std::string path = temp_path("fault_read.txt");
    util::write_file(path, "payload");
    {
        util::FaultScope scope("util.bytes.read_file.open");
        try {
            (void)util::read_file(path);
            FAIL() << "expected IoError";
        } catch (const IoError& e) {
            EXPECT_NE(std::string(e.what()).find("injected"), std::string::npos);
        }
    }
    EXPECT_EQ(util::read_file(path), "payload"); // recovery: disarmed read works
}

TEST(FaultSites, ReadFileReadThrowsTypedIoError) {
    const std::string path = temp_path("fault_read2.txt");
    util::write_file(path, "payload");
    util::FaultScope scope("util.bytes.read_file.read");
    EXPECT_THROW((void)util::read_file(path), IoError);
}

TEST(FaultSites, WriteFileOpenThrowsTypedIoError) {
    const std::string path = temp_path("fault_write.txt");
    util::FaultScope scope("util.bytes.write_file.open");
    EXPECT_THROW(util::write_file(path, "data"), IoError);
}

TEST(FaultSites, WriteFileShortWriteLeavesTruncatedFile) {
    const std::string path = temp_path("fault_write2.txt");
    {
        util::FaultScope scope("util.bytes.write_file.write");
        EXPECT_THROW(util::write_file(path, "0123456789"), IoError);
    }
    // The injected short write left a truncated prefix behind — exactly
    // the on-disk state the snapshot framing must reject downstream.
    EXPECT_LT(util::read_file(path).size(), 10u);
}

TEST(FaultSites, TruncatedSnapshotWriteIsRejectedOnNextLoad) {
    const std::string path = temp_path("fault_trunc.snap");
    search::SearchEngine engine(small_corpus(), {});
    {
        util::FaultScope scope("util.bytes.write_file.write");
        EXPECT_THROW(search::save_engine_snapshot(engine, path), IoError);
    }
    // Degradation contract: the checksum/size framing catches the torn
    // write; a session would fall back to a fresh build.
    EXPECT_THROW((void)search::load_engine_snapshot(path), kb::SnapshotError);
}

// ----------------------------------------------------------- parse sites

TEST(FaultSites, JsonParseThrowsTypedParseError) {
    util::FaultScope scope("util.json.parse");
    try {
        (void)json::parse("{}");
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_NE(std::string(e.what()).find("injected"), std::string::npos);
    }
}

TEST(FaultSites, XmlParseThrowsTypedParseError) {
    util::FaultScope scope("util.xml.parse");
    EXPECT_THROW((void)xml::parse("<a/>"), ParseError);
}

TEST(FaultSites, SerializeRecordStrictModePropagates) {
    const json::Value doc = kb::to_json(small_corpus());
    util::FaultScope scope("kb.serialize.record=nth:1");
    EXPECT_THROW((void)kb::corpus_from_json(doc), ValidationError);
}

TEST(FaultSites, SerializeRecordLenientModeSkipsWithDiagnostic) {
    const json::Value doc = kb::to_json(small_corpus());
    const std::size_t total = small_corpus().patterns().size() +
                              small_corpus().weaknesses().size() +
                              small_corpus().vulnerabilities().size();
    util::FaultScope scope("kb.serialize.record=nth:3");
    std::vector<kb::RecordDiagnostic> diags;
    const kb::Corpus corpus = kb::corpus_from_json(doc, &diags);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].section, "attack_patterns");
    EXPECT_EQ(diags[0].index, 2u);
    EXPECT_NE(diags[0].error.find("injected"), std::string::npos);
    EXPECT_EQ(corpus.patterns().size() + corpus.weaknesses().size() +
                  corpus.vulnerabilities().size(),
              total - 1);
    EXPECT_TRUE(corpus.indexed());
}

// -------------------------------------------------------- snapshot sites

TEST(FaultSites, SnapshotOpenRejectionFallsBackToFreshBuild) {
    const std::string path = temp_path("fault_open.snap");
    core::SessionOptions opts;
    opts.snapshot_path = path;
    { core::AnalysisSession warm(small_model(), small_corpus(), opts); } // writes cache
    util::FaultScope scope("kb.snapshot.open");
    core::AnalysisSession session(small_model(), small_corpus(), opts);
    EXPECT_FALSE(session.from_snapshot());
    EXPECT_EQ(session.cold_start_degrade().snapshot_fallbacks, 1u);
    EXPECT_NE(session.cold_start_degrade().last_reason.find("injected"), std::string::npos);
    // Differential oracle: the degraded session's associations match the
    // fault-free baseline bit for bit.
    EXPECT_EQ(fingerprint(session.associations()), baseline_fingerprint());
}

TEST(FaultSites, SnapshotMapFailureFallsBackToOwningThaw) {
    const std::string path = temp_path("fault_map.snap");
    core::SessionOptions opts;
    opts.snapshot_path = path;
    { core::AnalysisSession warm(small_model(), small_corpus(), opts); } // writes cache
    util::FaultScope scope("snapshot.map");
    // Direct load: mmap refused -> owning-buffer thaw, reason recorded,
    // engine fully functional.
    search::EngineSnapshot snap = search::load_engine_snapshot(path);
    EXPECT_FALSE(snap.zero_copy());
    EXPECT_FALSE(snap.slab_backing.empty());
    EXPECT_NE(snap.mmap_fallback_reason.find("injected"), std::string::npos);
    // Session path: still thaws (no rebuild), degradation surfaced once
    // as an mmap fallback, and results match the fault-free baseline.
    core::AnalysisSession session(small_model(), small_corpus(), opts);
    EXPECT_TRUE(session.from_snapshot());
    EXPECT_EQ(session.cold_start_degrade().mmap_fallbacks, 1u);
    EXPECT_EQ(session.cold_start_degrade().snapshot_fallbacks, 0u);
    EXPECT_NE(session.cold_start_degrade().last_reason.find("injected"), std::string::npos);
    EXPECT_EQ(fingerprint(session.associations()), baseline_fingerprint());
}

TEST(FaultSites, SnapshotSealFailureAbandonsSaveOnly) {
    const std::string path = temp_path("fault_seal.snap");
    core::SessionOptions opts;
    opts.snapshot_path = path;
    util::FaultScope scope("kb.snapshot.seal");
    core::AnalysisSession session(small_model(), small_corpus(), opts);
    EXPECT_EQ(session.cold_start_degrade().snapshot_save_failures, 1u);
    EXPECT_THROW((void)util::read_file(path), IoError); // nothing written
    EXPECT_EQ(fingerprint(session.associations()), baseline_fingerprint());
}

TEST(FaultSites, SnapshotErrorCarriesPathAndOffset) {
    const std::string path = temp_path("fault_offsets.snap");
    search::SearchEngine engine(small_corpus(), {});
    search::save_engine_snapshot(engine, path);
    std::string blob = util::read_file(path);
    const std::size_t at = kb::kSnapshotHeaderSize + 10; // corrupt one payload byte
    blob[at] = static_cast<char>(blob[at] ^ 0x40);
    util::write_file(path, blob);
    try {
        (void)search::load_engine_snapshot(path);
        FAIL() << "expected SnapshotError";
    } catch (const kb::SnapshotError& e) {
        EXPECT_EQ(e.path(), path);
        EXPECT_EQ(e.offset(), 8u + 4 + 8 + 8); // eager checksum field offset
        const std::string what = e.what();
        EXPECT_NE(what.find(path), std::string::npos);
        EXPECT_NE(what.find("byte"), std::string::npos);
    }
}

TEST(FaultSites, SnapshotErrorOffsetForTruncatedPayload) {
    search::SearchEngine engine(small_corpus(), {});
    const std::string blob = search::freeze_engine(engine);
    try {
        (void)search::thaw_engine(std::string_view(blob).substr(0, blob.size() - 7));
        FAIL() << "expected SnapshotError";
    } catch (const kb::SnapshotError& e) {
        EXPECT_EQ(e.offset(), blob.size() - 7); // truncation point
        EXPECT_NE(std::string(e.what()).find("<memory>"), std::string::npos);
    }
}

// ----------------------------------------------------------- build sites

TEST(FaultSites, ShardFailureFallsBackToSequentialBuildBitIdentical) {
    search::EngineOptions opts;
    opts.build_threads = 4;
    search::EngineOptions seq_opts;
    seq_opts.build_threads = 1;
    const search::SearchEngine reference(small_corpus(), seq_opts);

    util::FaultScope scope("search.build.shard=nth:1");
    const search::SearchEngine degraded(small_corpus(), opts);
    EXPECT_TRUE(degraded.build_metrics().parallel_fallback);
    // Differential oracle: the fallback engine is byte-identical to the
    // sequential reference — frozen blobs compare equal.
    EXPECT_EQ(search::freeze_engine(degraded), search::freeze_engine(reference));
}

// ----------------------------------------------------------- cache sites

TEST(FaultSites, CacheGetFailureDegradesToRecompute) {
    search::SearchEngine engine(small_corpus(), {});
    search::AssocOptions opts;
    opts.threads = 4;
    search::Associator assoc(engine, opts);
    util::FaultScope scope("search.cache.get");
    const search::AssociationMap map = assoc.associate(small_model());
    EXPECT_EQ(fingerprint(map), baseline_fingerprint());
    const search::AssocMetrics m = assoc.metrics();
    EXPECT_EQ(m.cache_hits, 0u); // every get failed -> every task a miss
    EXPECT_GT(m.degrade.cache_recoveries, 0u);
    EXPECT_NE(m.degrade.last_reason.find("injected"), std::string::npos);
}

TEST(FaultSites, CachePutFailureDegradesToUncached) {
    search::SearchEngine engine(small_corpus(), {});
    search::AssocOptions opts;
    opts.threads = 4;
    search::Associator assoc(engine, opts);
    util::FaultScope scope("search.cache.put");
    const search::AssociationMap map = assoc.associate(small_model());
    EXPECT_EQ(fingerprint(map), baseline_fingerprint());
    const search::AssocMetrics m = assoc.metrics();
    EXPECT_EQ(m.cache_hits, 0u); // nothing was ever cached
    EXPECT_EQ(m.cache_misses, non_parameter_attributes(small_model()));
    EXPECT_GT(m.degrade.cache_recoveries, 0u);
}

TEST(FaultSites, RecomputeTransientFailureRetriesOnce) {
    search::SearchEngine engine(small_corpus(), {});
    search::AssocOptions opts;
    opts.threads = 4;
    search::Associator assoc(engine, opts);
    util::FaultScope scope("search.assoc.recompute=nth:1");
    const search::AssociationMap map = assoc.associate(small_model());
    EXPECT_EQ(fingerprint(map), baseline_fingerprint());
    EXPECT_EQ(assoc.metrics().degrade.recompute_retries, 1u);
}

TEST(FaultSites, RecomputePersistentFailurePropagatesTyped) {
    search::SearchEngine engine(small_corpus(), {});
    search::Associator assoc(engine, {});
    util::FaultScope scope("search.assoc.recompute");
    EXPECT_THROW((void)assoc.associate(small_model()), Error);
}

// ------------------------------------------------------ cold-start sites

TEST(FaultSites, ColdStartLoadFaultRecordsFallbackReason) {
    const std::string path = temp_path("fault_cold_load.snap");
    core::SessionOptions opts;
    opts.snapshot_path = path;
    { core::AnalysisSession warm(small_model(), small_corpus(), opts); }
    util::FaultScope scope("session.cold_start.load");
    core::AnalysisSession session(small_model(), small_corpus(), opts);
    EXPECT_FALSE(session.from_snapshot());
    const search::AssocMetrics m = session.assoc_metrics();
    EXPECT_EQ(m.degrade.snapshot_fallbacks, 1u);
    EXPECT_NE(m.degrade.last_reason.find("injected"), std::string::npos);
    EXPECT_EQ(fingerprint(session.associations()), baseline_fingerprint());
}

TEST(FaultSites, ColdStartSaveFaultRecordsFailure) {
    const std::string path = temp_path("fault_cold_save.snap");
    core::SessionOptions opts;
    opts.snapshot_path = path;
    util::FaultScope scope("session.cold_start.save");
    core::AnalysisSession session(small_model(), small_corpus(), opts);
    EXPECT_EQ(session.assoc_metrics().degrade.snapshot_save_failures, 1u);
    EXPECT_THROW((void)util::read_file(path), IoError); // no file written
    EXPECT_EQ(fingerprint(session.associations()), baseline_fingerprint());
}

TEST(FaultSites, StaleSnapshotFallbackIsRecordedNotSilent) {
    // Satellite check without injection: a *stale* snapshot (different
    // engine signature) must surface through metrics too.
    const std::string path = temp_path("fault_stale.snap");
    core::SessionOptions opts;
    opts.snapshot_path = path;
    { core::AnalysisSession warm(small_model(), small_corpus(), opts); }
    core::SessionOptions changed = opts;
    changed.engine.title_weight += 1.0f;
    core::AnalysisSession session(small_model(), small_corpus(), changed);
    EXPECT_FALSE(session.from_snapshot());
    EXPECT_EQ(session.cold_start_degrade().snapshot_fallbacks, 1u);
    EXPECT_NE(session.cold_start_degrade().last_reason.find("stale"), std::string::npos);
}

// --------------------------------------------- delta + compaction sites

TEST(FaultSites, DeltaApplyFaultIsTransactional) {
    kb::Corpus corpus = small_corpus();
    const std::string before = json::dump(kb::to_json(corpus));
    kb::CorpusDelta delta;
    delta.weaknesses.push_back(corpus.weaknesses().front());
    delta.weaknesses.back().description += " amended";
    {
        util::FaultScope scope("kb.delta.apply");
        EXPECT_THROW(kb::apply_corpus_delta(corpus, delta), ValidationError);
        // Validate-before-mutate: the corpus is byte-identical.
        EXPECT_EQ(json::dump(kb::to_json(corpus)), before);
    }
    EXPECT_EQ(kb::apply_corpus_delta(corpus, delta).weaknesses.modified, 1u);
}

TEST(FaultSites, DeltaSegmentBuildFaultPublishesNothing) {
    const kb::Corpus& corpus = small_corpus();
    const search::SearchEngine base(corpus, {});
    kb::CorpusDelta delta;
    delta.weaknesses.push_back(corpus.weaknesses().front());
    delta.weaknesses.back().description += " amended";
    {
        util::FaultScope scope("search.delta.segment");
        EXPECT_THROW(search::SegmentedEngine(base, delta), Error);
    }
    // Apply-is-a-constructor: a failed apply leaves no partial engine, and
    // the same delta applies cleanly once the fault is disarmed.
    const search::SegmentedEngine seg(base, delta);
    EXPECT_EQ(seg.segment_count(), 1u);
    EXPECT_EQ(seg.apply_metrics().report.weaknesses.modified, 1u);
}

TEST(FaultSites, CompactionFoldFaultKeepsOldGenerationAuthoritative) {
    const std::shared_ptr<const core::SharedEngine> g0 =
        core::make_shared_engine(small_corpus(), core::SessionOptions{});
    kb::CorpusDelta delta;
    delta.weaknesses.push_back(small_corpus().weaknesses().front());
    delta.weaknesses.back().description += " amended";
    serve::SessionRegistry registry(core::apply_corpus_delta(g0, delta),
                                    small_model(), serve::RegistryOptions{});
    const std::uint64_t gen_before = registry.current()->id;
    {
        util::FaultScope scope("serve.compact.fold");
        try {
            (void)registry.compact();
            FAIL() << "expected ProtocolError";
        } catch (const serve::ProtocolError& e) {
            EXPECT_EQ(static_cast<int>(e.code()),
                      static_cast<int>(serve::ErrorCode::CompactFailed));
        }
    }
    // The segmented generation keeps serving; the failure is counted, not
    // silent.
    EXPECT_EQ(registry.current()->id, gen_before);
    EXPECT_EQ(registry.stats().compaction_failures, 1u);
    EXPECT_EQ(registry.stats().current_segments, 1u);
    EXPECT_EQ(registry.aggregate_metrics().degrade.compaction_failures, 1u);

    // Disarmed: the fold succeeds and flips to a plain base generation.
    EXPECT_GT(registry.compact(), gen_before);
    EXPECT_EQ(registry.stats().compactions, 1u);
    EXPECT_EQ(registry.stats().current_segments, 0u);
}

// ------------------------------------------------- cache + faults, racing

TEST(FaultConcurrency, EvictionUnderInjectedFailuresKeepsCountersConsistent) {
    // Tiny capacity forces constant eviction; probabilistic get/put faults
    // exercise every degradation path while 4 lanes race. The invariant:
    // every non-parameter attribute resolves to exactly one hit or miss,
    // and the result is still byte-identical to the baseline.
    search::SearchEngine engine(small_corpus(), {});
    search::AssocOptions opts;
    opts.threads = 4;
    opts.cache_capacity = 4;
    search::Associator assoc(engine, opts);
    util::FaultScope scope("seed=11;search.cache.get=p:0.3;search.cache.put=p:0.3");
    const model::SystemModel m = small_model();
    const std::size_t tasks = non_parameter_attributes(m);
    for (int run = 0; run < 3; ++run)
        EXPECT_EQ(fingerprint(assoc.associate(m)), baseline_fingerprint());
    const search::AssocMetrics metrics = assoc.metrics();
    EXPECT_EQ(metrics.cache_hits + metrics.cache_misses, 3 * tasks);
}

TEST(FaultConcurrency, QueryCacheHammerWithInjectedFaults) {
    search::QueryCache cache(8);
    util::FaultScope scope("seed=3;search.cache.get=p:0.2;search.cache.put=p:0.2");
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([&cache, t] {
            for (int i = 0; i < 200; ++i) {
                const std::string key = "k" + std::to_string(i % 32);
                const std::string component = "c" + std::to_string(t % 2);
                try {
                    cache.put(key, {}, component);
                } catch (const Error&) {
                }
                try {
                    (void)cache.get(key, component);
                } catch (const Error&) {
                }
                if (i % 64 == 0) (void)cache.invalidate_component(component);
            }
        });
    for (std::thread& t : threads) t.join();
    EXPECT_LE(cache.size(), 8u);
}

// ------------------------------------------------------ zoo / fleet sites

TEST(FaultSites, ZooGenThrowsTypedValidationError) {
    synth::ZooConfig config;
    config.domain = synth::ZooDomain::Grid;
    config.seed = 5;
    config.components = 20;
    {
        util::FaultScope scope("synth.zoo.gen");
        try {
            (void)synth::generate_zoo_system(config);
            FAIL() << "expected ValidationError";
        } catch (const ValidationError& e) {
            const std::string what = e.what();
            EXPECT_NE(what.find("injected"), std::string::npos);
            EXPECT_NE(what.find("zoo-grid-s5-n20"), std::string::npos);
        }
    }
    // Recovery: disarmed generation succeeds with the same config.
    EXPECT_EQ(synth::generate_zoo_system(config).model.component_count(), 20u);
}

TEST(FaultSites, FleetTaskFailureDegradesToRecordedSystem) {
    search::SearchEngine engine(small_corpus(), {});
    analysis::FleetOptions options;
    options.systems = 4;
    options.components = 15;
    options.threads = 2;
    {
        // nth:2 — exactly one of the four per-system tasks absorbs the fault.
        util::FaultScope scope("analysis.fleet.task=nth:2");
        const analysis::FleetResult result = analysis::analyze_fleet(engine, options);
        ASSERT_EQ(result.ranking.size(), 4u);
        EXPECT_EQ(result.failed, 1u);
        const analysis::FleetSystemReport& last = result.ranking.back();
        EXPECT_TRUE(last.failed); // failed systems rank last
        EXPECT_FALSE(last.name.empty());
        EXPECT_NE(last.error.find("injected"), std::string::npos);
        EXPECT_NE(last.error.find(last.name), std::string::npos);
    }
    // Recovery: the disarmed rerun has no failures.
    EXPECT_EQ(analysis::analyze_fleet(engine, options).failed, 0u);
}
