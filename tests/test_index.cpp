#include <gtest/gtest.h>

#include "text/index.hpp"
#include "text/tokenize.hpp"

using namespace cybok::text;

namespace {

/// Index of four tiny documents (no stemming — raw tokens).
InvertedIndex sample_index() {
    InvertedIndex index;
    const char* docs[] = {
        "linux kernel buffer overflow",           // doc 0
        "windows registry privilege escalation",  // doc 1
        "linux command injection",                // doc 2
        "generic buffer handling",                // doc 3
    };
    for (const char* d : docs) {
        index.add_document();
        index.add_terms(tokenize(d));
    }
    index.finalize();
    return index;
}

} // namespace

TEST(Vocabulary, InternAndLookup) {
    Vocabulary v;
    TermId a = v.intern("linux");
    TermId b = v.intern("windows");
    EXPECT_NE(a, b);
    EXPECT_EQ(v.intern("linux"), a); // idempotent
    EXPECT_EQ(v.lookup("linux"), a);
    EXPECT_EQ(v.lookup("absent"), kNoTerm);
    EXPECT_EQ(v.term(a), "linux");
    EXPECT_EQ(v.size(), 2u);
    EXPECT_THROW((void)v.term(99), cybok::NotFoundError);
}

TEST(InvertedIndex, DocCapacityOverflowIsTypedWithOffendingCount) {
    // The 32-bit doc-id space ends one short of UINT32_MAX (the "no
    // current document" sentinel). The capacity check is factored out of
    // add_document so the overflow contract is testable without adding
    // 2^32 documents: at the limit it must throw a typed ValidationError
    // naming the offending count, not surface later as add_term's
    // misleading "add_document must be called first".
    EXPECT_NO_THROW(detail::check_doc_capacity(0));
    EXPECT_NO_THROW(detail::check_doc_capacity(UINT32_MAX - 1));
    try {
        detail::check_doc_capacity(UINT32_MAX);
        FAIL() << "expected ValidationError";
    } catch (const cybok::ValidationError& e) {
        EXPECT_NE(std::string(e.what()).find(std::to_string(UINT32_MAX)), std::string::npos)
            << e.what();
    }
    EXPECT_THROW(detail::check_doc_capacity(static_cast<std::size_t>(UINT32_MAX) + 7),
                 cybok::ValidationError);
    // The misuse error is unchanged: add_term before any add_document.
    InvertedIndex index;
    EXPECT_THROW(index.add_term("orphan"), cybok::ValidationError);
}

TEST(InvertedIndex, BasicStatistics) {
    InvertedIndex index = sample_index();
    EXPECT_EQ(index.doc_count(), 4u);
    EXPECT_EQ(index.doc_frequency("linux"), 2u);
    EXPECT_EQ(index.doc_frequency("buffer"), 2u);
    EXPECT_EQ(index.doc_frequency("registry"), 1u);
    EXPECT_EQ(index.doc_frequency("absent"), 0u);
    EXPECT_DOUBLE_EQ(index.avg_doc_length(), (4 + 4 + 3 + 3) / 4.0);
}

TEST(InvertedIndex, FieldWeights) {
    InvertedIndex index;
    index.add_document();
    index.add_term("title", 3.0f);
    index.add_term("body", 1.0f);
    index.finalize();
    EXPECT_DOUBLE_EQ(index.doc_length(0), 4.0);
    TermId t = index.vocabulary().lookup("title");
    ASSERT_EQ(index.postings(t).size(), 1u);
    EXPECT_FLOAT_EQ(index.postings(t)[0].weight, 3.0f);
}

TEST(InvertedIndex, RepeatedTermsAccumulate) {
    InvertedIndex index;
    index.add_document();
    index.add_terms({"x", "x", "x"});
    index.finalize();
    TermId t = index.vocabulary().lookup("x");
    EXPECT_FLOAT_EQ(index.postings(t)[0].weight, 3.0f);
}

TEST(InvertedIndex, LifecycleErrors) {
    InvertedIndex index;
    EXPECT_THROW(index.add_term("x"), cybok::ValidationError); // no document yet
    index.add_document();
    index.add_term("x");
    index.finalize();
    EXPECT_THROW(index.add_document(), cybok::ValidationError);
    EXPECT_THROW(index.finalize(), cybok::ValidationError);
    EXPECT_THROW((void)index.doc_length(5), cybok::NotFoundError);
}

TEST(InvertedIndex, EmptyIndexFinalizes) {
    InvertedIndex index;
    index.finalize();
    EXPECT_EQ(index.doc_count(), 0u);
    EXPECT_DOUBLE_EQ(index.avg_doc_length(), 0.0);
}

TEST(Bm25, RequiresFinalizedIndex) {
    InvertedIndex index;
    EXPECT_THROW(Bm25Scorer scorer(index), cybok::ValidationError);
}

TEST(Bm25, RanksMatchingDocsOnly) {
    InvertedIndex index = sample_index();
    Bm25Scorer scorer(index);
    auto hits = scorer.query({"linux"});
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_TRUE((hits[0].doc == 0 && hits[1].doc == 2) ||
                (hits[0].doc == 2 && hits[1].doc == 0));
}

TEST(Bm25, MoreMatchedTermsScoreHigher) {
    InvertedIndex index = sample_index();
    Bm25Scorer scorer(index);
    auto hits = scorer.query({"linux", "kernel"});
    ASSERT_GE(hits.size(), 2u);
    EXPECT_EQ(hits[0].doc, 0u); // matches both terms
    EXPECT_EQ(hits[0].matched_terms.size(), 2u);
    EXPECT_GT(hits[0].score, hits[1].score);
}

TEST(Bm25, UnknownTermsIgnored) {
    InvertedIndex index = sample_index();
    Bm25Scorer scorer(index);
    EXPECT_TRUE(scorer.query({"zzz"}).empty());
    EXPECT_EQ(scorer.query({"zzz", "registry"}).size(), 1u);
}

TEST(Bm25, RareTermsHaveHigherIdf) {
    InvertedIndex index = sample_index();
    Bm25Scorer scorer(index);
    EXPECT_GT(scorer.idf("registry"), scorer.idf("linux"));
    EXPECT_GT(scorer.idf("absent"), scorer.idf("registry")); // df=0 maximal
}

TEST(Bm25, DuplicateQueryTermsDontDoubleCount) {
    InvertedIndex index = sample_index();
    Bm25Scorer scorer(index);
    auto once = scorer.query({"linux"});
    auto twice = scorer.query({"linux", "linux"});
    ASSERT_EQ(once.size(), twice.size());
    EXPECT_DOUBLE_EQ(once[0].score, twice[0].score);
}

TEST(Bm25, ScoresDeterministic) {
    InvertedIndex index = sample_index();
    Bm25Scorer scorer(index);
    auto a = scorer.query({"buffer", "linux"});
    auto b = scorer.query({"buffer", "linux"});
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].doc, b[i].doc);
        EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
    }
}

TEST(Tfidf, CosineInUnitRange) {
    InvertedIndex index = sample_index();
    TfidfScorer scorer(index);
    for (const Hit& h : scorer.query({"linux", "kernel", "buffer"})) {
        EXPECT_GE(h.score, 0.0);
        EXPECT_LE(h.score, 1.0 + 1e-9);
    }
}

TEST(Tfidf, ExactDocumentQueryScoresHighest) {
    InvertedIndex index = sample_index();
    TfidfScorer scorer(index);
    auto hits = scorer.query(tokenize("windows registry privilege escalation"));
    ASSERT_FALSE(hits.empty());
    EXPECT_EQ(hits[0].doc, 1u);
    EXPECT_NEAR(hits[0].score, 1.0, 1e-9);
}

TEST(Tfidf, AgreesWithBm25OnClearWinner) {
    InvertedIndex index = sample_index();
    Bm25Scorer bm25(index);
    TfidfScorer tfidf(index);
    auto b = bm25.query({"registry"});
    auto t = tfidf.query({"registry"});
    ASSERT_EQ(b.size(), 1u);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(b[0].doc, t[0].doc);
}

TEST(Jaccard, Basics) {
    EXPECT_DOUBLE_EQ(jaccard({"a", "b"}, {"a", "b"}), 1.0);
    EXPECT_DOUBLE_EQ(jaccard({"a"}, {"b"}), 0.0);
    EXPECT_DOUBLE_EQ(jaccard({"a", "b"}, {"b", "c"}), 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(jaccard({}, {}), 1.0);
    // Multiset input collapses to sets.
    EXPECT_DOUBLE_EQ(jaccard({"a", "a"}, {"a"}), 1.0);
}
