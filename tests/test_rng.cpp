#include <gtest/gtest.h>

#include <map>
#include <set>

#include "util/rng.hpp"

using cybok::Rng;

TEST(Rng, DeterministicForSameSeed) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next()) ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformStaysInRange) {
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        auto v = rng.uniform(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
    }
}

TEST(Rng, UniformSingletonRange) {
    Rng rng(7);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform(5, 5), 5u);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        double d = rng.uniform01();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, ChanceExtremes) {
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability) {
    Rng rng(11);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (rng.chance(0.3)) ++hits;
    double rate = static_cast<double>(hits) / n;
    EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(Rng, WeightedRespectsZeroWeights) {
    Rng rng(13);
    std::vector<double> w{0.0, 1.0, 0.0};
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(rng.weighted(w), 1u);
}

TEST(Rng, WeightedFollowsDistribution) {
    Rng rng(17);
    std::vector<double> w{1.0, 3.0};
    int counts[2] = {0, 0};
    const int n = 40000;
    for (int i = 0; i < n; ++i) ++counts[rng.weighted(w)];
    EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.75, 0.02);
}

TEST(Rng, ZipfHeadHeavierThanTail) {
    Rng rng(19);
    std::map<std::size_t, int> counts;
    for (int i = 0; i < 20000; ++i) ++counts[rng.zipf(100, 1.0)];
    EXPECT_GT(counts[0], counts[50]);
    EXPECT_GT(counts[0], 20000 / 100); // much more than uniform share
    for (const auto& [rank, _] : counts) EXPECT_LT(rank, 100u);
}

TEST(Rng, PoissonMeanIsLambda) {
    Rng rng(23);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(4.0));
    EXPECT_NEAR(sum / n, 4.0, 0.1);
    // Large-lambda path.
    sum = 0.0;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(50.0));
    EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(Rng, PoissonZeroLambda) {
    Rng rng(29);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
    Rng rng(31);
    for (int trial = 0; trial < 50; ++trial) {
        auto sample = rng.sample_indices(20, 7);
        EXPECT_EQ(sample.size(), 7u);
        std::set<std::size_t> uniq(sample.begin(), sample.end());
        EXPECT_EQ(uniq.size(), 7u);
        for (std::size_t idx : sample) EXPECT_LT(idx, 20u);
    }
}

TEST(Rng, SampleAllElements) {
    Rng rng(37);
    auto sample = rng.sample_indices(5, 5);
    std::set<std::size_t> uniq(sample.begin(), sample.end());
    EXPECT_EQ(uniq.size(), 5u);
}

TEST(Rng, ShufflePreservesElements) {
    Rng rng(41);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
    auto orig = v;
    rng.shuffle(v);
    std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
    EXPECT_EQ(a, b);
}

TEST(Rng, ForkDecorrelates) {
    Rng parent(43);
    Rng c1 = parent.fork(1);
    Rng c2 = parent.fork(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (c1.next() == c2.next()) ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, StableHashIsStable) {
    EXPECT_EQ(cybok::stable_hash("abc"), cybok::stable_hash("abc"));
    EXPECT_NE(cybok::stable_hash("abc"), cybok::stable_hash("abd"));
    EXPECT_NE(cybok::stable_hash(""), cybok::stable_hash("a"));
}
