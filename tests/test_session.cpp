// End-to-end tests of the AnalysisSession facade, including the exact
// Table 1 regression against the paper's published numbers.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/session.hpp"
#include "synth/corpus_gen.hpp"
#include "synth/scada.hpp"

using namespace cybok;
using namespace cybok::core;

namespace {
const kb::Corpus& demo_corpus() {
    static const kb::Corpus corpus = synth::generate_corpus(synth::CorpusProfile::scada_demo());
    return corpus;
}
} // namespace

TEST(Session, CapabilityOneExportsArchitecture) {
    AnalysisSession s(synth::centrifuge_model(), demo_corpus());
    graph::PropertyGraph g = s.architecture();
    EXPECT_EQ(g.node_count(), 6u);
    EXPECT_EQ(g.edge_count(), 10u); // 3 bidirectional + 4 one-way
    std::string xml = s.architecture_graphml();
    EXPECT_NE(xml.find("<graphml"), std::string::npos);
    EXPECT_NE(xml.find("BPCS platform"), std::string::npos);
}

TEST(Session, TableOneMatchesThePaperExactly) {
    // The headline reproduction: Table 1 of the DSN 2020 paper.
    AnalysisSession s(synth::centrifuge_model(), demo_corpus());
    auto rows = s.associations().attribute_table();

    struct Expected {
        const char* attribute;
        std::size_t patterns, weaknesses, vulnerabilities;
    };
    const Expected paper[] = {
        {"Cisco ASA", 2, 1, 3776},  {"NI RT Linux OS", 54, 75, 9673},
        {"Windows 7", 41, 73, 6627}, {"LabVIEW", 0, 0, 6},
        {"NI cRIO 9063", 0, 0, 7},  {"NI cRIO 9064", 0, 0, 7},
    };
    for (const Expected& e : paper) {
        bool found = false;
        for (const auto& row : rows) {
            if (row.attribute != e.attribute) continue;
            found = true;
            EXPECT_EQ(row.attack_patterns, e.patterns) << e.attribute;
            EXPECT_EQ(row.weaknesses, e.weaknesses) << e.attribute;
            EXPECT_EQ(row.vulnerabilities, e.vulnerabilities) << e.attribute;
            break; // duplicate rows (both controllers) hold identical counts
        }
        EXPECT_TRUE(found) << e.attribute;
    }
}

TEST(Session, CweSeventyEightFindingOnControlPlatforms) {
    // "both the BPCS and SIS platforms were proposed of being vulnerable
    // to CWE-78 – OS Command Injection".
    AnalysisSession s(synth::centrifuge_model(), demo_corpus());
    for (const char* component : {"BPCS platform", "SIS platform"}) {
        const search::ComponentAssociation* ca = s.associations().find(component);
        ASSERT_NE(ca, nullptr);
        bool found = false;
        for (const auto& aa : ca->attributes)
            for (const auto& m : aa.matches)
                if (m.id == "CWE-78") found = true;
        EXPECT_TRUE(found) << component;
    }
}

TEST(Session, PostureAndTracesLazilyComputed) {
    AnalysisSession s(synth::centrifuge_model(), demo_corpus());
    EXPECT_FALSE(s.has_hazards());
    EXPECT_TRUE(s.consequence_traces().empty()); // no hazard model yet
    s.set_hazards(synth::centrifuge_hazards());
    EXPECT_TRUE(s.has_hazards());
    EXPECT_FALSE(s.consequence_traces().empty());
    EXPECT_EQ(s.posture().components.size(), 6u);
}

TEST(Session, RejectsInvalidHazardModel) {
    AnalysisSession s(synth::centrifuge_model(), demo_corpus());
    safety::HazardModel broken;
    broken.add(safety::Hazard{"H-1", "dangling", {"L-9"}});
    EXPECT_THROW(s.set_hazards(std::move(broken)), cybok::ValidationError);
}

TEST(Session, ProposeDoesNotMutateState) {
    AnalysisSession s(synth::centrifuge_model(), demo_corpus());
    std::size_t before = s.associations().total();
    analysis::WhatIfResult r = s.propose(synth::centrifuge_model_hardened());
    EXPECT_EQ(r.comparison.verdict, analysis::Verdict::Improved);
    EXPECT_EQ(s.associations().total(), before); // unchanged
    EXPECT_EQ(s.model().name(), "particle-separation-centrifuge");
}

TEST(Session, CommitAppliesIncrementalUpdate) {
    AnalysisSession s(synth::centrifuge_model(), demo_corpus());
    std::size_t before = s.associations().total();
    model::ModelDiff d = s.commit(synth::centrifuge_model_hardened());
    EXPECT_FALSE(d.empty());
    std::size_t after = s.associations().total();
    EXPECT_LT(after, before);

    // Committed state matches a fresh full analysis.
    AnalysisSession fresh(synth::centrifuge_model_hardened(), demo_corpus());
    EXPECT_EQ(after, fresh.associations().total());
}

TEST(Session, CommitInvalidatesDerivedViews) {
    AnalysisSession s(synth::centrifuge_model(), demo_corpus());
    s.set_hazards(synth::centrifuge_hazards());
    std::size_t traces_before = s.consequence_traces().size();
    (void)traces_before;
    double ws_sev_before = s.posture().find("Programming WS")->max_severity;
    s.commit(synth::centrifuge_model_hardened());
    double ws_sev_after = s.posture().find("Programming WS")->max_severity;
    EXPECT_NE(ws_sev_before, ws_sev_after); // Windows 7 CVEs are gone
}

TEST(Session, FilterChainShrinksResultSpace) {
    SessionOptions options;
    options.filters.add(search::min_severity(cvss::Severity::Critical))
        .top_k_per_class(10);
    AnalysisSession filtered(synth::centrifuge_model(), demo_corpus(), std::move(options));
    AnalysisSession unfiltered(synth::centrifuge_model(), demo_corpus());
    EXPECT_LT(filtered.associations().total(), unfiltered.associations().total());
    // Top-10 per class per attribute: bounded per attribute.
    for (const auto& ca : filtered.associations().components)
        for (const auto& aa : ca.attributes)
            EXPECT_LE(aa.count(search::VectorClass::Vulnerability), 10u);
}

TEST(Session, ReportAndBundle) {
    AnalysisSession s(synth::centrifuge_model(), demo_corpus());
    s.set_hazards(synth::centrifuge_hazards());
    dashboard::Report r = s.report();
    EXPECT_NE(r.find_section("Physical consequences"), nullptr);

    std::string dir = testing::TempDir() + "/cybok_session_bundle";
    std::filesystem::create_directories(dir);
    auto files = s.export_bundle(dir);
    EXPECT_EQ(files.size(), 5u);
}

TEST(Session, FidelityStoryHoldsEndToEnd) {
    // The full paper narrative: a functional-fidelity model produces a
    // qualitatively different (vulnerability-free) result space than the
    // implementation-fidelity model.
    AnalysisSession impl(synth::centrifuge_model(), demo_corpus());
    AnalysisSession func(synth::centrifuge_model().at_fidelity(model::Fidelity::Functional),
                         demo_corpus());
    EXPECT_GT(impl.associations().total(search::VectorClass::Vulnerability), 20000u);
    EXPECT_EQ(func.associations().total(search::VectorClass::Vulnerability), 0u);
    EXPECT_GT(func.associations().total(search::VectorClass::AttackPattern), 0u);
}

TEST(Session, VersionString) {
    EXPECT_FALSE(version().empty());
}

TEST(Session, CausalScenariosRequireHazards) {
    AnalysisSession s(synth::centrifuge_model(), demo_corpus());
    EXPECT_TRUE(s.causal_scenarios().empty());
    s.set_hazards(synth::centrifuge_hazards());
    const auto& scenarios = s.causal_scenarios();
    EXPECT_FALSE(scenarios.empty());
    // The Triton-style UCA-4 (trip withheld) has a supported
    // compromised-controller scenario on the SIS.
    bool found = false;
    for (const auto& sc : scenarios) {
        if (sc.uca_id == "UCA-4" &&
            sc.cls == safety::CausalClass::CompromisedController) {
            EXPECT_TRUE(sc.supported());
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Session, HardeningCandidatesRanked) {
    AnalysisSession s(synth::centrifuge_model(), demo_corpus());
    s.set_hazards(synth::centrifuge_hazards());
    auto ranked = s.hardening_candidates();
    ASSERT_FALSE(ranked.empty());
    for (std::size_t i = 1; i < ranked.size(); ++i)
        EXPECT_GE(ranked[i - 1].traces_blocked, ranked[i].traces_blocked);
}

TEST(Session, VectorGraphBuilds) {
    AnalysisSession s(synth::centrifuge_model(), demo_corpus());
    graph::PropertyGraph g = s.vector_graph();
    auto stats = dashboard::vector_graph_stats(g);
    EXPECT_EQ(stats.components, 6u);
    EXPECT_GT(stats.association_edges, 0u);
}

TEST(Session, ExplainAuditsAMatch) {
    AnalysisSession s(synth::centrifuge_model(), demo_corpus());
    model::ComponentId bpcs = *s.model().find_component("BPCS platform");
    const model::Attribute* role = s.model().find_attribute(bpcs, "role");
    ASSERT_NE(role, nullptr);
    auto matches = s.engine().query_attribute(*role);
    ASSERT_FALSE(matches.empty());
    // Find the CWE-78 match and audit it.
    for (const auto& m : matches) {
        if (m.id != "CWE-78") continue;
        std::string why = s.engine().explain(*role, m);
        EXPECT_NE(why.find("CWE-78"), std::string::npos);
        EXPECT_NE(why.find("via lexical"), std::string::npos);
        EXPECT_NE(why.find("<- matched this record"), std::string::npos);
        EXPECT_NE(why.find("evidence IDF total"), std::string::npos);
    }
    // Platform-binding explanation path.
    const model::Attribute* os = s.model().find_attribute(bpcs, "os");
    auto os_matches = s.engine().query_attribute(*os);
    ASSERT_FALSE(os_matches.empty());
    std::string why = s.engine().explain(*os, os_matches.back());
    EXPECT_NE(why.find("CPE rule"), std::string::npos);
}

TEST(Session, ReportIncludesScenarioAndHardeningSections) {
    AnalysisSession s(synth::centrifuge_model(), demo_corpus());
    s.set_hazards(synth::centrifuge_hazards());
    dashboard::Report r = s.report();
    const dashboard::Section* scenarios = r.find_section("Causal scenarios");
    ASSERT_NE(scenarios, nullptr);
    EXPECT_FALSE(scenarios->lines.empty());
    const dashboard::Section* hardening = r.find_section("Hardening priorities");
    ASSERT_NE(hardening, nullptr);
    ASSERT_TRUE(hardening->table.has_value());
    EXPECT_GT(hardening->table->row_count(), 0u);

    // Without hazards, neither section appears.
    AnalysisSession bare(synth::centrifuge_model(), demo_corpus());
    dashboard::Report r2 = bare.report();
    EXPECT_EQ(r2.find_section("Causal scenarios"), nullptr);
    EXPECT_EQ(r2.find_section("Hardening priorities"), nullptr);
}

TEST(Session, MissionImpactsAndAdvice) {
    AnalysisSession s(synth::centrifuge_model(), demo_corpus());
    EXPECT_FALSE(s.has_missions());
    EXPECT_TRUE(s.mission_impacts().empty());
    s.set_missions(analysis::centrifuge_missions());
    auto impacts = s.mission_impacts();
    ASSERT_EQ(impacts.size(), 3u);
    // Every mission of the demo plant is threatened at implementation
    // fidelity — every allocated component carries vectors.
    for (const auto& impact : impacts) EXPECT_TRUE(impact.threatened());

    // Rejects a mission model referencing unknown components.
    model::MissionModel broken;
    broken.add(model::Function{"F-1", "x", {"Ghost"}});
    EXPECT_THROW(s.set_missions(std::move(broken)), cybok::ValidationError);

    // Advice on the complete demo model is minimal (no structural gaps).
    for (const auto& a : s.model_advice())
        EXPECT_NE(a.kind, analysis::AdviceKind::MissingEntryPoint);
}
