// Golden fixtures: one small committed model per zoo domain, with the
// expected flow fingerprint, top-3 attack paths, and lint diagnostics
// pinned byte-for-byte. These catch *any* unintended drift — in the
// generators (the .sysm must regenerate identically), in the corpus
// synthesizer, or in the association/flow/lint stack downstream.
//
// To refresh after an intentional change:
//     CYBOK_UPDATE_GOLDEN=1 ./cybok_tests --gtest_filter='ZooGolden.*'
// then review the fixture diff like any other code change.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "analysis/attack_paths.hpp"
#include "flow/flow.hpp"
#include "lint/lint.hpp"
#include "model/dsl.hpp"
#include "search/association.hpp"
#include "search/engine.hpp"
#include "synth/corpus_gen.hpp"
#include "synth/zoo.hpp"
#include "util/bytes.hpp"

using namespace cybok;

namespace {

const kb::Corpus& golden_corpus() {
    static const kb::Corpus corpus =
        synth::generate_corpus(synth::CorpusProfile::scaled(0.05, 42));
    return corpus;
}

const search::SearchEngine& golden_engine() {
    static const search::SearchEngine engine(golden_corpus());
    return engine;
}

std::string fixture_path(const std::string& leaf) {
    return std::string(CYBOK_SOURCE_DIR) + "/tests/golden/" + leaf;
}

/// Hexfloat rendering (same idiom as FlowResult::fingerprint), so the
/// expected file pins doubles exactly rather than through decimal noise.
std::string hex_double(double v) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%a", v);
    return buf;
}

/// The analysis digest pinned per domain: flow fingerprint, top-3 attack
/// paths against hazard-linked targets, and the full lint stream.
std::string analysis_digest(const synth::ZooSystem& sys) {
    const search::AssociationMap assoc = search::associate(sys.model, golden_engine());
    const flow::FlowResult flow_result =
        flow::analyze(sys.model, assoc, &sys.hazards);

    std::string out = "== flow fingerprint ==\n" + flow_result.fingerprint();

    out += "== top-3 attack paths ==\n";
    std::vector<analysis::AttackPath> all;
    for (const flow::ComponentFlow& cf : flow_result.components) {
        if (!cf.hazard_linked) continue;
        for (const analysis::AttackPath& p :
             analysis::attack_paths(sys.model, assoc, cf.component))
            all.push_back(p);
    }
    std::sort(all.begin(), all.end(),
              [](const analysis::AttackPath& a, const analysis::AttackPath& b) {
                  if (a.exposure != b.exposure) return a.exposure > b.exposure;
                  return a.components < b.components;
              });
    if (all.size() > 3) all.resize(3);
    for (const analysis::AttackPath& p : all) {
        std::string line;
        for (const std::string& c : p.components) {
            if (!line.empty()) line += '>';
            line += c;
        }
        out += line + " vectors=" + std::to_string(p.total_vectors) +
               " weakest=" + std::to_string(p.weakest_link) +
               " exposure=" + hex_double(p.exposure) + '\n';
    }

    out += "== lint ==\n";
    lint::LintInput input;
    input.model = &sys.model;
    input.corpus = &golden_corpus();
    input.hazards = &sys.hazards;
    input.associations = &assoc;
    for (const lint::Diagnostic& d : lint::run_lint(input).diagnostics)
        out += d.code + '|' + std::string(lint::severity_name(d.severity)) + '|' +
               d.subject + '|' + d.message + '\n';
    return out;
}

void check_golden(synth::ZooDomain domain) {
    synth::ZooConfig config;
    config.domain = domain;
    config.seed = 3;
    config.components = 12;
    const synth::ZooSystem sys = synth::generate_zoo_system(config);

    const std::string name(synth::zoo_domain_name(domain));
    const std::string model_path = fixture_path("zoo_" + name + ".sysm");
    const std::string expected_path = fixture_path("zoo_" + name + ".expected.txt");
    const std::string dsl = model::to_dsl(sys.model);
    const std::string digest = analysis_digest(sys);

    if (std::getenv("CYBOK_UPDATE_GOLDEN") != nullptr) {
        util::write_file(model_path, dsl);
        util::write_file(expected_path, digest);
        GTEST_SKIP() << "fixtures rewritten: " << model_path;
    }

    EXPECT_EQ(dsl, util::read_file(model_path))
        << name << " generator drifted from its committed fixture";
    EXPECT_EQ(digest, util::read_file(expected_path))
        << name << " analysis output drifted from its committed fixture";

    // The committed model is also a valid interchange file: it reparses to
    // a model whose analysis digest matches the generated one.
    const model::SystemModel reparsed = model::parse_dsl(util::read_file(model_path));
    synth::ZooSystem roundtrip;
    roundtrip.model = reparsed;
    roundtrip.hazards = sys.hazards;
    EXPECT_EQ(analysis_digest(roundtrip), digest) << name << " DSL round-trip diverged";
}

} // namespace

TEST(ZooGolden, Uav) { check_golden(synth::ZooDomain::Uav); }
TEST(ZooGolden, Automotive) { check_golden(synth::ZooDomain::Automotive); }
TEST(ZooGolden, Grid) { check_golden(synth::ZooDomain::Grid); }
TEST(ZooGolden, Water) { check_golden(synth::ZooDomain::Water); }
