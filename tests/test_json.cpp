#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/json.hpp"

namespace json = cybok::json;

TEST(Json, ParsesScalars) {
    EXPECT_TRUE(json::parse("null").is_null());
    EXPECT_EQ(json::parse("true").as_bool(), true);
    EXPECT_EQ(json::parse("false").as_bool(), false);
    EXPECT_DOUBLE_EQ(json::parse("3.5").as_number(), 3.5);
    EXPECT_EQ(json::parse("-17").as_int(), -17);
    EXPECT_EQ(json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructure) {
    auto v = json::parse(R"({"a": [1, 2, {"b": "c"}], "d": null})");
    ASSERT_TRUE(v.is_object());
    const auto& a = v.at("a").as_array();
    ASSERT_EQ(a.size(), 3u);
    EXPECT_EQ(a[0].as_int(), 1);
    EXPECT_EQ(a[2].at("b").as_string(), "c");
    EXPECT_TRUE(v.at("d").is_null());
}

TEST(Json, StringEscapes) {
    auto v = json::parse(R"("line\nbreak\ttab\\\"q\"")");
    EXPECT_EQ(v.as_string(), "line\nbreak\ttab\\\"q\"");
}

TEST(Json, UnicodeEscapes) {
    EXPECT_EQ(json::parse(R"("A")").as_string(), "A");
    // U+00E9 (e-acute) -> 2-byte UTF-8.
    EXPECT_EQ(json::parse(R"("é")").as_string(), "\xc3\xa9");
    // Surrogate pair U+1F600.
    EXPECT_EQ(json::parse(R"("😀")").as_string(), "\xf0\x9f\x98\x80");
}

TEST(Json, RejectsMalformedInput) {
    EXPECT_THROW(json::parse(""), cybok::ParseError);
    EXPECT_THROW(json::parse("{"), cybok::ParseError);
    EXPECT_THROW(json::parse("[1,]"), cybok::ParseError);
    EXPECT_THROW(json::parse("{\"a\" 1}"), cybok::ParseError);
    EXPECT_THROW(json::parse("tru"), cybok::ParseError);
    EXPECT_THROW(json::parse("1 2"), cybok::ParseError);
    EXPECT_THROW(json::parse("\"unterminated"), cybok::ParseError);
    EXPECT_THROW(json::parse("\"\\ud800\""), cybok::ParseError); // unpaired surrogate
}

TEST(Json, TypeMismatchThrows) {
    auto v = json::parse("[1]");
    EXPECT_THROW((void)v.as_object(), cybok::ValidationError);
    EXPECT_THROW((void)v.as_string(), cybok::ValidationError);
    auto o = json::parse("{}");
    EXPECT_THROW((void)o.at("missing"), cybok::NotFoundError);
}

TEST(Json, GettersWithFallback) {
    auto v = json::parse(R"({"s": "x", "n": 4, "b": true})");
    EXPECT_EQ(v.get_string("s"), "x");
    EXPECT_EQ(v.get_string("absent", "def"), "def");
    EXPECT_EQ(v.get_int("n"), 4);
    EXPECT_EQ(v.get_int("absent", -1), -1);
    EXPECT_TRUE(v.get_bool("b"));
    EXPECT_FALSE(v.get_bool("absent"));
}

TEST(Json, DumpParseRoundTrip) {
    const char* doc = R"({"arr":[1,2.5,"s",null,true],"nested":{"k":"v"}})";
    auto v = json::parse(doc);
    auto v2 = json::parse(json::dump(v));
    EXPECT_EQ(v, v2);
    auto v3 = json::parse(json::dump(v, 2)); // pretty print round-trips too
    EXPECT_EQ(v, v3);
}

TEST(Json, CompactDumpIsDeterministic) {
    json::Object o;
    o["b"] = json::Value(1);
    o["a"] = json::Value(2);
    // std::map ordering: keys sorted.
    EXPECT_EQ(json::dump(json::Value(std::move(o))), R"({"a":2,"b":1})");
}

TEST(Json, IntegersSerializeWithoutDecimalPoint) {
    EXPECT_EQ(json::dump(json::Value(42)), "42");
    EXPECT_EQ(json::dump(json::Value(42.5)), "42.5");
}

TEST(Json, OperatorBracketBuildsObjects) {
    json::Value v;
    v["x"]["y"] = json::Value("z");
    EXPECT_EQ(v.at("x").at("y").as_string(), "z");
}

TEST(Json, FileRoundTrip) {
    std::string path = testing::TempDir() + "/cybok_json_test.json";
    json::Value v = json::parse(R"({"k": [1, 2, 3]})");
    json::save_file(path, v);
    EXPECT_EQ(json::load_file(path), v);
    EXPECT_THROW(json::load_file("/nonexistent/dir/file.json"), cybok::IoError);
}
