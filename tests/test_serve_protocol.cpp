// Protocol-layer tests: framing round trips under arbitrary chunking, the
// full adversarial-frame matrix (every violation a typed BadFrame, never a
// crash — run this suite under asan), per-type request decode with typed
// field errors, response envelopes, and the docs/PROTOCOL.md lockstep
// check that keeps the wire tables and the documentation in sync.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "serve/protocol.hpp"
#include "util/bytes.hpp"

using namespace cybok;
using namespace cybok::serve;

namespace {

/// Feed a byte stream in chunks of `chunk` and collect every payload.
std::vector<std::string> drain(std::string_view stream, std::size_t chunk,
                               std::size_t max_frame = kDefaultMaxFrameBytes) {
    FrameDecoder decoder(max_frame);
    std::vector<std::string> payloads;
    for (std::size_t i = 0; i < stream.size(); i += chunk) {
        decoder.feed(stream.substr(i, chunk));
        while (std::optional<std::string> p = decoder.next()) payloads.push_back(*p);
    }
    return payloads;
}

ErrorCode decode_failure(std::string_view stream,
                         std::size_t max_frame = kDefaultMaxFrameBytes) {
    FrameDecoder decoder(max_frame);
    decoder.feed(stream);
    try {
        while (decoder.next().has_value()) {}
    } catch (const ProtocolError& e) {
        return e.code();
    }
    ADD_FAILURE() << "no ProtocolError for: " << stream;
    return ErrorCode::Internal;
}

ErrorCode request_failure(std::string_view payload) {
    try {
        (void)decode_request(payload);
    } catch (const ProtocolError& e) {
        return e.code();
    }
    ADD_FAILURE() << "no ProtocolError for payload: " << payload;
    return ErrorCode::Internal;
}

} // namespace

// -- tables -------------------------------------------------------------------

TEST(ServeProtocol, ErrorCodeTableIsCompleteAndUnique) {
    const auto& codes = known_error_codes();
    EXPECT_EQ(codes.size(), 12u);
    std::set<std::string_view> wires;
    for (const ErrorCodeInfo& info : codes) {
        EXPECT_FALSE(info.wire.empty());
        EXPECT_FALSE(info.summary.empty());
        EXPECT_TRUE(wires.insert(info.wire).second) << "duplicate wire name " << info.wire;
        // Enum-order indexing: the lookup function agrees with the table.
        EXPECT_EQ(error_code_name(info.code), info.wire);
    }
}

TEST(ServeProtocol, MessageTypeTableIsCompleteAndUnique) {
    const auto& types = known_message_types();
    EXPECT_EQ(types.size(), 16u);
    std::set<std::string_view> wires;
    for (const MessageTypeInfo& info : types) {
        EXPECT_FALSE(info.wire.empty());
        EXPECT_FALSE(info.summary.empty());
        EXPECT_TRUE(wires.insert(info.wire).second) << "duplicate wire name " << info.wire;
        EXPECT_EQ(message_type_name(info.type), info.wire);
    }
}

// -- framing ------------------------------------------------------------------

TEST(ServeProtocol, FrameRoundTripsUnderEveryChunking) {
    const std::string a = R"({"type":"ping","id":1})";
    const std::string b = R"({"type":"query","id":2,"text":"modbus overflow"})";
    const std::string stream = encode_frame(a) + encode_frame(b);
    // From byte-at-a-time up to one big read, the same two payloads.
    for (std::size_t chunk : {std::size_t{1}, std::size_t{2}, std::size_t{7}, stream.size()}) {
        const std::vector<std::string> payloads = drain(stream, chunk);
        ASSERT_EQ(payloads.size(), 2u) << "chunk=" << chunk;
        EXPECT_EQ(payloads[0], a);
        EXPECT_EQ(payloads[1], b);
    }
}

TEST(ServeProtocol, FrameToleratesCarriageReturnAfterLength) {
    // `nc -C` sends \r\n; the \r before the length newline is accepted.
    const std::string payload = R"({"type":"hello"})";
    const std::string stream = std::to_string(payload.size()) + "\r\n" + payload + "\n";
    const std::vector<std::string> payloads = drain(stream, stream.size());
    ASSERT_EQ(payloads.size(), 1u);
    EXPECT_EQ(payloads[0], payload);
}

TEST(ServeProtocol, EmptyPayloadFrameIsLegal) {
    const std::vector<std::string> payloads = drain("0\n\n", 1);
    ASSERT_EQ(payloads.size(), 1u);
    EXPECT_EQ(payloads[0], "");
}

TEST(ServeProtocol, AdversarialFramesAreTypedNeverCrashes) {
    EXPECT_EQ(decode_failure("abc\n{}\n"), ErrorCode::BadFrame);       // non-digit length
    EXPECT_EQ(decode_failure("-2\n{}\n"), ErrorCode::BadFrame);        // signed length
    EXPECT_EQ(decode_failure("\n{}\n"), ErrorCode::BadFrame);          // empty length line
    EXPECT_EQ(decode_failure("2 \n{}\n"), ErrorCode::BadFrame);        // trailing junk
    EXPECT_EQ(decode_failure("999999999\n"), ErrorCode::BadFrame);     // 9 digits
    EXPECT_EQ(decode_failure("4096\n{}\n", 64), ErrorCode::BadFrame);  // over frame limit
    EXPECT_EQ(decode_failure("2\n{}X"), ErrorCode::BadFrame);          // bad terminator
    EXPECT_EQ(decode_failure("0123456789abcdef"), ErrorCode::BadFrame); // endless length line
}

TEST(ServeProtocol, TruncatedFramesWaitForMoreBytes) {
    FrameDecoder decoder;
    decoder.feed("16");
    EXPECT_FALSE(decoder.next().has_value()); // length line incomplete
    decoder.feed("\n{\"type\":\"hello\"");
    EXPECT_FALSE(decoder.next().has_value()); // payload incomplete
    decoder.feed("}");
    EXPECT_FALSE(decoder.next().has_value()); // terminator missing
    decoder.feed("\n");
    const std::optional<std::string> payload = decoder.next();
    ASSERT_TRUE(payload.has_value());
    EXPECT_EQ(*payload, "{\"type\":\"hello\"}");
}

TEST(ServeProtocol, PoisonedDecoderStaysPoisoned) {
    FrameDecoder decoder;
    decoder.feed("nope\n");
    EXPECT_THROW((void)decoder.next(), ProtocolError);
    EXPECT_TRUE(decoder.poisoned());
    // A valid frame after the violation is unreachable: the stream has no
    // resynchronization point, so every further next() refuses.
    decoder.feed(encode_frame(std::string_view("{}")));
    EXPECT_THROW((void)decoder.next(), ProtocolError);
}

TEST(ServeProtocol, LongLivedDecoderCompactsItsBuffer) {
    FrameDecoder decoder;
    const std::string frame = encode_frame(std::string_view(std::string(512, 'x')));
    for (int i = 0; i < 100; ++i) {
        decoder.feed(frame);
        ASSERT_TRUE(decoder.next().has_value());
    }
    // The consumed prefix is reclaimed, not accumulated forever.
    EXPECT_EQ(decoder.buffered(), 0u);
}

// -- requests -----------------------------------------------------------------

TEST(ServeProtocol, EveryMessageTypeRoundTrips) {
    for (const MessageTypeInfo& info : known_message_types()) {
        Request req;
        req.type = info.type;
        req.id = 42;
        req.session = "s-7";
        req.text = "plc firmware tamper";
        req.cls = "weakness";
        req.limit = 3;
        req.model_dsl = "system \"m\"\n";
        req.commit = true;
        req.snapshot = "/tmp/gen2.snap";
        const std::string payload = json::dump(encode_request(req));
        const Request back = decode_request(payload);
        EXPECT_EQ(back.type, req.type) << info.wire;
        EXPECT_EQ(back.id, 42) << info.wire;
        // Fields not carried by this type legitimately reset to defaults;
        // the ones the type does carry must survive.
        switch (info.type) {
        case MsgType::Ping: EXPECT_EQ(back.text, req.text); break;
        case MsgType::SessionOpen: EXPECT_EQ(back.model_dsl, req.model_dsl); break;
        case MsgType::SessionClose:
        case MsgType::Associate:
        case MsgType::Posture: EXPECT_EQ(back.session, req.session); break;
        case MsgType::Query:
            EXPECT_EQ(back.text, req.text);
            EXPECT_EQ(back.cls, req.cls);
            EXPECT_EQ(back.limit, req.limit);
            break;
        case MsgType::WhatIf:
            EXPECT_EQ(back.session, req.session);
            EXPECT_EQ(back.model_dsl, req.model_dsl);
            EXPECT_TRUE(back.commit);
            break;
        case MsgType::Metrics: EXPECT_EQ(back.session, req.session); break;
        case MsgType::SnapshotSwap: EXPECT_EQ(back.snapshot, req.snapshot); break;
        default: break;
        }
    }
}

TEST(ServeProtocol, RequestDecodeErrorsAreTyped) {
    EXPECT_EQ(request_failure("not json at all"), ErrorCode::BadRequest);
    EXPECT_EQ(request_failure("[1,2,3]"), ErrorCode::BadRequest);
    EXPECT_EQ(request_failure("{}"), ErrorCode::BadRequest);                 // no type
    EXPECT_EQ(request_failure(R"({"type":42})"), ErrorCode::BadRequest);     // mistyped type
    EXPECT_EQ(request_failure(R"({"type":"nope"})"), ErrorCode::UnknownType);
    EXPECT_EQ(request_failure(R"({"type":"ping","id":"x"})"), ErrorCode::BadRequest);
    EXPECT_EQ(request_failure(R"({"type":"session.close"})"), ErrorCode::BadRequest);
    EXPECT_EQ(request_failure(R"({"type":"associate"})"), ErrorCode::BadRequest);
    EXPECT_EQ(request_failure(R"({"type":"posture","session":7})"), ErrorCode::BadRequest);
    EXPECT_EQ(request_failure(R"({"type":"query"})"), ErrorCode::BadRequest); // no text
    EXPECT_EQ(request_failure(R"({"type":"query","text":"x","class":"bogus"})"),
              ErrorCode::BadRequest);
    EXPECT_EQ(request_failure(R"({"type":"query","text":"x","limit":-1})"),
              ErrorCode::BadRequest);
    EXPECT_EQ(request_failure(R"({"type":"whatif","session":"s-1"})"), ErrorCode::BadRequest);
    EXPECT_EQ(request_failure(R"({"type":"whatif","session":"s-1","model":"m","commit":1})"),
              ErrorCode::BadRequest);
    EXPECT_EQ(request_failure(R"({"type":"snapshot.swap"})"), ErrorCode::BadRequest);
}

TEST(ServeProtocol, OptionalFieldsDefaultCleanly) {
    const Request ping = decode_request(R"({"type":"ping"})");
    EXPECT_EQ(ping.id, 0);
    EXPECT_TRUE(ping.text.empty());
    const Request open = decode_request(R"({"type":"session.open"})");
    EXPECT_TRUE(open.model_dsl.empty()); // base-model overlay
    const Request query = decode_request(R"({"type":"query","text":"x"})");
    EXPECT_EQ(query.limit, 10u);
    EXPECT_TRUE(query.cls.empty()); // all classes
    const Request metrics = decode_request(R"({"type":"metrics"})");
    EXPECT_TRUE(metrics.session.empty()); // server-wide
}

// -- responses ----------------------------------------------------------------

TEST(ServeProtocol, ResponseEnvelopesRoundTrip) {
    json::Value result;
    result["echo"] = "hi";
    const Response ok = decode_response(json::dump(ok_response(7, MsgType::Ping, result)));
    EXPECT_TRUE(ok.ok);
    EXPECT_EQ(ok.id, 7);
    EXPECT_EQ(ok.type, "ping");
    EXPECT_EQ(ok.body.get_string("echo"), "hi");

    const Response err = decode_response(
        json::dump(error_response(9, ErrorCode::Overloaded, "queue full")));
    EXPECT_FALSE(err.ok);
    EXPECT_EQ(err.id, 9);
    EXPECT_EQ(err.error_code, "overloaded");
    EXPECT_EQ(err.error_message, "queue full");
}

TEST(ServeProtocol, MalformedResponsesAreTyped) {
    EXPECT_THROW((void)decode_response("garbage"), ProtocolError);
    EXPECT_THROW((void)decode_response("{}"), ProtocolError);
    EXPECT_THROW((void)decode_response(R"({"ok":false})"), ProtocolError); // no error object
}

// -- documentation lockstep ---------------------------------------------------

TEST(ServeProtocol, ProtocolDocCoversEveryWireName) {
    // CYBOK_SOURCE_DIR is injected by tests/CMakeLists.txt; the doc is the
    // client-author contract, so every message type and error code in the
    // source-of-truth tables must appear in it verbatim.
    const std::string doc = util::read_file(std::string(CYBOK_SOURCE_DIR) +
                                            "/docs/PROTOCOL.md");
    for (const MessageTypeInfo& info : known_message_types())
        EXPECT_NE(doc.find("`" + std::string(info.wire) + "`"), std::string::npos)
            << "docs/PROTOCOL.md is missing message type `" << info.wire << "`";
    for (const ErrorCodeInfo& info : known_error_codes())
        EXPECT_NE(doc.find("`" + std::string(info.wire) + "`"), std::string::npos)
            << "docs/PROTOCOL.md is missing error code `" << info.wire << "`";
    // The protocol version in the doc's title block matches the header.
    EXPECT_NE(doc.find("protocol version " + std::to_string(kProtocolVersion)),
              std::string::npos);
}
