// Tests for the flow pass (src/flow): permeability model, taint and slice
// fixpoints on adversarial graph shapes (cycles, self-loops, disconnected
// regions, bidirectional links), chokepoint ranking, thread-count byte
// identity of the lint driver, and the incremental-vs-full fingerprint
// oracle both directly (analyze vs reanalyze) and through the session's
// commit() loop.

#include "flow/flow.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "core/session.hpp"
#include "kb/corpus.hpp"
#include "lint/lint.hpp"
#include "model/diff.hpp"
#include "model/system_model.hpp"
#include "safety/hazards.hpp"
#include "search/association.hpp"
#include "synth/corpus_gen.hpp"
#include "synth/scada.hpp"

namespace cybok {
namespace {

// -- fixtures ----------------------------------------------------------------

/// Association map with `vectors` stub matches per listed component; the
/// first match carries `cvss` as its severity (rest unscored).
search::AssociationMap
stub_map(const std::vector<std::tuple<std::string, std::size_t, double>>& rows) {
    search::AssociationMap map;
    for (const auto& [name, vectors, cvss] : rows) {
        search::ComponentAssociation ca;
        ca.component = name;
        search::AttributeAssociation aa;
        aa.attribute_name = "type";
        aa.attribute_value = "stub";
        for (std::size_t i = 0; i < vectors; ++i) {
            search::Match match;
            match.cls = search::VectorClass::Weakness;
            match.id = "CWE-" + std::to_string(100 + i);
            match.title = "stub weakness";
            match.severity = i == 0 ? cvss : -1.0;
            aa.matches.push_back(std::move(match));
        }
        ca.attributes.push_back(std::move(aa));
        map.components.push_back(std::move(ca));
    }
    return map;
}

/// A hazard model with hazards H-1..H-n and one UCA per (controller,
/// hazard-list) pair.
safety::HazardModel
hazards_on(const std::vector<std::pair<std::string, std::vector<std::string>>>& ucas,
           std::size_t hazard_count = 1) {
    safety::HazardModel hz;
    hz.add(safety::Loss{"L-1", "loss of process"});
    for (std::size_t i = 1; i <= hazard_count; ++i)
        hz.add(safety::Hazard{"H-" + std::to_string(i), "hazardous state", {"L-1"}});
    std::size_t n = 0;
    for (const auto& [controller, ids] : ucas) {
        safety::UnsafeControlAction uca;
        uca.id = "UCA-" + std::to_string(++n);
        uca.controller = controller;
        uca.action = "actuate";
        uca.type = safety::UcaType::Providing;
        uca.context = "while process is active";
        uca.hazards = ids;
        hz.add(uca);
    }
    return hz;
}

/// A -> B -> C chain; A is the external entry. A and B carry one vector
/// each, C carries none (so compromise dies at C).
model::SystemModel chain_model() {
    model::SystemModel m("chain", "three-component chain");
    const auto a = m.add_component("A", model::ComponentType::Compute);
    const auto b = m.add_component("B", model::ComponentType::Network);
    const auto c = m.add_component("C", model::ComponentType::Controller);
    m.component(a).external_facing = true;
    m.connect(a, b, "a-b");
    m.connect(b, c, "b-c");
    return m;
}

search::AssociationMap chain_map() {
    return stub_map({{"A", 1, -1.0}, {"B", 1, -1.0}});
}

/// Diamond: Entry -> {Left, Right} -> Mid -> Ctl. Mid is the unique
/// articulation point / min cut between the entry and the controller.
model::SystemModel diamond_model() {
    model::SystemModel m("diamond", "diamond with a unique chokepoint");
    const auto entry = m.add_component("Entry", model::ComponentType::Compute);
    const auto left = m.add_component("Left", model::ComponentType::Network);
    const auto right = m.add_component("Right", model::ComponentType::Network);
    const auto mid = m.add_component("Mid", model::ComponentType::Compute);
    const auto ctl = m.add_component("Ctl", model::ComponentType::Controller);
    m.component(entry).external_facing = true;
    m.connect(entry, left, "e-l");
    m.connect(entry, right, "e-r");
    m.connect(left, mid, "l-m");
    m.connect(right, mid, "r-m");
    m.connect(mid, ctl, "m-c");
    return m;
}

search::AssociationMap diamond_map() {
    return stub_map({{"Entry", 2, 7.5},
                     {"Left", 1, -1.0},
                     {"Right", 1, -1.0},
                     {"Mid", 3, 9.8},
                     {"Ctl", 1, 6.0}});
}

// -- permeability ------------------------------------------------------------

TEST(FlowPermeability, ZeroWithoutEvidence) {
    EXPECT_EQ(flow::permeability(0, -1.0), 0.0);
    EXPECT_EQ(flow::permeability(0, 10.0), 0.0);
    flow::FlowOptions opts;
    opts.min_vectors_per_hop = 3;
    EXPECT_EQ(flow::permeability(2, 9.0, opts), 0.0);
    EXPECT_GT(flow::permeability(3, 9.0, opts), 0.0);
}

TEST(FlowPermeability, MonotoneInVectorsAndSeverity) {
    const double one = flow::permeability(1, -1.0);
    const double four = flow::permeability(4, -1.0);
    const double many = flow::permeability(1000, -1.0);
    EXPECT_GT(one, 0.0);
    EXPECT_GT(four, one);
    EXPECT_GE(many, four);
    EXPECT_GT(flow::permeability(1, 9.8), flow::permeability(1, 2.0));
    EXPECT_GT(flow::permeability(1, 2.0), flow::permeability(1, -1.0));
}

TEST(FlowPermeability, ClampedToUnitInterval) {
    flow::FlowOptions opts;
    opts.base_permeability = 0.9;
    opts.vector_weight = 0.9;
    opts.severity_weight = 0.9;
    EXPECT_EQ(flow::permeability(1u << 20, 10.0, opts), 1.0);
    // An out-of-range CVSS is clamped, not extrapolated.
    EXPECT_LE(flow::permeability(1, 99.0), 1.0);
}

TEST(FlowPermeability, MatchesDocumentedFormula) {
    const flow::FlowOptions opts;
    const double expected = opts.base_permeability +
                            opts.vector_weight * (std::log2(1.0 + 4.0) / 6.0) +
                            opts.severity_weight * (7.0 / 10.0);
    EXPECT_NEAR(flow::permeability(4, 7.0), expected, 1e-12);
}

// -- taint fixpoint ----------------------------------------------------------

TEST(FlowAnalyze, ChainAttenuatesPerHop) {
    const auto m = chain_model();
    const auto assoc = chain_map();
    const flow::FlowResult r = flow::analyze(m, assoc);
    ASSERT_TRUE(r.converged);
    ASSERT_EQ(r.components.size(), 3u);

    const double pa = flow::permeability(1, -1.0);
    const flow::ComponentFlow* a = r.find("A");
    const flow::ComponentFlow* b = r.find("B");
    const flow::ComponentFlow* c = r.find("C");
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    ASSERT_NE(c, nullptr);

    EXPECT_TRUE(a->entry_point);
    EXPECT_DOUBLE_EQ(a->taint, pa);
    EXPECT_EQ(a->depth, 0u);
    EXPECT_FALSE(b->entry_point);
    EXPECT_DOUBLE_EQ(b->taint, pa * pa);
    EXPECT_EQ(b->depth, 1u);
    // C has no vectors: permeability 0, compromise cannot cross into it.
    EXPECT_DOUBLE_EQ(c->permeability, 0.0);
    EXPECT_DOUBLE_EQ(c->taint, 0.0);
    EXPECT_EQ(c->depth, UINT32_MAX);
    EXPECT_EQ(r.counts.tainted, 2u);
    EXPECT_EQ(r.counts.analyses, 1u);
}

TEST(FlowAnalyze, DirectedCycleConverges) {
    model::SystemModel m("cycle", "three-node directed cycle");
    const auto a = m.add_component("A", model::ComponentType::Compute);
    const auto b = m.add_component("B", model::ComponentType::Compute);
    const auto c = m.add_component("C", model::ComponentType::Compute);
    m.component(a).external_facing = true;
    m.connect(a, b, "a-b");
    m.connect(b, c, "b-c");
    m.connect(c, a, "c-a");
    const auto assoc = stub_map({{"A", 1, -1.0}, {"B", 1, -1.0}, {"C", 1, -1.0}});

    const flow::FlowResult r = flow::analyze(m, assoc);
    ASSERT_TRUE(r.converged);
    const double p = flow::permeability(1, -1.0);
    // Going around the loop only attenuates: the fixpoint is the max over
    // simple paths, and A's own entry value dominates any value returning
    // through C.
    EXPECT_DOUBLE_EQ(r.find("A")->taint, p);
    EXPECT_DOUBLE_EQ(r.find("B")->taint, p * p);
    EXPECT_DOUBLE_EQ(r.find("C")->taint, p * p * p);
}

TEST(FlowAnalyze, SelfLoopIsInert) {
    model::SystemModel m("selfloop", "entry with a self loop");
    const auto a = m.add_component("A", model::ComponentType::Compute);
    const auto b = m.add_component("B", model::ComponentType::Compute);
    m.component(a).external_facing = true;
    m.connect(a, a, "loopback");
    m.connect(a, b, "a-b");
    const auto assoc = stub_map({{"A", 1, -1.0}, {"B", 1, -1.0}});

    const flow::FlowResult r = flow::analyze(m, assoc);
    ASSERT_TRUE(r.converged);
    const double p = flow::permeability(1, -1.0);
    EXPECT_DOUBLE_EQ(r.find("A")->taint, p);
    EXPECT_DOUBLE_EQ(r.find("B")->taint, p * p);
}

TEST(FlowAnalyze, DisconnectedRegionStaysBottom) {
    auto m = chain_model();
    const auto island = m.add_component("Island", model::ComponentType::Sensor);
    const auto rock = m.add_component("Rock", model::ComponentType::Sensor);
    m.connect(island, rock, "island-rock");
    // The island carries vectors but is not external facing and has no
    // path from the entry: it must stay at bottom.
    auto assoc = chain_map();
    auto extra = stub_map({{"Island", 5, 9.0}});
    assoc.components.push_back(std::move(extra.components.front()));

    const flow::FlowResult r = flow::analyze(m, assoc);
    ASSERT_TRUE(r.converged);
    const flow::ComponentFlow* cf = r.find("Island");
    ASSERT_NE(cf, nullptr);
    EXPECT_GT(cf->permeability, 0.0);
    EXPECT_DOUBLE_EQ(cf->taint, 0.0);
    EXPECT_EQ(cf->depth, UINT32_MAX);
    EXPECT_FALSE(cf->entry_point);
}

TEST(FlowAnalyze, BidirectionalConnectorFlowsBothWays) {
    model::SystemModel m("bidi", "request/response pair");
    const auto a = m.add_component("A", model::ComponentType::Compute);
    const auto b = m.add_component("B", model::ComponentType::Controller);
    m.component(a).external_facing = true;
    m.connect(a, b, "req-resp", model::ChannelKind::Ethernet, /*bidirectional=*/true);
    const auto assoc = stub_map({{"A", 1, -1.0}, {"B", 1, -1.0}});
    const auto hz = hazards_on({{"A", {"H-1"}}});

    const flow::FlowResult r = flow::analyze(m, assoc, &hz);
    ASSERT_TRUE(r.converged);
    const double p = flow::permeability(1, -1.0);
    // Taint reaches B forward; the backward slice reaches B through the
    // reverse direction of the same connector (B can influence A's UCA).
    EXPECT_DOUBLE_EQ(r.find("B")->taint, p * p);
    ASSERT_EQ(r.slices.size(), 1u);
    EXPECT_EQ(r.slices[0].hazard, "H-1");
    EXPECT_EQ(r.slices[0].components, (std::vector<std::string>{"A", "B"}));
    EXPECT_TRUE(r.slices[0].tainted_reach);
}

// -- slices and chokepoints --------------------------------------------------

TEST(FlowAnalyze, BackwardSliceCoversUpstreamOfController) {
    const auto m = chain_model();
    const auto hz = hazards_on({{"C", {"H-1"}}});
    const flow::FlowResult r = flow::analyze(m, chain_map(), &hz);

    ASSERT_EQ(r.slices.size(), 1u);
    EXPECT_EQ(r.slices[0].components, (std::vector<std::string>{"A", "B", "C"}));
    // C's permeability is zero, so taint never reaches the controller.
    EXPECT_FALSE(r.slices[0].tainted_reach);
    EXPECT_TRUE(r.find("C")->hazard_linked);
    EXPECT_EQ(r.find("A")->influences, (std::vector<std::string>{"H-1"}));
    EXPECT_EQ(r.flows_total, 0u);
    EXPECT_TRUE(r.chokepoints.empty());
}

TEST(FlowAnalyze, DiamondChokepointIsTheMinCut) {
    const auto m = diamond_model();
    const auto hz = hazards_on({{"Ctl", {"H-1"}}});
    const flow::FlowResult r = flow::analyze(m, diamond_map(), &hz);
    ASSERT_TRUE(r.converged);

    EXPECT_EQ(r.flows_total, 1u); // one entry, one hazard controller, connected
    EXPECT_EQ(r.min_cut_size, 1u);
    ASSERT_FALSE(r.chokepoints.empty());
    // Mid is the unique interior cut vertex; hardening it severs the flow.
    bool mid_in_cut = false;
    for (const flow::Chokepoint& c : r.chokepoints) {
        EXPECT_GT(c.severed, 0u);
        if (c.component == "Mid") {
            mid_in_cut = c.in_min_cut;
            EXPECT_TRUE(c.articulation);
            EXPECT_EQ(c.severed, 1u);
        }
        EXPECT_NE(c.component, "Left");  // redundant path members sever nothing
        EXPECT_NE(c.component, "Right");
    }
    EXPECT_TRUE(mid_in_cut);
}

TEST(FlowAnalyze, NullHazardsYieldsTaintOnly) {
    const flow::FlowResult r = flow::analyze(diamond_model(), diamond_map(), nullptr);
    ASSERT_TRUE(r.converged);
    EXPECT_TRUE(r.slices.empty());
    EXPECT_TRUE(r.chokepoints.empty());
    EXPECT_EQ(r.flows_total, 0u);
    EXPECT_GT(r.counts.tainted, 0u);
}

TEST(FlowResult, SummaryFindAndJsonShape) {
    const auto m = diamond_model();
    const auto hz = hazards_on({{"Ctl", {"H-1"}}});
    const flow::FlowResult r = flow::analyze(m, diamond_map(), &hz);

    EXPECT_EQ(r.find("NoSuch"), nullptr);
    const std::string s = r.summary();
    EXPECT_NE(s.find("tainted"), std::string::npos);
    EXPECT_NE(s.find("chokepoint"), std::string::npos);

    const json::Value v = r.to_json();
    EXPECT_TRUE(v.contains("components"));
    EXPECT_TRUE(v.contains("slices"));
    EXPECT_TRUE(v.contains("chokepoints"));
    EXPECT_TRUE(v.contains("converged"));
    EXPECT_TRUE(v.contains("counts"));
}

// -- determinism -------------------------------------------------------------

TEST(FlowDeterminism, LintByteIdenticalAcrossThreadCounts) {
    const auto m = synth::centrifuge_model();
    // Saturating evidence everywhere: permeability clamps to 1, so taint
    // reaches the controllers undiminished and every F-rule has material.
    const auto assoc = stub_map({{"Programming WS", 64, 10.0},
                                 {"Control firewall", 64, 10.0},
                                 {"BPCS platform", 64, 10.0},
                                 {"SIS platform", 64, 10.0}});
    const auto hz =
        hazards_on({{"BPCS platform", {"H-1"}}, {"SIS platform", {"H-2"}}}, 2);

    lint::LintInput input;
    input.model = &m;
    input.hazards = &hz;
    input.associations = &assoc;

    std::string first;
    for (const std::size_t threads : {1u, 2u, 8u}) {
        lint::LintOptions opts;
        opts.threads = threads;
        const lint::LintResult r = lint::run_lint(input, opts);
        const std::string text = r.render_text();
        if (first.empty()) {
            first = text;
            // The fixture is seeded so the flow rules actually fire.
            EXPECT_NE(text.find("F00"), std::string::npos);
        } else {
            EXPECT_EQ(text, first) << "thread count " << threads
                                   << " changed lint output";
        }
    }
}

TEST(FlowDeterminism, RepeatedAnalyzeIsFingerprintStable) {
    const auto m = diamond_model();
    const auto assoc = diamond_map();
    const auto hz = hazards_on({{"Ctl", {"H-1"}}});
    const std::string fp = flow::analyze(m, assoc, &hz).fingerprint();
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(flow::analyze(m, assoc, &hz).fingerprint(), fp);
}

// -- incremental re-analysis -------------------------------------------------

TEST(FlowReanalyze, EmptyDiffReusesEveryComponent) {
    const auto m = diamond_model();
    const auto assoc = diamond_map();
    const auto hz = hazards_on({{"Ctl", {"H-1"}}});
    const flow::FlowResult full = flow::analyze(m, assoc, &hz);

    const model::ModelDiff diff = model::diff(m, m);
    const flow::FlowResult inc = flow::reanalyze(full, diff, m, assoc, &hz);
    EXPECT_EQ(inc.fingerprint(), full.fingerprint());
    EXPECT_EQ(inc.counts.incremental_analyses, 1u);
    EXPECT_EQ(inc.counts.reused_components, full.components.size());
}

TEST(FlowReanalyze, MatchesFullRecomputeAfterEachEditKind) {
    const auto hz = hazards_on({{"Ctl", {"H-1"}}});

    const auto oracle = [&hz](const model::SystemModel& before,
                              const search::AssociationMap& before_map,
                              const model::SystemModel& after,
                              const search::AssociationMap& after_map,
                              const char* what) {
        const flow::FlowResult prev = flow::analyze(before, before_map, &hz);
        const model::ModelDiff d = model::diff(before, after);
        const flow::FlowResult inc = flow::reanalyze(prev, d, after, after_map, &hz);
        const flow::FlowResult full = flow::analyze(after, after_map, &hz);
        EXPECT_EQ(inc.fingerprint(), full.fingerprint()) << "edit kind: " << what;
        EXPECT_TRUE(inc.converged) << "edit kind: " << what;
    };

    // (1) add a component + connector feeding the chokepoint
    {
        const auto before = diamond_model();
        auto after = diamond_model();
        const auto extra = after.add_component("Extra", model::ComponentType::Compute);
        after.connect(*after.find_component("Entry"), extra, "e-x");
        after.connect(extra, *after.find_component("Mid"), "x-m");
        auto map = diamond_map();
        auto more = stub_map({{"Extra", 2, 5.0}});
        map.components.push_back(std::move(more.components.front()));
        oracle(before, diamond_map(), after, map, "add component+connectors");
    }
    // (2) remove a component (kills the Left branch)
    {
        const auto before = diamond_model();
        auto after = diamond_model();
        after.remove_component(*after.find_component("Left"));
        oracle(before, diamond_map(), after, diamond_map(), "remove component");
    }
    // (3) add a redundant connector around the chokepoint
    {
        const auto before = diamond_model();
        auto after = diamond_model();
        after.connect(*after.find_component("Left"), *after.find_component("Ctl"),
                      "bypass");
        oracle(before, diamond_map(), after, diamond_map(), "add connector");
    }
    // (4) attribute-only edit (changes the diff, not the flow facts)
    {
        const auto before = diamond_model();
        auto after = diamond_model();
        model::Attribute attr;
        attr.name = "firmware";
        attr.value = "v2";
        after.set_attribute(*after.find_component("Mid"), attr);
        oracle(before, diamond_map(), after, diamond_map(), "attribute edit");
    }
    // (5) association drift with no structural change: Mid loses all its
    //     vectors, so taint downstream of it must collapse.
    {
        const auto m = diamond_model();
        const auto drifted = stub_map({{"Entry", 2, 7.5},
                                       {"Left", 1, -1.0},
                                       {"Right", 1, -1.0},
                                       {"Ctl", 1, 6.0}});
        oracle(m, diamond_map(), m, drifted, "association drift");
        const flow::FlowResult full = flow::analyze(m, drifted, &hz);
        EXPECT_DOUBLE_EQ(full.find("Mid")->taint, 0.0);
        EXPECT_DOUBLE_EQ(full.find("Ctl")->taint, 0.0);
    }
    // (6) external-facing flip: Entry stops being an entry point.
    {
        const auto before = diamond_model();
        auto after = diamond_model();
        after.component(*after.find_component("Entry")).external_facing = false;
        oracle(before, diamond_map(), after, diamond_map(), "entry flip");
    }
}

TEST(FlowReanalyze, HazardUniverseChangeFallsBackToFull) {
    const auto m = diamond_model();
    const auto assoc = diamond_map();
    const auto hz1 = hazards_on({{"Ctl", {"H-1"}}}, 1);
    const auto hz2 = hazards_on({{"Ctl", {"H-1"}}, {"Mid", {"H-2"}}}, 2);

    const flow::FlowResult prev = flow::analyze(m, assoc, &hz1);
    const model::ModelDiff d = model::diff(m, m);
    const flow::FlowResult inc = flow::reanalyze(prev, d, m, assoc, &hz2);
    const flow::FlowResult full = flow::analyze(m, assoc, &hz2);
    EXPECT_EQ(inc.fingerprint(), full.fingerprint());
    // The bit universe changed, so this must have run as a full analysis.
    EXPECT_EQ(inc.counts.analyses, 1u);
    EXPECT_EQ(inc.counts.incremental_analyses, 0u);
    EXPECT_EQ(inc.slices.size(), 2u);
}

// -- session integration -----------------------------------------------------

TEST(FlowSession, CommitLoopMatchesFreshSession) {
    const kb::Corpus corpus = synth::generate_corpus(synth::CorpusProfile::scaled(0.1, 99));
    auto m = synth::centrifuge_model();
    safety::HazardModel hz = hazards_on({{"BPCS platform", {"H-1"}}}, 1);

    core::AnalysisSession session(m, corpus);
    session.set_hazards(hz);
    const flow::FlowResult first = session.flow();
    EXPECT_EQ(first.counts.analyses, 1u);

    auto candidate = session.model();
    const auto extra = candidate.add_component("Historian", model::ComponentType::Compute);
    const auto bpcs = candidate.find_component("BPCS platform");
    ASSERT_TRUE(bpcs.has_value());
    candidate.connect(*bpcs, extra, "trend-data");
    (void)session.commit(std::move(candidate));

    const flow::FlowResult& second = session.flow();
    EXPECT_EQ(second.counts.incremental_analyses, 1u);

    core::AnalysisSession fresh(session.model(), corpus);
    fresh.set_hazards(hz);
    EXPECT_EQ(second.fingerprint(), fresh.flow().fingerprint());

    // The counters surface through the session metrics rollup.
    const search::AssocMetrics metrics = session.assoc_metrics();
    EXPECT_TRUE(metrics.flow.ran());
    EXPECT_GE(metrics.flow.analyses + metrics.flow.incremental_analyses, 2u);
}

TEST(FlowSession, SetHazardsInvalidatesIncrementalBaseline) {
    const kb::Corpus corpus = synth::generate_corpus(synth::CorpusProfile::scaled(0.1, 99));
    core::AnalysisSession session(diamond_model(), corpus);
    session.set_hazards(hazards_on({{"Ctl", {"H-1"}}}, 1));
    (void)session.flow();
    // Replacing the hazard model must not reuse slices from the old one.
    session.set_hazards(hazards_on({{"Ctl", {"H-1"}}, {"Mid", {"H-2"}}}, 2));
    EXPECT_EQ(session.flow().slices.size(), 2u);
}

} // namespace
} // namespace cybok
