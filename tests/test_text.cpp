#include <gtest/gtest.h>

#include "text/tokenize.hpp"

using namespace cybok::text;

TEST(Tokenize, SplitsOnNonAlphanumerics) {
    auto t = tokenize("NI cRIO-9063 (rev. B)");
    ASSERT_EQ(t.size(), 5u);
    EXPECT_EQ(t[0], "ni");
    EXPECT_EQ(t[1], "crio");
    EXPECT_EQ(t[2], "9063");
    EXPECT_EQ(t[3], "rev");
    EXPECT_EQ(t[4], "b");
}

TEST(Tokenize, LowercasesEverything) {
    auto t = tokenize("Windows 7");
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t[0], "windows");
    EXPECT_EQ(t[1], "7");
}

TEST(Tokenize, EmptyAndPunctuationOnly) {
    EXPECT_TRUE(tokenize("").empty());
    EXPECT_TRUE(tokenize("--- ... !!!").empty());
}

TEST(Stopwords, CommonWordsAreStopwords) {
    EXPECT_TRUE(is_stopword("the"));
    EXPECT_TRUE(is_stopword("allows"));
    EXPECT_TRUE(is_stopword("via"));
    EXPECT_FALSE(is_stopword("linux"));
    EXPECT_FALSE(is_stopword("injection"));
}

TEST(Stopwords, RemovalPreservesOrder) {
    std::vector<std::string> t{"the", "attacker", "allows", "injection", "via", "modbus"};
    remove_stopwords(t);
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t[0], "injection");
    EXPECT_EQ(t[1], "modbus");
}

// Porter stemmer reference pairs (Porter 1980 examples).
struct StemCase {
    const char* input;
    const char* expected;
};

class PorterStem : public testing::TestWithParam<StemCase> {};

TEST_P(PorterStem, MatchesReference) {
    EXPECT_EQ(stem(GetParam().input), GetParam().expected) << GetParam().input;
}

INSTANTIATE_TEST_SUITE_P(
    Reference, PorterStem,
    testing::Values(StemCase{"caresses", "caress"}, StemCase{"ponies", "poni"},
                    StemCase{"caress", "caress"}, StemCase{"cats", "cat"},
                    StemCase{"feed", "feed"}, StemCase{"agreed", "agre"},
                    StemCase{"plastered", "plaster"}, StemCase{"bled", "bled"},
                    StemCase{"motoring", "motor"}, StemCase{"sing", "sing"},
                    StemCase{"conflated", "conflat"}, StemCase{"troubled", "troubl"},
                    StemCase{"sized", "size"}, StemCase{"hopping", "hop"},
                    StemCase{"tanned", "tan"}, StemCase{"falling", "fall"},
                    StemCase{"hissing", "hiss"}, StemCase{"fizzed", "fizz"},
                    StemCase{"failing", "fail"}, StemCase{"filing", "file"},
                    StemCase{"happy", "happi"}, StemCase{"sky", "sky"},
                    StemCase{"relational", "relat"}, StemCase{"conditional", "condit"},
                    StemCase{"rational", "ration"}, StemCase{"valency", "valenc"},
                    StemCase{"digitizer", "digit"}, StemCase{"operator", "oper"},
                    StemCase{"feudalism", "feudal"}, StemCase{"decisiveness", "decis"},
                    StemCase{"hopefulness", "hope"}, StemCase{"formality", "formal"},
                    StemCase{"sensitivity", "sensit"}, StemCase{"triplicate", "triplic"},
                    StemCase{"formative", "form"}, StemCase{"formalize", "formal"},
                    StemCase{"electricity", "electr"}, StemCase{"hopeful", "hope"},
                    StemCase{"goodness", "good"}, StemCase{"revival", "reviv"},
                    StemCase{"allowance", "allow"}, StemCase{"inference", "infer"},
                    StemCase{"airliner", "airlin"}, StemCase{"adjustment", "adjust"},
                    StemCase{"dependent", "depend"}, StemCase{"adoption", "adopt"},
                    StemCase{"homologous", "homolog"}, StemCase{"effective", "effect"},
                    StemCase{"probate", "probat"}, StemCase{"rate", "rate"},
                    StemCase{"cease", "ceas"}, StemCase{"controller", "control"},
                    StemCase{"roll", "roll"}));

TEST(Stemmer, ShortWordsUntouched) {
    EXPECT_EQ(stem("a"), "a");
    EXPECT_EQ(stem("ab"), "ab");
    EXPECT_EQ(stem("os"), "os");
}

TEST(Stemmer, DomainTokensStable) {
    // Both query and document sides must stem identically; these anchor
    // the Table 1 calibration.
    EXPECT_EQ(stem("linux"), "linux");
    EXPECT_EQ(stem("windows"), stem("windows"));
    EXPECT_EQ(stem("modbus"), stem("modbus"));
    EXPECT_EQ(stem("9063"), "9063");
}

TEST(Analyze, FullPipeline) {
    auto t = analyze("The attacker allows command injection via the MODBUS interface");
    // "the", "allows", "via", "attacker" are stopwords.
    ASSERT_EQ(t.size(), 4u);
    EXPECT_EQ(t[0], stem("command"));
    EXPECT_EQ(t[1], stem("injection"));
    EXPECT_EQ(t[2], stem("modbus"));
    EXPECT_EQ(t[3], stem("interface"));
}

TEST(Analyze, WithoutStemming) {
    auto t = analyze("injections", false);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0], "injections");
}

TEST(Ngrams, BigramsJoinWithUnderscore) {
    std::vector<std::string> t{"command", "injection", "attack"};
    auto bi = ngrams(t, 2);
    ASSERT_EQ(bi.size(), 2u);
    EXPECT_EQ(bi[0], "command_injection");
    EXPECT_EQ(bi[1], "injection_attack");
}

TEST(Ngrams, EdgeCases) {
    std::vector<std::string> t{"one", "two"};
    EXPECT_TRUE(ngrams(t, 0).empty());
    EXPECT_TRUE(ngrams(t, 3).empty());
    EXPECT_EQ(ngrams(t, 1).size(), 2u);
    EXPECT_EQ(ngrams(t, 2).size(), 1u);
}
