#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/monitoring.hpp"
#include "synth/corpus_gen.hpp"
#include "synth/scada.hpp"

using namespace cybok;
using namespace cybok::analysis;

namespace {

kb::Vulnerability fresh_cve(std::uint32_t number, const char* vendor, const char* product,
                            const char* cvss = "") {
    kb::Vulnerability v;
    v.id = kb::VulnerabilityId{2021, number};
    v.description = "A fresh flaw in the affected service.";
    v.platforms = {kb::Platform{kb::PlatformPart::OperatingSystem, vendor, product, ""}};
    v.weaknesses = {kb::WeaknessId{78}};
    v.cvss_vector = cvss;
    return v;
}

struct Fixture {
    kb::Corpus baseline_corpus = synth::generate_corpus(synth::CorpusProfile::scaled(0.1, 99));
    model::SystemModel deployed = synth::centrifuge_model();
    search::SearchEngine baseline_engine{baseline_corpus};
    search::AssociationMap baseline = search::associate(deployed, baseline_engine);
};
Fixture& fixture() {
    static Fixture f;
    return f;
}

} // namespace

TEST(CorpusDelta, DetectsNewRecordsOfEveryFamily) {
    Fixture& f = fixture();
    kb::Corpus fresh = synth::generate_corpus(synth::CorpusProfile::scaled(0.1, 99));
    fresh.add(fresh_cve(1, "ni", "rt_linux"));
    kb::Weakness w;
    w.id = kb::WeaknessId{4242};
    w.name = "Fresh weakness";
    fresh.add(w);
    kb::AttackPattern p;
    p.id = kb::AttackPatternId{4242};
    p.name = "Fresh pattern";
    fresh.add(p);
    fresh.reindex();

    CorpusDelta delta = corpus_delta(f.baseline_corpus, fresh);
    ASSERT_EQ(delta.new_vulnerabilities.size(), 1u);
    EXPECT_EQ(delta.new_vulnerabilities[0], "CVE-2021-1");
    ASSERT_EQ(delta.new_weaknesses.size(), 1u);
    EXPECT_EQ(delta.new_weaknesses[0], "CWE-4242");
    ASSERT_EQ(delta.new_patterns.size(), 1u);
    EXPECT_FALSE(delta.empty());
}

TEST(CorpusDelta, IdenticalSnapshotsAreEmpty) {
    Fixture& f = fixture();
    kb::Corpus same = synth::generate_corpus(synth::CorpusProfile::scaled(0.1, 99));
    EXPECT_TRUE(corpus_delta(f.baseline_corpus, same).empty());
}

TEST(Reevaluate, SurfacesOnlyNewMatches) {
    Fixture& f = fixture();
    kb::Corpus fresh = synth::generate_corpus(synth::CorpusProfile::scaled(0.1, 99));
    fresh.add(fresh_cve(10, "ni", "rt_linux", "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"));
    fresh.add(fresh_cve(11, "acme", "unrelated"));
    fresh.reindex();
    search::SearchEngine fresh_engine(fresh);

    ReevaluationResult result =
        reevaluate(f.deployed, f.baseline, f.baseline_corpus, fresh_engine);

    EXPECT_EQ(result.delta.new_vulnerabilities.size(), 2u);
    // Only the rt_linux advisory matches the deployed system — on both
    // controllers (BPCS and SIS run NI RT Linux).
    ASSERT_EQ(result.new_exposures.size(), 2u);
    for (const NewExposure& e : result.new_exposures) {
        EXPECT_EQ(e.match.id, "CVE-2021-10");
        EXPECT_EQ(e.attribute, "os");
        EXPECT_DOUBLE_EQ(e.match.severity, 9.8);
    }
    auto affected = result.affected_components();
    ASSERT_EQ(affected.size(), 2u);
    EXPECT_EQ(affected[0], "BPCS platform");
    EXPECT_EQ(affected[1], "SIS platform");
}

TEST(Reevaluate, NoNewsIsNoExposure) {
    Fixture& f = fixture();
    kb::Corpus same = synth::generate_corpus(synth::CorpusProfile::scaled(0.1, 99));
    same.reindex();
    search::SearchEngine engine(same);
    ReevaluationResult result = reevaluate(f.deployed, f.baseline, f.baseline_corpus, engine);
    EXPECT_TRUE(result.delta.empty());
    EXPECT_TRUE(result.new_exposures.empty());
    EXPECT_TRUE(result.affected_components().empty());
}

TEST(Reevaluate, FilterChainApplies) {
    Fixture& f = fixture();
    kb::Corpus fresh = synth::generate_corpus(synth::CorpusProfile::scaled(0.1, 99));
    // Low-severity advisory on the deployed OS.
    fresh.add(fresh_cve(20, "ni", "rt_linux", "CVSS:3.1/AV:P/AC:H/PR:H/UI:R/S:U/C:L/I:N/A:N"));
    fresh.reindex();
    search::SearchEngine engine(fresh);
    search::FilterChain chain;
    chain.add(search::min_severity(cvss::Severity::High));
    ReevaluationResult result =
        reevaluate(f.deployed, f.baseline, f.baseline_corpus, engine, &chain);
    // The 1.6-severity advisory is filtered out.
    EXPECT_TRUE(result.new_exposures.empty());
    EXPECT_FALSE(result.delta.empty());
}
