#include <gtest/gtest.h>

#include "cvss/cvss2.hpp"
#include "kb/import_nvd.hpp"
#include "synth/corpus_gen.hpp"

using namespace cybok;
using namespace cybok::kb;

namespace {
constexpr const char* kFeed = R"({
  "CVE_data_type": "CVE",
  "CVE_Items": [
    {
      "cve": {
        "CVE_data_meta": {"ID": "CVE-2019-10953"},
        "problemtype": {"problemtype_data": [
          {"description": [{"lang": "en", "value": "CWE-78"},
                           {"lang": "en", "value": "NVD-CWE-noinfo"}]}]},
        "description": {"description_data": [
          {"lang": "de", "value": "nicht relevant"},
          {"lang": "en", "value": "A command injection in the controller firmware."}]}
      },
      "configurations": {"nodes": [
        {"operator": "OR", "cpe_match": [
          {"vulnerable": true, "cpe23Uri": "cpe:2.3:o:ni:rt_linux:8.5:*:*:*:*:*:*:*"},
          {"vulnerable": false, "cpe23Uri": "cpe:2.3:h:ni:crio_9063:*:*:*:*:*:*:*:*"}],
         "children": [
          {"operator": "OR", "cpe_match": [
            {"vulnerable": true, "cpe23Uri": "cpe:2.3:a:ni:labview:2019:*:*:*:*:*:*:*"}]}]}]},
      "impact": {"baseMetricV3": {"cvssV3": {
        "vectorString": "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"}}}
    },
    {
      "cve": {
        "CVE_data_meta": {"ID": "CVE-2008-1234"},
        "description": {"description_data": [
          {"lang": "en", "value": "An old flaw scored with v2 only."}]}
      },
      "impact": {"baseMetricV2": {"cvssV2": {"vectorString": "AV:N/AC:L/Au:N/C:P/I:P/A:P"}}}
    },
    {
      "cve": {
        "CVE_data_meta": {"ID": "CVE-2020-9999"},
        "description": {"description_data": [
          {"lang": "en", "value": "** REJECT ** withdrawn by the assigning CNA."}]}
      }
    }
  ]
})";
} // namespace

TEST(NvdImport, ParsesFeedSubset) {
    NvdImportStats stats;
    std::vector<Vulnerability> vulns = import_nvd_feed_text(kFeed, &stats);

    EXPECT_EQ(stats.records, 3u);
    EXPECT_EQ(stats.imported, 2u);
    EXPECT_EQ(stats.skipped_rejected, 1u);
    EXPECT_EQ(stats.without_cwe, 1u);       // the 2008 record
    EXPECT_EQ(stats.without_platforms, 1u); // the 2008 record
    EXPECT_EQ(stats.without_cvss, 0u);

    ASSERT_EQ(vulns.size(), 2u);
    const Vulnerability& v = vulns[0];
    EXPECT_EQ(v.id.to_string(), "CVE-2019-10953");
    EXPECT_NE(v.description.find("command injection"), std::string::npos);
    ASSERT_EQ(v.weaknesses.size(), 1u); // "NVD-CWE-noinfo" skipped
    EXPECT_EQ(v.weaknesses[0].value, 78u);
    // Only vulnerable bindings, including nested children.
    ASSERT_EQ(v.platforms.size(), 2u);
    EXPECT_EQ(v.platforms[0].product, "rt_linux");
    EXPECT_EQ(v.platforms[0].version, "8.5");
    EXPECT_EQ(v.platforms[1].product, "labview");
    EXPECT_TRUE(v.cvss_vector.starts_with("CVSS:3.1/"));
}

TEST(NvdImport, V2OnlyRecordKeepsV2Vector) {
    std::vector<Vulnerability> vulns = import_nvd_feed_text(kFeed);
    ASSERT_EQ(vulns.size(), 2u);
    EXPECT_EQ(vulns[1].cvss_vector, "AV:N/AC:L/Au:N/C:P/I:P/A:P");
    // score_any handles it downstream.
    EXPECT_DOUBLE_EQ(*cvss::score_any(vulns[1].cvss_vector), 7.5);
}

TEST(NvdImport, RejectsNonFeedDocuments) {
    EXPECT_THROW(import_nvd_feed_text("{}"), cybok::ValidationError);
    EXPECT_THROW(import_nvd_feed_text("[]"), cybok::ValidationError);
    EXPECT_THROW(import_nvd_feed_text("not json"), cybok::ParseError);
}

TEST(NvdImport, CveIdParsing) {
    VulnerabilityId id = parse_cve_id("CVE-2019-10953");
    EXPECT_EQ(id.year, 2019u);
    EXPECT_EQ(id.number, 10953u);
    EXPECT_THROW((void)parse_cve_id("CWE-78"), cybok::ParseError);
    EXPECT_THROW((void)parse_cve_id("CVE-abc-1"), cybok::ParseError);
    EXPECT_THROW((void)parse_cve_id("CVE-2019"), cybok::ParseError);
}

TEST(NvdImport, ExportImportRoundTrip) {
    // Generate a small corpus, export its vulnerabilities as an NVD feed,
    // re-import, and verify the security-relevant content survives.
    kb::Corpus corpus = synth::generate_corpus(synth::CorpusProfile::scaled(0.02, 3));
    std::vector<Vulnerability> original(corpus.vulnerabilities().begin(),
                                        corpus.vulnerabilities().end());
    json::Value feed = export_nvd_feed(original);
    NvdImportStats stats;
    std::vector<Vulnerability> reimported = import_nvd_feed(feed, &stats);

    ASSERT_EQ(reimported.size(), original.size());
    EXPECT_EQ(stats.skipped_rejected, 0u);
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(reimported[i].id, original[i].id);
        EXPECT_EQ(reimported[i].description, original[i].description);
        EXPECT_EQ(reimported[i].weaknesses, original[i].weaknesses);
        EXPECT_EQ(reimported[i].cvss_vector, original[i].cvss_vector);
        ASSERT_EQ(reimported[i].platforms.size(), original[i].platforms.size());
        for (std::size_t j = 0; j < original[i].platforms.size(); ++j)
            EXPECT_EQ(reimported[i].platforms[j], original[i].platforms[j]);
    }
}

TEST(NvdImport, ImportedFeedWorksInCorpus) {
    // A corpus whose vulnerabilities came through the NVD path behaves
    // identically for platform lookup.
    std::vector<Vulnerability> vulns = import_nvd_feed_text(kFeed);
    kb::Corpus corpus;
    for (Vulnerability& v : vulns) corpus.add(std::move(v));
    corpus.reindex();
    Platform family{PlatformPart::OperatingSystem, "ni", "rt_linux", ""};
    EXPECT_EQ(corpus.vulnerabilities_for(family).size(), 1u);
}
