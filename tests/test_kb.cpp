#include <gtest/gtest.h>

#include "kb/corpus.hpp"
#include "kb/platform.hpp"
#include "kb/serialize.hpp"

using namespace cybok::kb;

// ---------------------------------------------------------------- platform

TEST(Platform, UriRendering) {
    Platform p{PlatformPart::OperatingSystem, "ni", "rt_linux", ""};
    EXPECT_EQ(p.uri(), "cpe:2.3:o:ni:rt_linux:*");
    Platform q{PlatformPart::Application, "ni", "labview", "2019"};
    EXPECT_EQ(q.uri(), "cpe:2.3:a:ni:labview:2019");
}

TEST(Platform, ParseRoundTrip) {
    for (const Platform& p :
         {Platform{PlatformPart::Hardware, "cisco", "asa", ""},
          Platform{PlatformPart::OperatingSystem, "microsoft", "windows_7", "sp1"},
          Platform{PlatformPart::Application, "", "", ""}}) {
        EXPECT_EQ(Platform::parse(p.uri()), p) << p.uri();
    }
}

TEST(Platform, ParseAcceptsFullCpe23Names) {
    Platform p = Platform::parse("cpe:2.3:o:ni:rt_linux:8.5:*:*:*:*:*:*:*");
    EXPECT_EQ(p.part, PlatformPart::OperatingSystem);
    EXPECT_EQ(p.vendor, "ni");
    EXPECT_EQ(p.product, "rt_linux");
    EXPECT_EQ(p.version, "8.5");
}

TEST(Platform, ParseRejectsGarbage) {
    EXPECT_THROW(Platform::parse("not-a-cpe"), cybok::ParseError);
    EXPECT_THROW(Platform::parse("cpe:2.2:a:x:y"), cybok::ParseError);
    EXPECT_THROW(Platform::parse("cpe:2.3:q:x:y"), cybok::ParseError);
    EXPECT_THROW(Platform::parse("cpe:2.3:ab:x:y"), cybok::ParseError);
}

TEST(Platform, MatchingRules) {
    Platform family{PlatformPart::OperatingSystem, "ni", "rt_linux", ""};
    Platform v85{PlatformPart::OperatingSystem, "ni", "rt_linux", "8.5"};
    Platform v86{PlatformPart::OperatingSystem, "ni", "rt_linux", "8.6"};
    Platform other{PlatformPart::OperatingSystem, "ni", "rt_linux_ce", "8.5"};
    Platform hw{PlatformPart::Hardware, "ni", "rt_linux", "8.5"};

    EXPECT_TRUE(platform_matches(family, v85));  // ANY version matches all
    EXPECT_TRUE(platform_matches(v85, v85));
    EXPECT_FALSE(platform_matches(v85, v86));
    EXPECT_FALSE(platform_matches(family, other)); // product differs
    EXPECT_FALSE(platform_matches(family, hw));    // part differs
    EXPECT_TRUE(platform_matches(v85, family));    // target ANY accepts any version
}

TEST(Platform, NormalizeProductToken) {
    EXPECT_EQ(normalize_product_token("NI RT Linux OS"), "ni_rt_linux_os");
    EXPECT_EQ(normalize_product_token("  Cisco -- ASA  "), "cisco_asa");
    EXPECT_EQ(normalize_product_token("cRIO-9063"), "crio_9063");
    EXPECT_EQ(normalize_product_token(""), "");
}

// ----------------------------------------------------------------- corpus

namespace {
Corpus small_corpus() {
    Corpus c;
    AttackPattern p1;
    p1.id = AttackPatternId{88};
    p1.name = "Command Injection";
    p1.related_weaknesses = {WeaknessId{78}, WeaknessId{20}};
    c.add(p1);
    AttackPattern p2;
    p2.id = AttackPatternId{125};
    p2.name = "Flooding";
    p2.related_weaknesses = {WeaknessId{400}};
    c.add(p2);

    for (std::uint32_t wid : {78u, 20u, 400u}) {
        Weakness w;
        w.id = WeaknessId{wid};
        w.name = "CWE " + std::to_string(wid);
        c.add(w);
    }

    Vulnerability v1;
    v1.id = VulnerabilityId{2019, 1};
    v1.platforms = {Platform{PlatformPart::OperatingSystem, "ni", "rt_linux", "8.5"}};
    v1.weaknesses = {WeaknessId{78}};
    c.add(v1);
    Vulnerability v2;
    v2.id = VulnerabilityId{2020, 2};
    v2.platforms = {Platform{PlatformPart::OperatingSystem, "ni", "rt_linux", "8.6"},
                    Platform{PlatformPart::Application, "ni", "labview", "2019"}};
    v2.weaknesses = {WeaknessId{78}, WeaknessId{20}};
    c.add(v2);
    c.reindex();
    return c;
}
} // namespace

TEST(Corpus, IdFormatting) {
    EXPECT_EQ(AttackPatternId{88}.to_string(), "CAPEC-88");
    EXPECT_EQ(WeaknessId{78}.to_string(), "CWE-78");
    EXPECT_EQ((VulnerabilityId{2019, 10953}).to_string(), "CVE-2019-10953");
}

TEST(Corpus, FindById) {
    Corpus c = small_corpus();
    ASSERT_NE(c.find(AttackPatternId{88}), nullptr);
    EXPECT_EQ(c.find(AttackPatternId{88})->name, "Command Injection");
    EXPECT_EQ(c.find(AttackPatternId{999}), nullptr);
    ASSERT_NE(c.find(WeaknessId{78}), nullptr);
    ASSERT_NE(c.find(VulnerabilityId{2019, 1}), nullptr);
    EXPECT_EQ(c.find(VulnerabilityId{2019, 99}), nullptr);
}

TEST(Corpus, ReverseCrossReferencesDerived) {
    Corpus c = small_corpus();
    auto patterns = c.patterns_for(WeaknessId{78});
    ASSERT_EQ(patterns.size(), 1u);
    EXPECT_EQ(patterns[0].value, 88u);
    EXPECT_TRUE(c.patterns_for(WeaknessId{999}).empty());
}

TEST(Corpus, VulnerabilitiesForPlatformFamilyAndVersion) {
    Corpus c = small_corpus();
    Platform family{PlatformPart::OperatingSystem, "ni", "rt_linux", ""};
    EXPECT_EQ(c.vulnerabilities_for(family).size(), 2u);
    Platform v85{PlatformPart::OperatingSystem, "ni", "rt_linux", "8.5"};
    EXPECT_EQ(c.vulnerabilities_for(v85).size(), 1u);
    Platform unknown{PlatformPart::OperatingSystem, "acme", "os", ""};
    EXPECT_TRUE(c.vulnerabilities_for(unknown).empty());
}

TEST(Corpus, VulnerabilitiesForWeakness) {
    Corpus c = small_corpus();
    EXPECT_EQ(c.vulnerabilities_for(WeaknessId{78}).size(), 2u);
    EXPECT_EQ(c.vulnerabilities_for(WeaknessId{20}).size(), 1u);
    EXPECT_TRUE(c.vulnerabilities_for(WeaknessId{400}).empty());
}

TEST(Corpus, KnownPlatforms) {
    Corpus c = small_corpus();
    auto platforms = c.known_platforms();
    EXPECT_EQ(platforms.size(), 2u); // rt_linux and labview product families
    for (const Platform& p : platforms) EXPECT_TRUE(p.version.empty());
}

TEST(Corpus, StatsCountLinks) {
    Corpus c = small_corpus();
    Corpus::Stats s = c.stats();
    EXPECT_EQ(s.patterns, 2u);
    EXPECT_EQ(s.weaknesses, 3u);
    EXPECT_EQ(s.vulnerabilities, 2u);
    EXPECT_EQ(s.platform_bindings, 3u);
    EXPECT_EQ(s.pattern_weakness_links, 3u);
    EXPECT_EQ(s.vulnerability_weakness_links, 3u);
}

TEST(Corpus, DuplicateIdsRejected) {
    Corpus c;
    Weakness w;
    w.id = WeaknessId{78};
    c.add(w);
    c.add(w);
    EXPECT_THROW(c.reindex(), cybok::ValidationError);
}

TEST(Corpus, CrossReferenceUseRequiresIndex) {
    Corpus c;
    Weakness w;
    w.id = WeaknessId{1};
    c.add(w);
    EXPECT_THROW((void)c.vulnerabilities_for(WeaknessId{1}), cybok::ValidationError);
    c.reindex();
    EXPECT_NO_THROW((void)c.vulnerabilities_for(WeaknessId{1}));
    // Mutation invalidates.
    c.add(Weakness{});
    EXPECT_FALSE(c.indexed());
}

// -------------------------------------------------------------- serialize

TEST(CorpusSerialize, JsonRoundTripPreservesEverything) {
    Corpus c = small_corpus();
    Corpus c2 = corpus_from_json(to_json(c));

    Corpus::Stats a = c.stats();
    Corpus::Stats b = c2.stats();
    EXPECT_EQ(a.patterns, b.patterns);
    EXPECT_EQ(a.weaknesses, b.weaknesses);
    EXPECT_EQ(a.vulnerabilities, b.vulnerabilities);
    EXPECT_EQ(a.platform_bindings, b.platform_bindings);

    const AttackPattern* p = c2.find(AttackPatternId{88});
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->name, "Command Injection");
    ASSERT_EQ(p->related_weaknesses.size(), 2u);

    const Vulnerability* v = c2.find(VulnerabilityId{2020, 2});
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->platforms.size(), 2u);
    EXPECT_EQ(v->platforms[1].product, "labview");
}

TEST(CorpusSerialize, RejectsWrongFormat) {
    EXPECT_THROW(corpus_from_json(cybok::json::parse(R"({"format":"other"})")),
                 cybok::ValidationError);
}

TEST(CorpusSerialize, FileRoundTrip) {
    std::string path = testing::TempDir() + "/cybok_corpus_test.json";
    save_corpus(path, small_corpus());
    Corpus c2 = load_corpus(path);
    EXPECT_EQ(c2.stats().vulnerabilities, 2u);
    EXPECT_TRUE(c2.indexed());
}

TEST(Corpus, RatingNames) {
    EXPECT_EQ(rating_name(Rating::VeryLow), "Very Low");
    EXPECT_EQ(rating_name(Rating::VeryHigh), "Very High");
}
