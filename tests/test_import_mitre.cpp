#include <gtest/gtest.h>

#include "kb/hierarchy.hpp"
#include "kb/import_mitre.hpp"
#include "kb/import_nvd.hpp"
#include "synth/corpus_gen.hpp"

using namespace cybok;
using namespace cybok::kb;

namespace {

constexpr const char* kCweXml = R"(<?xml version="1.0"?>
<Weakness_Catalog Name="CWE" Version="4.6">
  <Weaknesses>
    <Weakness ID="78" Name="OS Command Injection" Status="Stable">
      <Description>The product constructs an OS command using
        externally-influenced input.</Description>
      <Related_Weaknesses>
        <Related_Weakness Nature="ChildOf" CWE_ID="77"/>
        <Related_Weakness Nature="CanAlsoBe" CWE_ID="88"/>
      </Related_Weaknesses>
      <Modes_Of_Introduction>
        <Introduction><Phase>Implementation</Phase></Introduction>
        <Introduction><Phase>Design</Phase></Introduction>
      </Modes_Of_Introduction>
      <Common_Consequences>
        <Consequence><Scope>Integrity</Scope><Impact>Execute Unauthorized Commands</Impact></Consequence>
      </Common_Consequences>
      <Applicable_Platforms>
        <Language Class="Language-Independent"/>
        <Technology Name="ICS"/>
      </Applicable_Platforms>
    </Weakness>
    <Weakness ID="77" Name="Command Injection" Status="Stable">
      <Description>Improper neutralization of special elements.</Description>
    </Weakness>
    <Weakness ID="9999" Name="Old Thing" Status="Deprecated">
      <Description>Superseded.</Description>
    </Weakness>
  </Weaknesses>
</Weakness_Catalog>)";

constexpr const char* kCapecXml = R"(<?xml version="1.0"?>
<Attack_Pattern_Catalog Name="CAPEC" Version="3.7">
  <Attack_Patterns>
    <Attack_Pattern ID="88" Name="OS Command Injection" Status="Stable">
      <Description>An attacker injects commands to a command interpreter.</Description>
      <Likelihood_Of_Attack>High</Likelihood_Of_Attack>
      <Typical_Severity>Very High</Typical_Severity>
      <Prerequisites>
        <Prerequisite>User-controllable input reaches a shell.</Prerequisite>
      </Prerequisites>
      <Related_Weaknesses>
        <Related_Weakness CWE_ID="78"/>
        <Related_Weakness CWE_ID="77"/>
      </Related_Weaknesses>
      <Domains_Of_Attack>
        <Domain>Software</Domain>
      </Domains_Of_Attack>
    </Attack_Pattern>
    <Attack_Pattern ID="248" Name="Command Injection" Status="Stable">
      <Description>Parent pattern.</Description>
    </Attack_Pattern>
    <Attack_Pattern ID="1" Name="Gone" Status="Deprecated">
      <Description>Deprecated.</Description>
    </Attack_Pattern>
  </Attack_Patterns>
</Attack_Pattern_Catalog>)";

} // namespace

TEST(CweImport, ParsesCatalogSubset) {
    MitreImportStats stats;
    std::vector<Weakness> weaknesses = import_cwe_catalog_text(kCweXml, &stats);
    EXPECT_EQ(stats.records, 3u);
    EXPECT_EQ(stats.imported, 2u);
    EXPECT_EQ(stats.deprecated_skipped, 1u);

    ASSERT_EQ(weaknesses.size(), 2u);
    const Weakness& w = weaknesses[0];
    EXPECT_EQ(w.id.value, 78u);
    EXPECT_EQ(w.name, "OS Command Injection");
    EXPECT_NE(w.description.find("externally-influenced"), std::string::npos);
    EXPECT_EQ(w.parent.value, 77u); // ChildOf only, not CanAlsoBe
    ASSERT_EQ(w.modes_of_introduction.size(), 2u);
    EXPECT_EQ(w.modes_of_introduction[0], "Implementation");
    ASSERT_EQ(w.consequences.size(), 1u);
    EXPECT_EQ(w.consequences[0], "Integrity: Execute Unauthorized Commands");
    ASSERT_EQ(w.applicable_platforms.size(), 2u);
    EXPECT_EQ(w.applicable_platforms[0], "language-independent");
    EXPECT_EQ(w.applicable_platforms[1], "ics");
}

TEST(CapecImport, ParsesCatalogSubset) {
    MitreImportStats stats;
    std::vector<AttackPattern> patterns = import_capec_catalog_text(kCapecXml, &stats);
    EXPECT_EQ(stats.imported, 2u);
    EXPECT_EQ(stats.deprecated_skipped, 1u);

    const AttackPattern& p = patterns[0];
    EXPECT_EQ(p.id.value, 88u);
    EXPECT_EQ(p.likelihood, Rating::High);
    EXPECT_EQ(p.typical_severity, Rating::VeryHigh);
    ASSERT_EQ(p.prerequisites.size(), 1u);
    ASSERT_EQ(p.related_weaknesses.size(), 2u);
    EXPECT_EQ(p.related_weaknesses[0].value, 78u);
    ASSERT_EQ(p.domains.size(), 1u);
    EXPECT_EQ(p.domains[0], "software");
}

TEST(MitreImport, RejectsWrongRoots) {
    EXPECT_THROW((void)import_cwe_catalog_text("<Wrong/>"), cybok::ValidationError);
    EXPECT_THROW((void)import_capec_catalog_text("<Wrong/>"), cybok::ValidationError);
    EXPECT_THROW((void)import_cwe_catalog_text("<Weakness_Catalog/>"),
                 cybok::ValidationError);
    EXPECT_THROW((void)import_cwe_catalog_text("not xml"), cybok::ParseError);
}

TEST(MitreImport, CweExportImportRoundTrip) {
    kb::Corpus corpus = synth::generate_corpus(synth::CorpusProfile::scaled(0.02, 5));
    std::vector<Weakness> original(corpus.weaknesses().begin(), corpus.weaknesses().end());
    // related_patterns is a derived field; clear it for comparison.
    for (Weakness& w : original) w.related_patterns.clear();

    std::vector<Weakness> back = import_cwe_catalog_text(export_cwe_catalog(original));
    ASSERT_EQ(back.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(back[i].id, original[i].id);
        EXPECT_EQ(back[i].name, original[i].name);
        EXPECT_EQ(back[i].description, original[i].description);
        EXPECT_EQ(back[i].parent, original[i].parent);
        EXPECT_EQ(back[i].modes_of_introduction, original[i].modes_of_introduction);
        EXPECT_EQ(back[i].applicable_platforms, original[i].applicable_platforms);
    }
}

TEST(MitreImport, CapecExportImportRoundTrip) {
    kb::Corpus corpus = synth::generate_corpus(synth::CorpusProfile::scaled(0.02, 5));
    std::vector<AttackPattern> original(corpus.patterns().begin(), corpus.patterns().end());
    std::vector<AttackPattern> back =
        import_capec_catalog_text(export_capec_catalog(original));
    ASSERT_EQ(back.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(back[i].id, original[i].id);
        EXPECT_EQ(back[i].name, original[i].name);
        EXPECT_EQ(back[i].likelihood, original[i].likelihood);
        EXPECT_EQ(back[i].typical_severity, original[i].typical_severity);
        EXPECT_EQ(back[i].related_weaknesses, original[i].related_weaknesses);
        EXPECT_EQ(back[i].parent, original[i].parent);
    }
}

TEST(MitreImport, FullCorpusFromMitreFormats) {
    // Generate a corpus, serialize each family into its MITRE distribution
    // format, reassemble, and verify cross-references still resolve.
    kb::Corpus original = synth::generate_corpus(synth::CorpusProfile::scaled(0.02, 9));
    std::vector<Weakness> ws(original.weaknesses().begin(), original.weaknesses().end());
    std::vector<AttackPattern> ps(original.patterns().begin(), original.patterns().end());
    std::vector<Vulnerability> vs(original.vulnerabilities().begin(),
                                  original.vulnerabilities().end());

    Corpus rebuilt = corpus_from_mitre(export_cwe_catalog(ws), export_capec_catalog(ps),
                                       json::dump(export_nvd_feed(vs)));
    Corpus::Stats a = original.stats();
    Corpus::Stats b = rebuilt.stats();
    EXPECT_EQ(a.patterns, b.patterns);
    EXPECT_EQ(a.weaknesses, b.weaknesses);
    EXPECT_EQ(a.vulnerabilities, b.vulnerabilities);
    EXPECT_EQ(a.pattern_weakness_links, b.pattern_weakness_links);

    // Hierarchy still works on the rebuilt corpus.
    Hierarchy h(rebuilt);
    EXPECT_FALSE(h.weakness_roots().empty());
}
