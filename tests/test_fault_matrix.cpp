// The differential oracle harness, swept across seeds and fault matrices
// (ctest label: soak). Three oracles from the fault-injection design:
//
//   (a) kernel vs reference scorer — query_kernel() must reproduce the
//       reference query() hit for hit under every gate configuration,
//   (b) parallel vs sequential build — the frozen engine blob must be
//       byte-identical whether the sharded build succeeded or a fault
//       forced the sequential fallback, and the blob must survive a
//       freeze -> thaw -> freeze round trip unchanged,
//   (c) fault-armed session vs fault-free baseline — with an aggressive
//       probabilistic fault matrix armed over snapshot IO, cache access,
//       and recompute, the association map must stay byte-identical to
//       the clean run (degradation is transparent, never lossy),
//   (d) serve request conservation — with probabilistic faults armed over
//       the server's decode/open/swap sites, every pipelined request gets
//       exactly one response (ok or typed error, each id exactly once);
//       with the connection-killing sites armed, every request resolves
//       as a response or a connection teardown, never silence — and the
//       server survives to answer a clean probe after disarm.
//
// Each seed replays a *different* reproducible fault surface (the
// probability trigger is a pure function of seed, site, and hit index),
// so the sweep explores many distinct failure interleavings.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "flow/flow.hpp"
#include "kb/delta.hpp"
#include "safety/hazards.hpp"
#include "kb/serialize.hpp"
#include "search/association.hpp"
#include "search/engine.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "synth/corpus_gen.hpp"
#include "synth/model_gen.hpp"
#include "text/index.hpp"
#include "text/scratch.hpp"
#include "text/tokenize.hpp"
#include "util/bytes.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

using namespace cybok;

namespace {

const kb::Corpus& soak_corpus() {
    static const kb::Corpus corpus =
        synth::generate_corpus(synth::CorpusProfile::scaled(0.05, 42));
    return corpus;
}

model::SystemModel soak_model() {
    synth::ModelGenConfig cfg;
    cfg.seed = 17;
    cfg.components = 20;
    return synth::generate_model(cfg);
}

std::string fingerprint(const search::AssociationMap& map) {
    std::ostringstream out;
    out << std::hexfloat;
    for (const search::ComponentAssociation& c : map.components) {
        out << "C " << c.component << '\n';
        for (const search::AttributeAssociation& a : c.attributes) {
            out << " A " << a.attribute_name << '=' << a.attribute_value << '\n';
            for (const search::Match& m : a.matches) {
                out << "  M " << static_cast<int>(m.cls) << ' ' << m.corpus_index << ' '
                    << m.id << ' ' << m.score << ' ' << static_cast<int>(m.via) << ' '
                    << m.severity;
                for (const std::string& e : m.evidence) out << ' ' << e;
                out << '\n';
            }
        }
    }
    return out.str();
}

std::string temp_path(const std::string& name) {
    std::string p = testing::TempDir() + name;
    std::remove(p.c_str());
    return p;
}

const std::string& baseline_fingerprint() {
    static const std::string fp = [] {
        search::SearchEngine engine(soak_corpus(), {});
        search::AssocOptions opts;
        opts.threads = 4;
        search::Associator assoc(engine, opts);
        return fingerprint(assoc.associate(soak_model()));
    }();
    return fp;
}

/// The sequential-reference frozen blob every build variant must equal.
const std::string& reference_blob() {
    static const std::string blob = [] {
        search::EngineOptions opts;
        opts.build_threads = 1;
        const search::SearchEngine engine(soak_corpus(), opts);
        return search::freeze_engine(engine);
    }();
    return blob;
}

// --- oracle (a) helpers, engine-side reference semantics -----------------

text::InvertedIndex weakness_index(const kb::Corpus& corpus) {
    text::InvertedIndex index;
    for (const kb::Weakness& w : corpus.weaknesses()) {
        index.add_document();
        index.add_terms(text::analyze(w.name), 3.0f);
        index.add_terms(text::analyze(w.description));
        for (const std::string& c : w.consequences) index.add_terms(text::analyze(c));
        for (const std::string& ap : w.applicable_platforms)
            index.add_terms(text::analyze(ap));
    }
    index.finalize();
    return index;
}

std::vector<text::Hit> reference_hits(const std::vector<text::Hit>& raw,
                                      const text::InvertedIndex& index,
                                      const text::KernelOptions& opts) {
    std::vector<text::Hit> out;
    const text::Vocabulary& vocab = index.vocabulary();
    for (text::Hit h : raw) {
        // Canonical ascending term-string order (matches collect_query_terms).
        std::sort(h.matched_terms.begin(), h.matched_terms.end(),
                  [&vocab](text::TermId a, text::TermId b) {
                      return vocab.term(a) < vocab.term(b);
                  });
        h.matched_terms.erase(std::unique(h.matched_terms.begin(), h.matched_terms.end()),
                              h.matched_terms.end());
        double evidence = 0.0;
        for (text::TermId t : h.matched_terms) evidence += index.idf(t);
        if (evidence < opts.min_evidence_idf) continue;
        out.push_back(std::move(h));
    }
    if (opts.top_k > 0 && out.size() > opts.top_k) out.resize(opts.top_k);
    return out;
}

} // namespace

/// One instantiation per fault seed; 16 seeds in the sweep.
class FaultMatrixSoak : public ::testing::TestWithParam<int> {};

// --------------------------------------------------- (a) kernel oracle

TEST_P(FaultMatrixSoak, KernelMatchesReferenceScorer) {
    static const text::InvertedIndex index = weakness_index(soak_corpus());
    const text::Bm25Scorer scorer(index);
    text::QueryScratch scratch;

    Rng rng(static_cast<std::uint64_t>(1000 + GetParam()));
    const text::KernelOptions configs[] = {
        {0, 0.0, true}, {0, 2.0, true}, {5, 2.0, true}, {1, 0.0, false},
    };
    for (int q = 0; q < 20; ++q) {
        std::vector<std::string> tokens;
        const std::size_t len = rng.uniform(1, 9);
        for (std::size_t i = 0; i < len; ++i) {
            const auto t = static_cast<text::TermId>(rng.uniform(0, index.term_count() - 1));
            tokens.push_back(index.vocabulary().term(t));
        }
        const std::vector<text::Hit> raw = scorer.query(tokens);
        for (const text::KernelOptions& opts : configs) {
            const std::vector<text::Hit> kernel = scorer.query_kernel(tokens, scratch, opts);
            const std::vector<text::Hit> ref = reference_hits(raw, index, opts);
            ASSERT_EQ(kernel.size(), ref.size());
            for (std::size_t i = 0; i < kernel.size(); ++i) {
                EXPECT_EQ(kernel[i].doc, ref[i].doc);
                EXPECT_NEAR(kernel[i].score, ref[i].score, 1e-9);
                EXPECT_EQ(kernel[i].matched_terms, ref[i].matched_terms);
            }
        }
    }
}

// ------------------------------------------- (a') Block-Max WAND oracle

namespace {

/// Oracle (a') needs posting lists long enough to span many 128-doc
/// blocks — the soak corpus weakness index tops out at ~45 docs, where
/// every list is one block and Block-Max WAND has nothing to skip. Build
/// a dedicated synthetic index instead: 2000 docs over 24 mid-frequency
/// terms (multi-block lists the pruner walks) plus 24 rare high-weight
/// terms (one strong hit pushes the top-k floor above what the mid lists
/// can reach, so the kernel abandons their tails), which exercises
/// pivots, shallow seeks, deep skips, and early termination.
const text::InvertedIndex& bmw_oracle_index() {
    static const text::InvertedIndex index = [] {
        text::InvertedIndex idx;
        Rng rng(99);
        std::vector<std::string> common, rare;
        for (int t = 0; t < 24; ++t) common.push_back("common" + std::to_string(t));
        for (int t = 0; t < 24; ++t) rare.push_back("rare" + std::to_string(t));
        for (int d = 0; d < 2000; ++d) {
            idx.add_document();
            std::vector<std::string> tokens;
            const std::size_t n = rng.uniform(6, 10);
            for (std::size_t i = 0; i < n; ++i) {
                const std::string& term = common[rng.uniform(0, common.size() - 1)];
                const std::size_t tf = rng.uniform(1, 4);
                for (std::size_t r = 0; r < tf; ++r) tokens.push_back(term);
            }
            idx.add_terms(tokens);
            if (rng.chance(0.08)) idx.add_terms({rare[rng.uniform(0, rare.size() - 1)]}, 8.0f);
        }
        idx.finalize();
        return idx;
    }();
    return index;
}

} // namespace

TEST_P(FaultMatrixSoak, BlockMaxWandMatchesUnprunedBitExactly) {
    // The tentpole exactness claim: with pruning on, the BM25 kernel runs
    // document-at-a-time over compressed blocks, skipping every block the
    // block-max bound proves irrelevant — and must still return the same
    // hits with BIT-IDENTICAL scores as the unpruned term-at-a-time pass
    // (EXPECT_EQ on doubles, not NEAR: both paths sum the same positive
    // contributions in the same ascending-term order).
    const text::InvertedIndex& index = bmw_oracle_index();
    const text::Bm25Scorer scorer(index);
    text::QueryScratch pruned_scratch, ref_scratch;

    Rng rng(static_cast<std::uint64_t>(5000 + GetParam()));
    std::uint64_t skipped_total = 0;
    for (int q = 0; q < 25; ++q) {
        std::vector<std::string> tokens;
        const std::size_t len = rng.uniform(1, 9);
        for (std::size_t i = 0; i < len; ++i) {
            const auto t = static_cast<text::TermId>(rng.uniform(0, index.term_count() - 1));
            tokens.push_back(index.vocabulary().term(t));
        }
        for (std::size_t k : {std::size_t{1}, std::size_t{3}, std::size_t{10}}) {
            for (double gate : {0.0, 2.0}) {
                text::KernelOptions pruned{k, gate, true};
                text::KernelOptions unpruned{k, gate, false};
                text::KernelStats ps{}, us{};
                const std::vector<text::Hit> got =
                    scorer.query_kernel(tokens, pruned_scratch, pruned, &ps);
                const std::vector<text::Hit> want =
                    scorer.query_kernel(tokens, ref_scratch, unpruned, &us);
                ASSERT_EQ(got.size(), want.size());
                for (std::size_t i = 0; i < got.size(); ++i) {
                    EXPECT_EQ(got[i].doc, want[i].doc);
                    EXPECT_EQ(got[i].score, want[i].score); // bit-identical
                    EXPECT_EQ(got[i].matched_terms, want[i].matched_terms);
                }
                // postings_scanned counts only decoded postings, so the
                // pruned pass can never scan more than decode-everything.
                EXPECT_LE(ps.postings_scanned, us.postings_scanned);
                EXPECT_LE(ps.blocks_decoded, us.blocks_decoded);
                skipped_total += ps.blocks_skipped;
            }
        }
    }
    // Across 150 query/option pairs the pruner must actually prune.
    EXPECT_GT(skipped_total, 0u);
}

// ---------------------------------------------------- (b) build oracle

TEST_P(FaultMatrixSoak, BuildIdentityUnderShardFaults) {
    // p:0.5 per shard hit: depending on the seed the parallel build either
    // survives or takes the sequential fallback — both must freeze to the
    // reference blob, and the blob must round-trip through thaw unchanged.
    util::FaultScope scope("seed=" + std::to_string(GetParam()) +
                           ";search.build.shard=p:0.5");
    search::EngineOptions opts;
    opts.build_threads = 4;
    const search::SearchEngine engine(soak_corpus(), opts);
    const std::string blob = search::freeze_engine(engine);
    EXPECT_EQ(blob, reference_blob());

    const search::EngineSnapshot thawed = search::thaw_engine(blob);
    EXPECT_EQ(search::freeze_engine(*thawed.engine), blob);
}

// ------------------------------------------------ (b') serialize oracle

TEST_P(FaultMatrixSoak, LenientDecodeSkipsExactlyTheFiredRecords) {
    static const json::Value doc = kb::to_json(soak_corpus());
    const std::size_t total = soak_corpus().patterns().size() +
                              soak_corpus().weaknesses().size() +
                              soak_corpus().vulnerabilities().size();
    util::FaultScope scope("seed=" + std::to_string(GetParam()) +
                           ";kb.serialize.record=p:0.1");
    std::vector<kb::RecordDiagnostic> diags;
    const kb::Corpus decoded = kb::corpus_from_json(doc, &diags);
    const std::size_t kept = decoded.patterns().size() + decoded.weaknesses().size() +
                             decoded.vulnerabilities().size();
    // Conservation: every record either decoded or produced a diagnostic.
    EXPECT_EQ(kept + diags.size(), total);
    EXPECT_TRUE(decoded.indexed());
    for (const kb::RecordDiagnostic& d : diags)
        EXPECT_NE(d.error.find("injected"), std::string::npos);
}

// -------------------------------------------------- (c) session oracle

TEST_P(FaultMatrixSoak, SessionMatchesBaselineUnderFaultMatrix) {
    const int seed = GetParam();
    const std::string path =
        temp_path("fault_matrix_" + std::to_string(seed) + ".snap");
    core::SessionOptions opts;
    opts.snapshot_path = path;
    { core::AnalysisSession warm(soak_model(), soak_corpus(), opts); } // seed the cache

    // The matrix: every degradable site a session crosses, armed at once.
    // Recompute uses nth (fires exactly once) because its contract is
    // retry-once — a second probabilistic failure would rightly propagate.
    const std::string spec =
        "seed=" + std::to_string(seed) +
        ";kb.snapshot.open=p:0.5"
        ";session.cold_start.load=p:0.3"
        ";session.cold_start.save=p:0.3"
        ";util.bytes.read_file.open=p:0.2"
        ";util.bytes.write_file.write=p:0.2"
        ";search.cache.get=p:0.3"
        ";search.cache.put=p:0.3"
        ";search.assoc.recompute=nth:" + std::to_string(seed % 5 + 1);
    util::FaultScope scope(spec);

    core::AnalysisSession session(soak_model(), soak_corpus(), opts);
    EXPECT_EQ(fingerprint(session.associations()), baseline_fingerprint());

    // Counter consistency: every task resolved as exactly one hit or miss.
    const search::AssocMetrics m = session.assoc_metrics();
    std::size_t tasks = 0;
    const model::SystemModel counted = soak_model();
    for (const model::Component& c : counted.components()) {
        if (!c.id.valid()) continue;
        for (const model::Attribute& a : c.attributes)
            if (a.kind != model::AttributeKind::Parameter) ++tasks;
    }
    EXPECT_EQ(m.cache_hits + m.cache_misses, tasks);
}

// ----------------------------------------------- (c') flow incremental oracle

namespace {

/// A seed-directed structural edit: add, remove, rewire, or flip an entry
/// point. Each class stresses a different region of reanalyze()'s
/// affected-set computation.
void mutate_for_flow(model::SystemModel& m, int k) {
    std::vector<model::ComponentId> live;
    for (const model::Component& c : m.components())
        if (c.id.valid()) live.push_back(c.id);
    ASSERT_FALSE(live.empty());
    const std::size_t a = static_cast<std::size_t>(k) % live.size();
    const std::size_t b = (static_cast<std::size_t>(k) * 7 + 3) % live.size();
    switch (k % 4) {
    case 0: {
        const model::ComponentId fresh = m.add_component(
            "Flow mutant " + std::to_string(k), model::ComponentType::Compute);
        m.connect(live[a], fresh, "mutant-feed-" + std::to_string(k));
        break;
    }
    case 1:
        m.remove_component(live[a]);
        break;
    case 2:
        m.connect(live[a], live[b], "mutant-link-" + std::to_string(k));
        break;
    default:
        m.component(live[a]).external_facing = !m.component(live[a]).external_facing;
        break;
    }
}

safety::HazardModel soak_hazards(const model::SystemModel& m) {
    safety::HazardModel hz;
    hz.add(safety::Loss{"L-1", "loss of process control"});
    hz.add(safety::Hazard{"H-1", "unsafe command reaches the plant", {"L-1"}});
    hz.add(safety::Hazard{"H-2", "protection function suppressed", {"L-1"}});
    int n = 0;
    for (const model::Component& c : m.components()) {
        if (!c.id.valid()) continue;
        safety::UnsafeControlAction uca;
        uca.id = "UCA-" + std::to_string(n + 1);
        uca.controller = c.name;
        uca.action = "issue command";
        uca.hazards = {n % 2 == 0 ? "H-1" : "H-2"};
        hz.add(uca);
        if (++n == 3) break; // three controllers is plenty of seed surface
    }
    return hz;
}

} // namespace

TEST_P(FaultMatrixSoak, FlowIncrementalMatchesFullUnderFaultMatrix) {
    // Drive a session through a seed-directed chain of structural edits
    // with the degradable session sites armed: after every commit the
    // incremental flow() must be fingerprint-identical to a from-scratch
    // analyze() over the same model and (transparently degraded)
    // associations. Faults may slow the association layer down; they must
    // never make the incremental dataflow result drift from the full one.
    const int seed = GetParam();
    const std::string path =
        temp_path("fault_matrix_flow_" + std::to_string(seed) + ".snap");
    core::SessionOptions opts;
    opts.snapshot_path = path;

    const safety::HazardModel hz = soak_hazards(soak_model());
    const std::string spec =
        "seed=" + std::to_string(seed) +
        ";kb.snapshot.open=p:0.5"
        ";session.cold_start.load=p:0.3"
        ";session.cold_start.save=p:0.3"
        ";util.bytes.read_file.open=p:0.2"
        ";util.bytes.write_file.write=p:0.2"
        ";search.cache.get=p:0.3"
        ";search.cache.put=p:0.3";
    util::FaultScope scope(spec);

    core::AnalysisSession session(soak_model(), soak_corpus(), opts);
    session.set_hazards(hz);
    ASSERT_TRUE(session.flow().converged);

    for (int step = 0; step < 3; ++step) {
        model::SystemModel candidate = session.model();
        mutate_for_flow(candidate, seed * 3 + step);
        (void)session.commit(std::move(candidate));
        const flow::FlowResult& incremental = session.flow();
        const flow::FlowResult full =
            flow::analyze(session.model(), session.associations(), &hz);
        ASSERT_EQ(incremental.fingerprint(), full.fingerprint())
            << "seed " << seed << " step " << step;
        ASSERT_TRUE(incremental.converged);
    }
    EXPECT_GE(session.assoc_metrics().flow.incremental_analyses, 3u);
}

// --------------------------------------------------- (d) serve oracle

namespace {

/// One shared engine for every serve soak seed, built fault-free.
std::shared_ptr<const core::SharedEngine> soak_shared_engine() {
    static const std::shared_ptr<const core::SharedEngine> engine =
        core::make_shared_engine(soak_corpus(), core::SessionOptions{});
    return engine;
}

/// A thawable snapshot for the swap requests, written before faults arm.
const std::string& soak_snapshot_path() {
    static const std::string path = [] {
        const std::string p = temp_path("fault_matrix_serve.snap");
        search::save_engine_snapshot(*soak_shared_engine()->engine, p);
        return p;
    }();
    return path;
}

} // namespace

TEST_P(FaultMatrixSoak, ServeOneResponsePerRequestUnderFaultMatrix) {
    const int seed = GetParam();
    serve::Server server(soak_shared_engine(), soak_model(), serve::ServerOptions{});
    server.start();

    // Phase 1 — recoverable sites. These degrade to typed error responses
    // on a connection that stays usable, so the conservation law is exact:
    // 48 pipelined requests in, 48 responses out, each id at most once,
    // id-0 responses (a decode fault fires before the id is parsed, so
    // the server cannot echo it) covering exactly the remainder.
    constexpr int kRequests = 48;
    {
        util::FaultScope scope("seed=" + std::to_string(seed) +
                               ";serve.request.decode=p:0.25"
                               ";serve.session.open=p:0.3"
                               ";serve.swap.load=p:0.5");
        serve::BlockingClient client("127.0.0.1", server.port());
        for (int i = 0; i < kRequests; ++i) {
            serve::Request req;
            switch (i % 6) {
            case 0: req.type = serve::MsgType::Ping; req.text = "probe"; break;
            case 1: req.type = serve::MsgType::SessionOpen; break;
            case 2:
                req.type = serve::MsgType::Query;
                req.text = "buffer overflow";
                req.limit = 3;
                break;
            case 3:
                // May race an open that failed or has not executed yet —
                // unknown_session is then the correct typed answer.
                req.type = serve::MsgType::Associate;
                req.session = "s-" + std::to_string(i / 6 + 1);
                break;
            case 4: req.type = serve::MsgType::SessionList; break;
            case 5:
                req.type = serve::MsgType::SnapshotSwap;
                req.snapshot = soak_snapshot_path();
                break;
            }
            client.send(req);
        }
        std::vector<bool> answered(kRequests + 1, false);
        int anonymous = 0; // id-0 responses: request.decode fired pre-parse
        for (int i = 0; i < kRequests; ++i) {
            const serve::Response resp = client.receive();
            ASSERT_GE(resp.id, 0);
            ASSERT_LE(resp.id, kRequests);
            if (resp.id == 0) {
                EXPECT_FALSE(resp.ok) << "ok response without an id";
                ++anonymous;
            } else {
                const auto idx = static_cast<std::size_t>(resp.id);
                EXPECT_FALSE(answered[idx]) << "duplicate response for id " << resp.id;
                answered[idx] = true;
            }
            if (!resp.ok) {
                const auto& codes = serve::known_error_codes();
                const bool known = std::any_of(
                    codes.begin(), codes.end(),
                    [&](const serve::ErrorCodeInfo& c) { return c.wire == resp.error_code; });
                EXPECT_TRUE(known) << "untyped error code: " << resp.error_code;
            }
        }
        const auto echoed = std::count(answered.begin() + 1, answered.end(), true);
        EXPECT_EQ(echoed + anonymous, kRequests);
    }

    // Phase 2 — connection-killing sites. Here the weaker law holds: every
    // request resolves as a response or a connection teardown (IoError on
    // this side), never silence.
    {
        util::FaultScope scope("seed=" + std::to_string(seed + 64) +
                               ";serve.frame.decode=p:0.2"
                               ";serve.response.write=p:0.2");
        int responses = 0, teardowns = 0;
        constexpr int kAttempts = 24;
        std::unique_ptr<serve::BlockingClient> client;
        for (int i = 0; i < kAttempts; ++i) {
            try {
                if (!client)
                    client = std::make_unique<serve::BlockingClient>("127.0.0.1",
                                                                     server.port());
                serve::Request req;
                req.type = serve::MsgType::Ping;
                req.text = "p2";
                client->send(req);
                (void)client->receive();
                ++responses;
            } catch (const Error&) {
                ++teardowns; // typed teardown: reconnect and continue
                client.reset();
            }
        }
        EXPECT_EQ(responses + teardowns, kAttempts);
    }

    // Disarmed, the server must still be healthy: a clean probe answers.
    {
        serve::BlockingClient probe("127.0.0.1", server.port());
        serve::Request req;
        req.type = serve::MsgType::Ping;
        req.text = "healthy";
        const serve::Response resp = probe.call(req);
        EXPECT_TRUE(resp.ok);
        EXPECT_EQ(resp.body.get_string("echo"), "healthy");
    }
    server.stop();
    server.wait();
}

// ------------------------------ (e) delta + compaction soak oracle

namespace {

/// A deterministic mixed delta (modify / withdraw / add per class) over
/// `corpus`, tag-unique vocabulary in the additions.
kb::CorpusDelta soak_delta(const kb::Corpus& corpus, Rng& rng, std::uint32_t tag) {
    kb::CorpusDelta d;
    const auto& ps = corpus.patterns();
    const auto& ws = corpus.weaknesses();
    const auto& vs = corpus.vulnerabilities();

    const std::vector<std::size_t> pi = rng.sample_indices(ps.size(), 3);
    d.patterns.push_back(ps[pi[0]]);
    d.patterns.back().summary += " revised exploitation chain note rev" + std::to_string(tag);
    d.withdraw_patterns.push_back(ps[pi[1]].id);

    const std::vector<std::size_t> wi = rng.sample_indices(ws.size(), 3);
    d.weaknesses.push_back(ws[wi[0]]);
    d.weaknesses.back().description += " amended mitigations discussion";
    d.withdraw_weaknesses.push_back(ws[wi[1]].id);

    if (!vs.empty()) {
        const std::vector<std::size_t> vi = rng.sample_indices(vs.size(), 2);
        d.vulnerabilities.push_back(vs[vi[0]]);
        d.vulnerabilities.back().description += " patched firmware reissued";
        d.withdraw_vulnerabilities.push_back(vs[vi[1]].id);
    }

    kb::Weakness wk;
    wk.id = kb::WeaknessId{800000 + tag};
    wk.name = "Unverified maintenance frame origin";
    wk.description = "Relay accepts maintenance frames without verifying origin; "
                     "any bus participant can retime protection. rev" + std::to_string(tag);
    d.weaknesses.push_back(std::move(wk));
    return d;
}

} // namespace

TEST(FaultMatrix, KnownSiteTableCoversDeltaAndCompactionSites) {
    const std::vector<util::FaultSiteInfo>& sites = util::known_fault_sites();
    EXPECT_GE(sites.size(), 25u);
    auto has = [&sites](std::string_view name) {
        return std::any_of(sites.begin(), sites.end(),
                           [name](const util::FaultSiteInfo& s) { return s.site == name; });
    };
    EXPECT_TRUE(has("kb.delta.apply"));
    EXPECT_TRUE(has("search.delta.segment"));
    EXPECT_TRUE(has("serve.compact.fold"));
}

TEST_P(FaultMatrixSoak, DeltaCompactionUnderFaultsMatchesCleanRebuild) {
    // The tentpole soak oracle: drive a registry through a delta chain and
    // compactions with every delta/compaction fault site armed
    // probabilistically. Failed applies publish nothing (retrying the
    // identical delta is always safe), failed folds leave the segmented
    // generation authoritative — and whatever interleaving the seed
    // produces, the surviving generation must answer byte-identically to a
    // clean from-scratch build of the merged corpus.
    const int seed = GetParam();

    // The delta chain and its clean merged endpoint, computed fault-free.
    kb::Corpus merged = soak_corpus();
    std::vector<kb::CorpusDelta> deltas;
    Rng rng(static_cast<std::uint64_t>(9000 + seed));
    for (std::uint32_t t = 0; t < 3; ++t) {
        deltas.push_back(soak_delta(merged, rng, static_cast<std::uint32_t>(seed) * 10 + t));
        kb::apply_corpus_delta(merged, deltas.back());
    }

    serve::SessionRegistry registry(soak_shared_engine(), soak_model(),
                                    serve::RegistryOptions{});
    {
        util::FaultScope scope("seed=" + std::to_string(seed) +
                               ";kb.delta.apply=p:0.25"
                               ";search.delta.segment=p:0.25"
                               ";serve.compact.fold=p:0.5");
        for (std::size_t t = 0; t < deltas.size(); ++t) {
            const std::string path =
                temp_path("fault_matrix_delta_" + std::to_string(seed) + "_" +
                          std::to_string(t) + ".delta");
            util::write_file(path, kb::freeze_corpus_delta(deltas[t]));
            bool applied = false;
            for (int attempt = 0; attempt < 64 && !applied; ++attempt) {
                try {
                    (void)registry.apply_delta(path);
                    applied = true;
                } catch (const serve::ProtocolError&) {
                    // delta_failed: the old generation is still current.
                }
            }
            ASSERT_TRUE(applied) << "delta " << t << " never applied under seed " << seed;
            if (t == 1) {
                // Mid-chain fold attempt: success or typed failure, the
                // final bits must not depend on which one the seed drew.
                try {
                    (void)registry.compact();
                } catch (const serve::ProtocolError&) {
                }
            }
        }
        bool folded = false;
        for (int attempt = 0; attempt < 64 && !folded; ++attempt) {
            try {
                (void)registry.compact();
                folded = true;
            } catch (const serve::ProtocolError&) {
            }
        }
        ASSERT_TRUE(folded) << "compaction never succeeded under seed " << seed;
    }
    EXPECT_EQ(registry.stats().current_segments, 0u);
    EXPECT_EQ(registry.stats().deltas_applied, 3u);

    // Byte-identical to the clean rebuild, via the association fingerprint.
    search::AssocOptions aopts;
    aopts.threads = 4;
    search::Associator got(registry.current()->engine->query(), aopts);
    const search::SearchEngine clean(merged, {});
    search::Associator want(clean, aopts);
    EXPECT_EQ(fingerprint(got.associate(soak_model())),
              fingerprint(want.associate(soak_model())));
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, FaultMatrixSoak, ::testing::Range(0, 16));
