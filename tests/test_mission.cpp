#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/mission_impact.hpp"
#include "analysis/model_advice.hpp"
#include "synth/corpus_gen.hpp"
#include "synth/scada.hpp"

using namespace cybok;

namespace {
search::AssociationMap stub(std::initializer_list<std::pair<const char*, int>> items) {
    search::AssociationMap map;
    for (const auto& [name, n] : items) {
        search::ComponentAssociation ca;
        ca.component = name;
        search::AttributeAssociation aa;
        aa.attribute_name = "role";
        aa.attribute_value = "stub";
        for (int i = 0; i < n; ++i) {
            search::Match m;
            m.cls = search::VectorClass::Weakness;
            m.id = "CWE-" + std::to_string(i);
            aa.matches.push_back(std::move(m));
        }
        ca.attributes.push_back(std::move(aa));
        map.components.push_back(std::move(ca));
    }
    return map;
}
} // namespace

// ---------------------------------------------------------------- missions

TEST(MissionModel, LookupsAndAllocation) {
    model::MissionModel mm = analysis::centrifuge_missions();
    ASSERT_NE(mm.find_function("F-1"), nullptr);
    ASSERT_NE(mm.find_mission("M-2"), nullptr);
    EXPECT_EQ(mm.find_function("F-99"), nullptr);
    EXPECT_EQ(mm.find_mission("M-99"), nullptr);

    auto on_bpcs = mm.functions_on("BPCS platform");
    ASSERT_EQ(on_bpcs.size(), 2u); // F-1, F-2
    auto on_sensor = mm.functions_on("Temperature sensor");
    ASSERT_EQ(on_sensor.size(), 2u); // F-2, F-4
    EXPECT_TRUE(mm.functions_on("Nonexistent").empty());
}

TEST(MissionModel, MissionsThreatenedByComponent) {
    model::MissionModel mm = analysis::centrifuge_missions();
    // BPCS carries F-1 and F-2 -> M-1 (F-1,F-2) and M-2 (F-2).
    auto missions = mm.missions_threatened_by("BPCS platform");
    ASSERT_EQ(missions.size(), 2u);
    // The WS only carries F-3 -> M-3.
    auto ws = mm.missions_threatened_by("Programming WS");
    ASSERT_EQ(ws.size(), 1u);
    EXPECT_EQ(ws[0]->id, "M-3");
}

TEST(MissionModel, ValidatesAgainstSystemModel) {
    model::SystemModel m = synth::centrifuge_model();
    EXPECT_TRUE(analysis::centrifuge_missions().validate(m).empty());

    model::MissionModel broken;
    broken.add(model::Function{"F-1", "float", {"Ghost component"}});
    broken.add(model::Function{"F-1", "duplicate", {}});
    broken.add(model::Mission{"M-1", "mission", {"F-9"}});
    broken.add(model::Mission{"M-2", "empty", {}});
    auto issues = broken.validate(m);
    auto has = [&](std::string_view needle) {
        return std::any_of(issues.begin(), issues.end(), [&](const std::string& s) {
            return s.find(needle) != std::string::npos;
        });
    };
    EXPECT_TRUE(has("unknown component"));
    EXPECT_TRUE(has("duplicate id: F-1"));
    EXPECT_TRUE(has("not allocated"));
    EXPECT_TRUE(has("unknown function F-9"));
    EXPECT_TRUE(has("requires no functions"));
}

TEST(MissionImpact, RanksThreatenedMissions) {
    model::MissionModel mm = analysis::centrifuge_missions();
    auto impacts = analysis::mission_impacts(
        mm, stub({{"BPCS platform", 5}, {"Programming WS", 2}}));
    ASSERT_EQ(impacts.size(), 3u);
    // M-1 and M-2 both threatened via BPCS (5 vectors); M-3 via WS (2).
    EXPECT_EQ(impacts[0].vectors, 5u);
    EXPECT_TRUE(impacts[0].threatened());
    EXPECT_EQ(impacts[2].mission_id, "M-3");
    EXPECT_EQ(impacts[2].vectors, 2u);
}

TEST(MissionImpact, UnthreatenedMissionsStillListed) {
    model::MissionModel mm = analysis::centrifuge_missions();
    auto impacts = analysis::mission_impacts(mm, search::AssociationMap{});
    ASSERT_EQ(impacts.size(), 3u);
    for (const auto& impact : impacts) {
        EXPECT_FALSE(impact.threatened());
        EXPECT_EQ(impact.vectors, 0u);
    }
}

// ------------------------------------------------------------ model advice

TEST(ModelAdvice, CleanImplementationModelGetsMinimalAdvice) {
    model::SystemModel m = synth::centrifuge_model();
    kb::Corpus corpus = synth::generate_corpus(synth::CorpusProfile::scaled(0.1, 99));
    search::SearchEngine engine(corpus);
    auto advice = analysis::advise(m, search::associate(m, engine));
    // The demo model is complete: no unresolved platforms, no untyped
    // components, an entry point exists, and its descriptors are specific.
    for (const analysis::Advice& a : advice) {
        EXPECT_NE(a.kind, analysis::AdviceKind::UnresolvedPlatform) << a.text;
        EXPECT_NE(a.kind, analysis::AdviceKind::MissingEntryPoint) << a.text;
        EXPECT_NE(a.kind, analysis::AdviceKind::UntypedComponent) << a.text;
        EXPECT_NE(a.kind, analysis::AdviceKind::NoisyDescriptor) << a.text;
    }
}

TEST(ModelAdvice, FlagsSparseModel) {
    model::SystemModel m("sparse", "");
    model::ComponentId a = m.add_component("Mystery box", model::ComponentType::Other);
    model::ComponentId b = m.add_component("Bare server", model::ComponentType::Compute);
    m.connect(a, b, "link");
    // Unresolved platform ref on the server.
    model::Attribute fw;
    fw.name = "firmware";
    fw.value = "Unknown RTOS";
    fw.kind = model::AttributeKind::PlatformRef;
    m.set_attribute(b, fw);

    auto advice = analysis::advise(m, search::AssociationMap{});
    auto count = [&](analysis::AdviceKind k) {
        return std::count_if(advice.begin(), advice.end(),
                             [k](const analysis::Advice& adv) { return adv.kind == k; });
    };
    EXPECT_EQ(count(analysis::AdviceKind::UntypedComponent), 1);
    EXPECT_EQ(count(analysis::AdviceKind::UnresolvedPlatform), 1);
    EXPECT_EQ(count(analysis::AdviceKind::MissingEntryPoint), 1);
    // The server *has* a platform ref (unresolved), so no missing-ref
    // advice; a truly bare compute node gets one.
    EXPECT_EQ(count(analysis::AdviceKind::MissingPlatformRef), 0);
    m.add_component("Bare PLC", model::ComponentType::Controller);
    advice = analysis::advise(m, search::AssociationMap{});
    EXPECT_EQ(count(analysis::AdviceKind::MissingPlatformRef), 1);
}

TEST(ModelAdvice, FlagsSilentAndNoisyDescriptors) {
    model::SystemModel m("t", "");
    model::ComponentId a = m.add_component("Widget", model::ComponentType::Sensor);
    model::Attribute vague;
    vague.name = "role";
    vague.value = "thing";
    m.set_attribute(a, vague);

    // Silent: descriptor with no matches.
    search::AssociationMap assoc;
    search::ComponentAssociation ca;
    ca.component = "Widget";
    search::AttributeAssociation aa;
    aa.attribute_name = "role";
    aa.attribute_value = "thing";
    ca.attributes.push_back(aa);
    assoc.components.push_back(ca);

    auto advice = analysis::advise(m, assoc);
    bool silent = std::any_of(advice.begin(), advice.end(), [](const analysis::Advice& x) {
        return x.kind == analysis::AdviceKind::SilentDescriptor;
    });
    EXPECT_TRUE(silent);

    // Noisy: inflate the same attribute with many lexical matches.
    for (int i = 0; i < 150; ++i) {
        search::Match match;
        match.cls = search::VectorClass::Weakness;
        match.via = search::MatchVia::Lexical;
        match.id = "CWE-" + std::to_string(i);
        assoc.components[0].attributes[0].matches.push_back(std::move(match));
    }
    advice = analysis::advise(m, assoc);
    bool noisy = std::any_of(advice.begin(), advice.end(), [](const analysis::Advice& x) {
        return x.kind == analysis::AdviceKind::NoisyDescriptor;
    });
    EXPECT_TRUE(noisy);
}

TEST(ModelAdvice, KindNames) {
    EXPECT_EQ(analysis::advice_kind_name(analysis::AdviceKind::NoisyDescriptor),
              "noisy-descriptor");
    EXPECT_EQ(analysis::advice_kind_name(analysis::AdviceKind::MissingEntryPoint),
              "missing-entry-point");
}
