#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cvss/cvss.hpp"
#include "kb/serialize.hpp"
#include "model/diff.hpp"
#include "synth/corpus_gen.hpp"
#include "synth/lexicon.hpp"
#include "synth/model_gen.hpp"
#include "synth/scada.hpp"
#include "text/tokenize.hpp"

using namespace cybok;
using namespace cybok::synth;

TEST(Lexicon, DomainTagsDisjointAcrossDomains) {
    std::set<std::string_view> seen;
    for (int d = 0; d < static_cast<int>(kDomainCount); ++d) {
        for (std::string_view tag : domain_tags(static_cast<Domain>(d))) {
            EXPECT_TRUE(seen.insert(tag).second) << "tag shared across domains: " << tag;
        }
    }
}

TEST(Lexicon, GenericVocabularyAvoidsDomainTags) {
    std::set<std::string_view> tags;
    for (int d = 0; d < static_cast<int>(kDomainCount); ++d)
        for (std::string_view tag : domain_tags(static_cast<Domain>(d))) tags.insert(tag);
    for (auto pool : {security_nouns(), security_verbs(), security_objects()})
        for (std::string_view w : pool)
            EXPECT_FALSE(tags.contains(w)) << "generic word collides with tag: " << w;
}

TEST(Lexicon, SentencesContainRequestedTags) {
    Rng rng(5);
    for (int i = 0; i < 50; ++i) {
        std::string s = make_sentence(rng, domain_tags(Domain::LinuxOs));
        bool has_tag = s.find("linux") != std::string::npos ||
                       s.find("kernel") != std::string::npos;
        EXPECT_TRUE(has_tag) << s;
    }
    std::string generic = make_sentence(rng, {});
    EXPECT_EQ(generic.find("linux"), std::string::npos);
}

TEST(Lexicon, DomainNames) {
    EXPECT_EQ(domain_name(Domain::Ics), "ics");
    EXPECT_EQ(domain_name(Domain::Generic), "generic");
}

// ------------------------------------------------------------- corpus gen

namespace {
const kb::Corpus& demo() {
    static const kb::Corpus corpus = generate_corpus(CorpusProfile::scada_demo());
    return corpus;
}
} // namespace

TEST(CorpusGen, DeterministicForSameProfile) {
    CorpusProfile p = CorpusProfile::scaled(0.05, 42);
    kb::Corpus a = generate_corpus(p);
    kb::Corpus b = generate_corpus(p);
    EXPECT_EQ(json::dump(kb::to_json(a)), json::dump(kb::to_json(b)));
}

TEST(CorpusGen, SeedChangesContent) {
    kb::Corpus a = generate_corpus(CorpusProfile::scaled(0.05, 1));
    kb::Corpus b = generate_corpus(CorpusProfile::scaled(0.05, 2));
    EXPECT_NE(json::dump(kb::to_json(a)), json::dump(kb::to_json(b)));
}

TEST(CorpusGen, RecordCountsMatchProfile) {
    const kb::Corpus& c = demo();
    CorpusProfile p = CorpusProfile::scada_demo();
    kb::Corpus::Stats s = c.stats();
    EXPECT_EQ(s.patterns, p.pattern_count + anchor_patterns().size());
    EXPECT_EQ(s.weaknesses, p.weakness_count + anchor_weaknesses().size());
    std::size_t expected_cves = 0;
    for (const ProductSpec& spec : p.products) expected_cves += spec.cve_count;
    EXPECT_EQ(s.vulnerabilities, expected_cves);
}

TEST(CorpusGen, PerProductCveVolumesExact) {
    const kb::Corpus& c = demo();
    for (const ProductSpec& spec : CorpusProfile::scada_demo().products) {
        kb::Platform family = spec.platform;
        family.version.clear();
        EXPECT_EQ(c.vulnerabilities_for(family).size(), spec.cve_count) << spec.display;
    }
}

TEST(CorpusGen, DomainPlantCountsExact) {
    // Count generated pattern/weakness records containing each primary tag
    // token; must equal the plant plan (anchors avoid these tokens).
    const kb::Corpus& c = demo();
    CorpusProfile p = CorpusProfile::scada_demo();
    auto count_containing = [](const auto& records, std::string_view token,
                               auto&& text_of) {
        std::size_t n = 0;
        for (const auto& r : records) {
            auto tokens = text::tokenize(text_of(r));
            for (const auto& t : tokens)
                if (t == token) {
                    ++n;
                    break;
                }
        }
        return n;
    };
    auto pattern_text = [](const kb::AttackPattern& r) { return r.name + " " + r.summary; };
    auto weakness_text = [](const kb::Weakness& r) { return r.name + " " + r.description; };

    EXPECT_EQ(count_containing(c.patterns(), "linux", pattern_text),
              p.plants.at(Domain::LinuxOs).patterns);
    EXPECT_EQ(count_containing(c.weaknesses(), "linux", weakness_text),
              p.plants.at(Domain::LinuxOs).weaknesses);
    EXPECT_EQ(count_containing(c.patterns(), "windows", pattern_text),
              p.plants.at(Domain::WindowsOs).patterns);
    EXPECT_EQ(count_containing(c.weaknesses(), "windows", weakness_text),
              p.plants.at(Domain::WindowsOs).weaknesses);
    EXPECT_EQ(count_containing(c.patterns(), "cisco", pattern_text),
              p.plants.at(Domain::NetAppliance).patterns);
    EXPECT_EQ(count_containing(c.weaknesses(), "cisco", weakness_text),
              p.plants.at(Domain::NetAppliance).weaknesses);
}

TEST(CorpusGen, ReservedProductTokensNeverInPatternOrWeaknessText) {
    const kb::Corpus& c = demo();
    std::set<std::string> reserved;
    for (std::string_view t : reserved_product_tokens()) reserved.emplace(t);
    auto check = [&](const std::string& text) {
        for (const std::string& tok : text::tokenize(text))
            EXPECT_FALSE(reserved.contains(tok))
                << "reserved token '" << tok << "' leaked into: " << text;
    };
    for (const kb::AttackPattern& p : c.patterns()) {
        check(p.name);
        check(p.summary);
        for (const std::string& pre : p.prerequisites) check(pre);
    }
    for (const kb::Weakness& w : c.weaknesses()) {
        check(w.name);
        check(w.description);
    }
}

TEST(CorpusGen, AnchorsPresentWithRealIds) {
    const kb::Corpus& c = demo();
    const kb::Weakness* cwe78 = c.find(kb::WeaknessId{kCweOsCommandInjection});
    ASSERT_NE(cwe78, nullptr);
    EXPECT_NE(cwe78->name.find("Operating System Commands"), std::string::npos);
    const kb::AttackPattern* capec88 = c.find(kb::AttackPatternId{kCapecCommandInjection});
    ASSERT_NE(capec88, nullptr);
    // Cross-reference: CAPEC-88 exploits CWE-78, so the derived reverse
    // link exists.
    auto patterns = c.patterns_for(kb::WeaknessId{kCweOsCommandInjection});
    EXPECT_TRUE(std::find(patterns.begin(), patterns.end(),
                          kb::AttackPatternId{kCapecCommandInjection}) != patterns.end());
}

TEST(CorpusGen, AnchorsAccumulateVulnerabilityMass) {
    // The zipf head sits on the anchor weaknesses, so CWE-78 classifies a
    // healthy share of generated CVEs — as in the real NVD.
    const kb::Corpus& c = demo();
    EXPECT_GT(c.vulnerabilities_for(kb::WeaknessId{kCweOsCommandInjection}).size(), 100u);
}

TEST(CorpusGen, MostVulnerabilitiesHaveValidCvss) {
    const kb::Corpus& c = demo();
    std::size_t scored = 0;
    std::size_t checked = 0;
    for (const kb::Vulnerability& v : c.vulnerabilities()) {
        if (v.cvss_vector.empty()) continue;
        ++scored;
        if (++checked <= 500) {
            double s = cvss::base_score(cvss::parse(v.cvss_vector));
            EXPECT_GT(s, 0.0);
            EXPECT_LE(s, 10.0);
        }
    }
    EXPECT_GT(scored, c.vulnerabilities().size() * 8 / 10);
}

TEST(CorpusGen, InvalidProfilesRejected) {
    CorpusProfile p = CorpusProfile::scada_demo();
    p.pattern_count = 10; // plants exceed totals
    EXPECT_THROW(generate_corpus(p), cybok::ValidationError);

    CorpusProfile dup = CorpusProfile::scada_demo();
    dup.products.push_back(dup.products.front());
    EXPECT_THROW(generate_corpus(dup), cybok::ValidationError);

    CorpusProfile generic_plant = CorpusProfile::scada_demo();
    generic_plant.plants[Domain::Generic] = {1, 1};
    EXPECT_THROW(generate_corpus(generic_plant), cybok::ValidationError);

    EXPECT_THROW(CorpusProfile::scaled(0.0001), cybok::ValidationError);
}

TEST(CorpusGen, ScaledProfileShrinksEverything) {
    CorpusProfile full = CorpusProfile::scada_demo();
    CorpusProfile tenth = CorpusProfile::scaled(0.1, 7);
    EXPECT_EQ(tenth.pattern_count, full.pattern_count / 10);
    for (std::size_t i = 0; i < full.products.size(); ++i)
        EXPECT_LE(tenth.products[i].cve_count, full.products[i].cve_count);
    kb::Corpus c = generate_corpus(tenth);
    EXPECT_GT(c.stats().vulnerabilities, 0u);
}

// --------------------------------------------------------------- model gen

TEST(ModelGen, DeterministicAndSized) {
    ModelGenConfig cfg;
    cfg.seed = 3;
    cfg.components = 40;
    model::SystemModel a = generate_model(cfg);
    model::SystemModel b = generate_model(cfg);
    EXPECT_EQ(a.component_count(), 40u);
    EXPECT_TRUE(model::diff(a, b).empty());
}

TEST(ModelGen, LayerZeroIsExternalFacing) {
    ModelGenConfig cfg;
    cfg.components = 20;
    cfg.layers = 4;
    model::SystemModel m = generate_model(cfg);
    for (const model::Component& c : m.components()) {
        if (!c.id.valid()) continue;
        bool layer0 = c.subsystem == "layer-0";
        EXPECT_EQ(c.external_facing, layer0) << c.name;
    }
}

TEST(ModelGen, EveryNonFinalComponentHasForwardEdges) {
    ModelGenConfig cfg;
    cfg.components = 30;
    cfg.layers = 3;
    model::SystemModel m = generate_model(cfg);
    std::set<std::uint32_t> with_out;
    for (const model::Connector& k : m.connectors()) with_out.insert(k.from.value);
    for (const model::Component& c : m.components()) {
        if (!c.id.valid() || c.subsystem == "layer-2") continue;
        EXPECT_TRUE(with_out.contains(c.id.value)) << c.name;
    }
}

TEST(ModelGen, PlatformRefProbabilityExtremes) {
    ModelGenConfig none;
    none.components = 20;
    none.platform_ref_prob = 0.0;
    model::SystemModel m_none = generate_model(none);
    for (const model::Component& c : m_none.components())
        if (c.id.valid()) {
            EXPECT_EQ(c.attributes.size(), 1u); // role only
        }

    ModelGenConfig all;
    all.components = 20;
    all.platform_ref_prob = 1.0;
    model::SystemModel m_all = generate_model(all);
    for (const model::Component& c : m_all.components())
        if (c.id.valid()) {
            EXPECT_EQ(c.attributes.size(), 2u);
        }
}

TEST(ModelGen, RejectsImpossibleConfig) {
    ModelGenConfig cfg;
    cfg.components = 2;
    cfg.layers = 4;
    EXPECT_THROW(generate_model(cfg), cybok::ValidationError);
}

// ----------------------------------------------------------- scada fixtures

TEST(ScadaFixture, MatchesFigureOneInventory) {
    model::SystemModel m = centrifuge_model();
    for (const char* name : {"Programming WS", "Control firewall", "SIS platform",
                             "BPCS platform", "Temperature sensor", "Centrifuge"})
        EXPECT_TRUE(m.find_component(name).has_value()) << name;
    EXPECT_EQ(m.component_count(), 6u);
    EXPECT_TRUE(m.validate().empty());
    EXPECT_EQ(m.max_fidelity(), model::Fidelity::Implementation);
}

TEST(ScadaFixture, TableOneAttributesResolved) {
    model::SystemModel m = centrifuge_model();
    const model::Attribute* os =
        m.find_attribute(*m.find_component("BPCS platform"), "os");
    ASSERT_NE(os, nullptr);
    EXPECT_EQ(os->value, "NI RT Linux OS");
    ASSERT_TRUE(os->platform.has_value());
    EXPECT_EQ(os->platform->product, "rt_linux");
}

TEST(ScadaFixture, HardenedModelDiffersOnlyWhereIntended) {
    model::ModelDiff d = model::diff(centrifuge_model(), centrifuge_model_hardened());
    EXPECT_TRUE(d.added_components.empty());
    EXPECT_TRUE(d.removed_components.empty());
    EXPECT_EQ(d.attribute_changes.size(), 3u);
    auto touched = d.touched_components();
    EXPECT_EQ(touched.size(), 2u); // WS + firewall
}

TEST(ScadaFixture, UavModelValid) {
    model::SystemModel m = uav_model();
    EXPECT_EQ(m.component_count(), 6u);
    EXPECT_TRUE(m.validate().empty());
}
