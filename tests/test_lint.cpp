// The lint subsystem: every rule has a seeded-defect fixture that makes it
// fire exactly once with the expected code/severity/subject, the clean
// fixture stays clean, options (disable / severity override) work, the
// diagnostic stream is byte-deterministic across thread counts, and the
// session wiring (fail_on_lint_error gate, metrics, report section) holds.

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "core/session.hpp"
#include "kb/platform.hpp"
#include "lint/lint.hpp"
#include "synth/corpus_gen.hpp"
#include "synth/scada.hpp"
#include "util/error.hpp"

using namespace cybok;

namespace {

/// Two components (one external-facing controller, one actuator), one
/// bidirectional link, one non-empty attribute. Lints clean.
model::SystemModel clean_model() {
    model::SystemModel m("plant", "test fixture");
    model::ComponentId sup = m.add_component("Supervisor", model::ComponentType::Controller);
    model::ComponentId pump = m.add_component("Pump", model::ComponentType::Actuator);
    m.component(sup).external_facing = true;
    model::Attribute role;
    role.name = "role";
    role.value = "supervisory controller";
    m.set_attribute(sup, role);
    m.connect(sup, pump, "4-20mA", model::ChannelKind::AnalogSignal, /*bidirectional=*/true);
    return m;
}

/// Pattern -> weakness -> vulnerability chain with valid parent links, a
/// normalized platform binding, and a parseable CVSS vector. Lints clean.
kb::Corpus clean_corpus() {
    kb::Corpus c;
    kb::Weakness parent;
    parent.id = {79};
    parent.name = "Improper Neutralization";
    c.add(parent);
    kb::Weakness child;
    child.id = {80};
    child.name = "Basic XSS";
    child.parent = {79};
    c.add(child);
    kb::AttackPattern p;
    p.id = {63};
    p.name = "Cross-Site Scripting";
    p.related_weaknesses = {{79}};
    c.add(p);
    kb::Vulnerability v;
    v.id = {2020, 1000};
    v.description = "stored xss in widget";
    v.platforms.push_back({kb::PlatformPart::Application, "acme", "widget", ""});
    v.weaknesses = {{79}};
    v.cvss_vector = "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H";
    c.add(v);
    return c;
}

/// One hazard fully traceable through a UCA on the clean model's
/// controller. Lints clean against clean_model().
safety::HazardModel clean_hazards() {
    safety::HazardModel h;
    h.add(safety::Loss{"L-1", "loss of batch"});
    h.add(safety::Hazard{"H-1", "overpressure", {"L-1"}});
    safety::UnsafeControlAction uca;
    uca.id = "UCA-1";
    uca.controller = "Supervisor";
    uca.action = "open valve";
    uca.hazards = {"H-1"};
    h.add(uca);
    return h;
}

search::AssociationMap vuln_assoc(std::initializer_list<const char*> component_names) {
    search::AssociationMap map;
    for (const char* name : component_names) {
        search::ComponentAssociation ca;
        ca.component = name;
        search::AttributeAssociation aa;
        aa.attribute_name = "os";
        aa.attribute_value = "stub";
        search::Match match;
        match.cls = search::VectorClass::Vulnerability;
        match.id = "CVE-2020-1";
        aa.matches.push_back(std::move(match));
        ca.attributes.push_back(std::move(aa));
        map.components.push_back(std::move(ca));
    }
    return map;
}

std::vector<const lint::Diagnostic*> with_code(const lint::LintResult& r,
                                               std::string_view code) {
    std::vector<const lint::Diagnostic*> out;
    for (const lint::Diagnostic& d : r.diagnostics)
        if (d.code == code) out.push_back(&d);
    return out;
}

/// Expect `code` to fire exactly once and return a copy of the diagnostic
/// (a copy, so call sites may pass run_lint's result as a temporary).
lint::Diagnostic expect_once(const lint::LintResult& r, std::string_view code,
                             lint::Severity sev) {
    auto hits = with_code(r, code);
    EXPECT_EQ(hits.size(), 1u) << "for code " << code << "\n" << r.render_text();
    if (hits.size() != 1u) throw std::runtime_error("fixture did not fire exactly once");
    EXPECT_EQ(hits[0]->severity, sev) << "for code " << code;
    return *hits[0];
}

} // namespace

// ----------------------------------------------------------- clean fixture

TEST(Lint, CleanFixtureProducesNoDiagnostics) {
    model::SystemModel m = clean_model();
    kb::Corpus c = clean_corpus();
    safety::HazardModel h = clean_hazards();
    lint::LintInput in;
    in.model = &m;
    in.corpus = &c;
    in.hazards = &h;
    lint::LintResult r = lint::run_lint(in);
    EXPECT_TRUE(r.diagnostics.empty()) << r.render_text();
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.rules_run, lint::registry().size());
    EXPECT_EQ(r.summary(), "0 errors, 0 warnings, 0 notes (19 rules)");
}

TEST(Lint, AllNullInputIsOkAndEmpty) {
    lint::LintResult r = lint::run_lint(lint::LintInput{});
    EXPECT_TRUE(r.diagnostics.empty());
    EXPECT_TRUE(r.ok());
}

// -------------------------------------------------------------- model pass

TEST(Lint, M001DuplicateComponentName) {
    model::SystemModel m = clean_model();
    m.add_component("Pump", model::ComponentType::Actuator);
    lint::LintInput in;
    in.model = &m;
    const lint::Diagnostic& d =
        expect_once(lint::run_lint(in), "M001", lint::Severity::Error);
    EXPECT_EQ(d.subject, "Pump");
}

TEST(Lint, M002DanglingConnector) {
    model::SystemModel m = clean_model();
    // Tombstone the pump by hand: connect() validates endpoints and
    // remove_component() erases incident connectors, so a dangling edge can
    // only arise from direct mutation — exactly the defect M002 exists for.
    model::ComponentId pump = *m.find_component("Pump");
    m.component(pump).id = model::ComponentId{};
    const lint::Diagnostic& d =
        expect_once(lint::run_lint({.model = &m}), "M002", lint::Severity::Error);
    EXPECT_TRUE(d.subject.starts_with("connector#0")) << d.subject;
}

TEST(Lint, M003SelfLoopConnector) {
    model::SystemModel m = clean_model();
    model::ComponentId sup = *m.find_component("Supervisor");
    m.connect(sup, sup, "loopback");
    const lint::Diagnostic& d =
        expect_once(lint::run_lint({.model = &m}), "M003", lint::Severity::Warning);
    EXPECT_NE(d.subject.find("Supervisor -> Supervisor"), std::string::npos) << d.subject;
}

TEST(Lint, M004DuplicateLink) {
    model::SystemModel m = clean_model();
    model::ComponentId sup = *m.find_component("Supervisor");
    model::ComponentId pump = *m.find_component("Pump");
    // The fixture already has one bidirectional Supervisor<->Pump link;
    // a second forward connector makes the forward direction double-covered.
    m.connect(sup, pump, "duplicate channel");
    const lint::Diagnostic& d =
        expect_once(lint::run_lint({.model = &m}), "M004", lint::Severity::Warning);
    EXPECT_EQ(d.subject, "Supervisor <-> Pump");
}

TEST(Lint, M004OppositeDirectionsAreNotDuplicates) {
    model::SystemModel m("t", "");
    model::ComponentId a = m.add_component("A", model::ComponentType::Compute);
    model::ComponentId b = m.add_component("B", model::ComponentType::Compute);
    m.component(a).external_facing = true;
    m.connect(a, b, "request");
    m.connect(b, a, "response");
    lint::LintResult r = lint::run_lint({.model = &m});
    EXPECT_TRUE(with_code(r, "M004").empty()) << r.render_text();
}

TEST(Lint, M005EmptyAttribute) {
    model::SystemModel m = clean_model();
    model::ComponentId pump = *m.find_component("Pump");
    model::Attribute blank;
    blank.name = "firmware";
    blank.value = "   ";
    m.set_attribute(pump, blank);
    const lint::Diagnostic& d =
        expect_once(lint::run_lint({.model = &m}), "M005", lint::Severity::Warning);
    EXPECT_EQ(d.subject, "Pump.firmware");
}

TEST(Lint, M006UnreachableComponent) {
    model::SystemModel m = clean_model();
    m.add_component("Island", model::ComponentType::Compute);
    const lint::Diagnostic& d =
        expect_once(lint::run_lint({.model = &m}), "M006", lint::Severity::Warning);
    EXPECT_EQ(d.subject, "Island");
}

TEST(Lint, M007NoEntryPoint) {
    model::SystemModel m = clean_model();
    model::ComponentId sup = *m.find_component("Supervisor");
    m.component(sup).external_facing = false;
    lint::LintResult r = lint::run_lint({.model = &m});
    const lint::Diagnostic d = expect_once(r, "M007", lint::Severity::Note);
    EXPECT_EQ(d.subject, "plant");
    // Without entry points, M006 stands down (it would flag everything).
    EXPECT_TRUE(with_code(r, "M006").empty());
}

// ----------------------------------------------------------------- kb pass

TEST(Lint, K001DuplicateRecordId) {
    kb::Corpus c = clean_corpus();
    kb::Weakness dup;
    dup.id = {79};
    dup.name = "second CWE-79";
    c.add(dup);
    const lint::Diagnostic& d =
        expect_once(lint::run_lint({.corpus = &c}), "K001", lint::Severity::Error);
    EXPECT_EQ(d.subject, "CWE-79");
}

TEST(Lint, K002MalformedPlatform) {
    kb::Corpus c = clean_corpus();
    kb::Vulnerability v;
    v.id = {2021, 7};
    v.platforms.push_back({kb::PlatformPart::Application, "Acme Corp", "widget", ""});
    c.add(v);
    const lint::Diagnostic& d =
        expect_once(lint::run_lint({.corpus = &c}), "K002", lint::Severity::Error);
    EXPECT_EQ(d.subject, "CVE-2021-7");
}

TEST(Lint, K003InvalidCvssVector) {
    kb::Corpus c = clean_corpus();
    kb::Vulnerability v;
    v.id = {2021, 8};
    v.cvss_vector = "CVSS:3.1/AV:banana";
    c.add(v);
    const lint::Diagnostic& d =
        expect_once(lint::run_lint({.corpus = &c}), "K003", lint::Severity::Error);
    EXPECT_EQ(d.subject, "CVE-2021-8");
}

TEST(Lint, K004DanglingCrossReference) {
    kb::Corpus c = clean_corpus();
    kb::AttackPattern p;
    p.id = {999};
    p.name = "orphan pattern";
    p.related_weaknesses = {{4242}};
    c.add(p);
    const lint::Diagnostic& d =
        expect_once(lint::run_lint({.corpus = &c}), "K004", lint::Severity::Error);
    EXPECT_EQ(d.subject, "CAPEC-999");
    EXPECT_NE(d.message.find("CWE-4242"), std::string::npos);
}

TEST(Lint, K005MissingParent) {
    kb::Corpus c = clean_corpus();
    kb::Weakness w;
    w.id = {500};
    w.parent = {501}; // absent
    c.add(w);
    const lint::Diagnostic& d =
        expect_once(lint::run_lint({.corpus = &c}), "K005", lint::Severity::Error);
    EXPECT_EQ(d.subject, "CWE-500");
}

TEST(Lint, K005ParentCycleReportedOnceOnSmallestMember) {
    kb::Corpus c = clean_corpus();
    kb::Weakness w1;
    w1.id = {600};
    w1.parent = {601};
    c.add(w1);
    kb::Weakness w2;
    w2.id = {601};
    w2.parent = {600};
    c.add(w2);
    const lint::Diagnostic& d =
        expect_once(lint::run_lint({.corpus = &c}), "K005", lint::Severity::Error);
    EXPECT_EQ(d.subject, "CWE-600");
    EXPECT_NE(d.message.find("cycle"), std::string::npos);
}

// -------------------------------------------------------- consequence pass

TEST(Lint, C001UnknownUcaController) {
    model::SystemModel m = clean_model();
    safety::HazardModel h = clean_hazards();
    safety::UnsafeControlAction uca;
    uca.id = "UCA-9";
    uca.controller = "Ghost PLC";
    uca.hazards = {"H-1"};
    h.add(uca);
    const lint::Diagnostic d = expect_once(lint::run_lint({.model = &m, .hazards = &h}),
                                            "C001", lint::Severity::Warning);
    EXPECT_EQ(d.subject, "UCA-9");
}

TEST(Lint, C002UntraceableHazard) {
    model::SystemModel m = clean_model();
    safety::HazardModel h = clean_hazards();
    h.add(safety::Hazard{"H-2", "unreferenced hazard", {"L-1"}});
    const lint::Diagnostic d = expect_once(lint::run_lint({.model = &m, .hazards = &h}),
                                            "C002", lint::Severity::Warning);
    EXPECT_EQ(d.subject, "H-2");
}

TEST(Lint, C003UnmappedVulnerableComponent) {
    model::SystemModel m = clean_model();
    m.add_component("Island", model::ComponentType::Compute);
    safety::HazardModel h = clean_hazards();
    // Pump can pivot to the Supervisor (UCA controller); Island cannot.
    search::AssociationMap assoc = vuln_assoc({"Pump", "Island"});
    lint::LintInput in;
    in.model = &m;
    in.hazards = &h;
    in.associations = &assoc;
    const lint::Diagnostic& d =
        expect_once(lint::run_lint(in), "C003", lint::Severity::Warning);
    EXPECT_EQ(d.subject, "Island");
}

TEST(Lint, C004MissingHazardModel) {
    search::AssociationMap assoc = vuln_assoc({"Pump"});
    lint::LintInput in;
    in.associations = &assoc; // no hazard model attached
    lint::LintResult r = lint::run_lint(in);
    const lint::Diagnostic d = expect_once(r, "C004", lint::Severity::Note);
    EXPECT_EQ(d.subject, "model");
    EXPECT_EQ(r.diagnostics.size(), 1u);
}

// ------------------------------------------------------- options + driver

namespace {
/// A fixture tripping rules in all three passes, for option/driver tests.
struct DefectFixture {
    model::SystemModel m = clean_model();
    kb::Corpus c = clean_corpus();
    safety::HazardModel h = clean_hazards();
    DefectFixture() {
        m.add_component("Pump", model::ComponentType::Actuator); // M001
        m.add_component("Island", model::ComponentType::Compute); // M006
        kb::Weakness w;
        w.id = {500};
        w.parent = {501};
        c.add(w); // K005
        safety::UnsafeControlAction uca;
        uca.id = "UCA-9";
        uca.controller = "Ghost PLC";
        h.add(uca); // C001
    }
    [[nodiscard]] lint::LintInput input() const { return {.model = &m, .corpus = &c, .hazards = &h}; }
};
} // namespace

TEST(Lint, DisabledRuleDoesNotRun) {
    DefectFixture f;
    lint::LintOptions opts;
    opts.disabled.insert("M001");
    lint::LintResult r = lint::run_lint(f.input(), opts);
    EXPECT_TRUE(with_code(r, "M001").empty());
    EXPECT_EQ(r.rules_run, lint::registry().size() - 1);
    EXPECT_FALSE(with_code(r, "M006").empty()); // others still run
}

TEST(Lint, SeverityOverridePromotesAndDemotes) {
    DefectFixture f;
    lint::LintOptions opts;
    opts.severity_overrides["M006"] = lint::Severity::Error;
    opts.severity_overrides["K005"] = lint::Severity::Note;
    lint::LintResult r = lint::run_lint(f.input(), opts);
    EXPECT_EQ(with_code(r, "M006")[0]->severity, lint::Severity::Error);
    EXPECT_EQ(with_code(r, "K005")[0]->severity, lint::Severity::Note);
    EXPECT_FALSE(r.ok()); // the promoted M006 now gates
}

TEST(Lint, StreamIsByteIdenticalAcrossThreadCounts) {
    DefectFixture f;
    lint::LintOptions serial;
    serial.threads = 1;
    lint::LintOptions wide;
    wide.threads = 8;
    const std::string reference = lint::run_lint(f.input(), serial).render_text();
    EXPECT_FALSE(reference.empty());
    for (int round = 0; round < 3; ++round) {
        EXPECT_EQ(lint::run_lint(f.input(), wide).render_text(), reference)
            << "round " << round;
        EXPECT_EQ(lint::run_lint(f.input(), serial).render_text(), reference)
            << "round " << round;
    }
}

TEST(Lint, DiagnosticsAreSortedByCodeSubjectMessage) {
    DefectFixture f;
    lint::LintResult r = lint::run_lint(f.input());
    EXPECT_TRUE(std::is_sorted(r.diagnostics.begin(), r.diagnostics.end(),
                               lint::diagnostic_less));
}

TEST(Lint, ToStringAndJsonCarryAllFields) {
    DefectFixture f;
    lint::LintResult r = lint::run_lint(f.input());
    const lint::Diagnostic& d = *with_code(r, "M001")[0];
    std::string line = lint::to_string(d);
    EXPECT_NE(line.find("error[M001]"), std::string::npos) << line;
    EXPECT_NE(line.find("Pump"), std::string::npos) << line;
    json::Value doc = r.to_json();
    EXPECT_EQ(doc.at("counts").get_int("errors"),
              static_cast<std::int64_t>(r.errors()));
    EXPECT_EQ(doc.at("diagnostics").as_array().size(), r.diagnostics.size());
}

// --------------------------------------------------------- session wiring

namespace {
const kb::Corpus& session_corpus() {
    static const kb::Corpus corpus =
        synth::generate_corpus(synth::CorpusProfile::scaled(0.1, 99));
    return corpus;
}
} // namespace

TEST(LintSession, FailOnLintErrorGatesAssociation) {
    model::SystemModel broken = synth::centrifuge_model();
    broken.add_component("BPCS platform", model::ComponentType::Compute); // M001
    core::SessionOptions opts;
    opts.fail_on_lint_error = true;
    core::AnalysisSession gated(broken, session_corpus(), opts);
    EXPECT_THROW((void)gated.associations(), ValidationError);
    // The same model passes without the gate (M001 is the only error).
    core::AnalysisSession open(std::move(broken), session_corpus());
    EXPECT_GT(open.associations().total(), 0u);
}

TEST(LintSession, LintCountsSurfaceInAssocMetrics) {
    core::AnalysisSession s(synth::centrifuge_model(), session_corpus());
    s.set_hazards(synth::centrifuge_hazards());
    lint::LintResult r = s.lint();
    EXPECT_TRUE(r.ok()) << r.render_text();
    search::AssocMetrics metrics = s.assoc_metrics();
    EXPECT_TRUE(metrics.lint.ran());
    EXPECT_EQ(metrics.lint.rules_run, lint::registry().size());
    EXPECT_EQ(metrics.lint.errors, r.errors());
    EXPECT_EQ(metrics.lint.warnings, r.warnings());
    EXPECT_NE(metrics.summary().find("lint"), std::string::npos);
}

TEST(LintSession, ReportCarriesDiagnosticsSection) {
    core::AnalysisSession s(synth::centrifuge_model(), session_corpus());
    s.set_hazards(synth::centrifuge_hazards());
    dashboard::Report r = s.report();
    ASSERT_NE(r.find_section("Diagnostics"), nullptr);
}

// ------------------------------------------------------------ option hygiene

TEST(Lint, UnknownRuleCodesAreRejected) {
    model::SystemModel m = clean_model();
    lint::LintInput in;
    in.model = &m;

    lint::LintOptions bad_disable;
    bad_disable.disabled.insert("M999");
    EXPECT_THROW(lint::run_lint(in, bad_disable), ValidationError);

    lint::LintOptions bad_override;
    bad_override.severity_overrides["Z123"] = lint::Severity::Error;
    EXPECT_THROW(lint::run_lint(in, bad_override), ValidationError);

    // The error names every offender, sorted, so a CI config typo is
    // diagnosable from the message alone.
    lint::LintOptions both;
    both.disabled.insert("M999");
    both.severity_overrides["A000"] = lint::Severity::Note;
    try {
        (void)lint::run_lint(in, both);
        FAIL() << "expected ValidationError";
    } catch (const ValidationError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("A000"), std::string::npos) << what;
        EXPECT_NE(what.find("M999"), std::string::npos) << what;
        EXPECT_LT(what.find("A000"), what.find("M999")) << what;
    }
}

// ------------------------------------------------------------------- SARIF

TEST(Lint, SarifDocumentCarriesRulesAndResults) {
    DefectFixture f;
    lint::LintResult r = lint::run_lint(f.input());
    ASSERT_FALSE(r.diagnostics.empty());

    json::Value doc = r.to_sarif();
    EXPECT_EQ(doc.at("version").as_string(), "2.1.0");
    const json::Value& run = doc.at("runs").as_array().at(0);
    const json::Value& driver = run.at("tool").at("driver");
    EXPECT_EQ(driver.at("name").as_string(), "cybok-lint");
    EXPECT_EQ(driver.at("rules").as_array().size(), lint::registry().size());

    const auto& results = run.at("results").as_array();
    ASSERT_EQ(results.size(), r.diagnostics.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        const json::Value& res = results.at(i);
        EXPECT_EQ(res.at("ruleId").as_string(), r.diagnostics[i].code);
        const std::string& level = res.at("level").as_string();
        EXPECT_TRUE(level == "error" || level == "warning" || level == "note");
        // The subject travels as a logical location.
        const json::Value& loc = res.at("locations").as_array().at(0);
        EXPECT_EQ(loc.at("logicalLocations")
                      .as_array()
                      .at(0)
                      .at("name")
                      .as_string(),
                  r.diagnostics[i].subject);
    }
}

// --------------------------------------------------------------- flow rules

namespace {

/// Entry -> Mid -> Ctl chain seeded so each F-rule fires exactly once:
/// Entry and Mid saturate permeability (taint 1.0), Ctl's weaker evidence
/// keeps its taint in [0.5, 0.8) — an F001 error without a second F002.
struct FlowDefectFixture {
    model::SystemModel m{"flowdefect", "seeded flow findings"};
    safety::HazardModel hz;
    search::AssociationMap assoc;

    FlowDefectFixture() {
        const auto entry = m.add_component("Entry", model::ComponentType::Compute);
        const auto mid = m.add_component("Mid", model::ComponentType::Network);
        const auto ctl = m.add_component("Ctl", model::ComponentType::Controller);
        m.component(entry).external_facing = true;
        m.connect(entry, mid, "e-m");
        m.connect(mid, ctl, "m-c");

        hz.add(safety::Loss{"L-1", "loss of containment"});
        hz.add(safety::Hazard{"H-1", "unsafe actuation", {"L-1"}});
        safety::UnsafeControlAction uca;
        uca.id = "UCA-1";
        uca.controller = "Ctl";
        uca.action = "actuate";
        uca.hazards = {"H-1"};
        hz.add(uca);

        for (const auto& [name, vectors, cvss] :
             {std::tuple<const char*, int, double>{"Entry", 64, 10.0},
              {"Mid", 64, 10.0},
              {"Ctl", 1, 6.0}}) {
            search::ComponentAssociation ca;
            ca.component = name;
            search::AttributeAssociation aa;
            aa.attribute_name = "role";
            aa.attribute_value = "stub";
            for (int i = 0; i < vectors; ++i) {
                search::Match match;
                match.cls = search::VectorClass::Weakness;
                match.id = "CWE-" + std::to_string(100 + i);
                match.severity = i == 0 ? cvss : -1.0;
                aa.matches.push_back(std::move(match));
            }
            ca.attributes.push_back(std::move(aa));
            assoc.components.push_back(std::move(ca));
        }
    }

    lint::LintInput input() const {
        lint::LintInput in;
        in.model = &m;
        in.hazards = &hz;
        in.associations = &assoc;
        return in;
    }
};

} // namespace

TEST(Lint, F001TaintedHazardPath) {
    FlowDefectFixture f;
    lint::Diagnostic d =
        expect_once(lint::run_lint(f.input()), "F001", lint::Severity::Error);
    EXPECT_EQ(d.subject, "Ctl");
    EXPECT_NE(d.message.find("H-1"), std::string::npos) << d.message;
}

TEST(Lint, F002UnattenuatedExternalReach) {
    FlowDefectFixture f;
    lint::Diagnostic d =
        expect_once(lint::run_lint(f.input()), "F002", lint::Severity::Warning);
    EXPECT_EQ(d.subject, "Mid");
}

TEST(Lint, F003SingleChokepoint) {
    FlowDefectFixture f;
    lint::Diagnostic d =
        expect_once(lint::run_lint(f.input()), "F003", lint::Severity::Note);
    EXPECT_EQ(d.subject, "Mid");
}

TEST(Lint, FlowRulesAreGatedOnAssociations) {
    // Without an association map the flow pass has no evidence to reason
    // from: the F-rules stay silent instead of reporting a vacuously
    // un-tainted model (this is what keeps association-free CI runs clean).
    FlowDefectFixture f;
    lint::LintInput in = f.input();
    in.associations = nullptr;
    lint::LintResult r = lint::run_lint(in);
    EXPECT_TRUE(with_code(r, "F001").empty());
    EXPECT_TRUE(with_code(r, "F002").empty());
    EXPECT_TRUE(with_code(r, "F003").empty());
}

TEST(Lint, FlowTimingSurfacesInJson) {
    FlowDefectFixture f;
    lint::LintResult r = lint::run_lint(f.input());
    json::Value v = r.to_json();
    EXPECT_TRUE(v.at("timings").contains("flow_ns"));
}
