#include <gtest/gtest.h>

#include <algorithm>

#include "safety/control_structure.hpp"
#include "safety/hazards.hpp"
#include "safety/trace.hpp"
#include "synth/scada.hpp"

using namespace cybok;
using namespace cybok::safety;

// ----------------------------------------------------------------- hazards

namespace {
HazardModel tiny_hazards() {
    HazardModel hm;
    hm.add(Loss{"L-1", "loss of product"});
    hm.add(Hazard{"H-1", "process out of bounds", {"L-1"}});
    hm.add(UnsafeControlAction{"UCA-1", "PLC", "set speed", UcaType::Providing,
                               "while out of tolerance", {"H-1"}});
    return hm;
}
} // namespace

TEST(HazardModel, LookupByIds) {
    HazardModel hm = tiny_hazards();
    ASSERT_NE(hm.find_loss("L-1"), nullptr);
    ASSERT_NE(hm.find_hazard("H-1"), nullptr);
    ASSERT_NE(hm.find_uca("UCA-1"), nullptr);
    EXPECT_EQ(hm.find_loss("L-9"), nullptr);
    EXPECT_EQ(hm.find_hazard("H-9"), nullptr);
    EXPECT_EQ(hm.find_uca("UCA-9"), nullptr);
}

TEST(HazardModel, UcasForController) {
    HazardModel hm = tiny_hazards();
    EXPECT_EQ(hm.ucas_for_controller("PLC").size(), 1u);
    EXPECT_TRUE(hm.ucas_for_controller("Other").empty());
}

TEST(HazardModel, ValidateCleanModel) {
    EXPECT_TRUE(tiny_hazards().validate().empty());
}

TEST(HazardModel, ValidateCatchesBrokenReferences) {
    HazardModel hm;
    hm.add(Loss{"L-1", "x"});
    hm.add(Loss{"L-1", "duplicate"});
    hm.add(Hazard{"H-1", "unlinked hazard", {}});
    hm.add(Hazard{"H-2", "dangling", {"L-9"}});
    hm.add(UnsafeControlAction{"UCA-1", "PLC", "act", UcaType::Providing, "ctx", {"H-9"}});
    auto issues = hm.validate();
    auto has = [&](std::string_view needle) {
        return std::any_of(issues.begin(), issues.end(), [&](const std::string& s) {
            return s.find(needle) != std::string::npos;
        });
    };
    EXPECT_TRUE(has("duplicate id: L-1"));
    EXPECT_TRUE(has("linked to no losses"));
    EXPECT_TRUE(has("unknown loss L-9"));
    EXPECT_TRUE(has("unknown hazard H-9"));
}

TEST(HazardModel, UcaTypeNames) {
    EXPECT_EQ(uca_type_name(UcaType::NotProviding), "not-providing");
    EXPECT_EQ(uca_type_name(UcaType::WrongDuration), "wrong-duration");
}

TEST(HazardModel, CentrifugeFixtureIsValid) {
    EXPECT_TRUE(synth::centrifuge_hazards().validate().empty());
    EXPECT_TRUE(synth::uav_hazards().validate().empty());
}

// -------------------------------------------------------- control structure

TEST(ControlStructure, ExtractFromCentrifuge) {
    ControlStructure cs = extract_control_structure(synth::centrifuge_model());
    EXPECT_TRUE(cs.is_controller("BPCS platform"));
    EXPECT_TRUE(cs.is_controller("SIS platform"));
    EXPECT_FALSE(cs.is_controller("Temperature sensor"));
    ASSERT_EQ(cs.controlled_processes.size(), 1u);
    EXPECT_EQ(cs.controlled_processes[0], "Centrifuge");

    // BPCS and SIS both drive the centrifuge.
    int drives = 0;
    for (const ControlAction& a : cs.actions)
        if (a.controlled == "Centrifuge") ++drives;
    EXPECT_EQ(drives, 2);

    // Temperature feedback reaches both controllers.
    EXPECT_EQ(cs.feedback_into("BPCS platform").size(), 1u);
    EXPECT_EQ(cs.feedback_into("SIS platform").size(), 1u);
    EXPECT_EQ(cs.feedback_into("BPCS platform")[0].source, "Temperature sensor");
}

TEST(ControlStructure, ComputeCommandingActuatorIsController) {
    model::SystemModel m("t", "");
    model::ComponentId ws = m.add_component("WS", model::ComponentType::Compute);
    model::ComponentId pump = m.add_component("Pump", model::ComponentType::Actuator);
    m.connect(ws, pump, "drive");
    ControlStructure cs = extract_control_structure(m);
    EXPECT_TRUE(cs.is_controller("WS"));
}

TEST(ControlStructure, ControllerToControllerIsAnAction) {
    // BPCS -> SIS status exchange appears as an action between controllers.
    ControlStructure cs = extract_control_structure(synth::centrifuge_model());
    bool found = false;
    for (const ControlAction& a : cs.actions)
        if (a.controller == "BPCS platform" && a.controlled == "SIS platform") found = true;
    EXPECT_TRUE(found);
}

// -------------------------------------------------------------------- trace

namespace {

/// Association map stub: every named component carries `n` fake matches.
search::AssociationMap fake_assoc(std::initializer_list<std::pair<const char*, int>> items) {
    search::AssociationMap map;
    for (const auto& [name, n] : items) {
        search::ComponentAssociation ca;
        ca.component = name;
        search::AttributeAssociation aa;
        aa.attribute_name = "role";
        aa.attribute_value = "stub";
        for (int i = 0; i < n; ++i) {
            search::Match m;
            m.cls = search::VectorClass::Weakness;
            m.id = "CWE-" + std::to_string(100 + i);
            m.title = "stub weakness";
            aa.matches.push_back(std::move(m));
        }
        ca.attributes.push_back(std::move(aa));
        map.components.push_back(std::move(ca));
    }
    return map;
}

} // namespace

TEST(ConsequenceTrace, DirectControllerCompromise) {
    model::SystemModel m = synth::centrifuge_model();
    HazardModel hm = synth::centrifuge_hazards();
    ConsequenceAnalyzer analyzer(m, hm);

    auto traces = analyzer.trace(fake_assoc({{"BPCS platform", 2}}));
    // BPCS has three own UCAs plus a path to the SIS (serial link) with two
    // more.
    ASSERT_GE(traces.size(), 3u);
    EXPECT_EQ(traces.front().pivot_hops(), 0u);
    EXPECT_EQ(traces.front().component, "BPCS platform");
    EXPECT_EQ(traces.front().vector_count, 2u);
    // Hazards resolve to losses.
    for (const ConsequenceTrace& t : traces) {
        EXPECT_FALSE(t.hazard_ids.empty());
        EXPECT_FALSE(t.loss_ids.empty());
    }
}

TEST(ConsequenceTrace, PivotPathFromEntryPoint) {
    model::SystemModel m = synth::centrifuge_model();
    HazardModel hm = synth::centrifuge_hazards();
    ConsequenceAnalyzer analyzer(m, hm);

    auto traces = analyzer.trace(fake_assoc({{"Programming WS", 1}}));
    ASSERT_FALSE(traces.empty());
    // The WS is not a controller; every trace pivots through the firewall.
    for (const ConsequenceTrace& t : traces) {
        ASSERT_GE(t.pivot_path.size(), 3u);
        EXPECT_EQ(t.pivot_path.front(), "Programming WS");
        EXPECT_EQ(t.pivot_path[1], "Control firewall");
    }
    // The SIS trip UCAs (UCA-4/5) require one more hop than BPCS UCAs.
    auto uca4 = std::find_if(traces.begin(), traces.end(),
                             [](const ConsequenceTrace& t) { return t.uca_id == "UCA-4"; });
    ASSERT_NE(uca4, traces.end());
    EXPECT_EQ(uca4->pivot_hops(), 3u); // WS -> FW -> BPCS -> SIS
}

TEST(ConsequenceTrace, NoVectorsNoTraces) {
    model::SystemModel m = synth::centrifuge_model();
    HazardModel hm = synth::centrifuge_hazards();
    ConsequenceAnalyzer analyzer(m, hm);
    EXPECT_TRUE(analyzer.trace(fake_assoc({{"BPCS platform", 0}})).empty());
    EXPECT_TRUE(analyzer.trace(search::AssociationMap{}).empty());
}

TEST(ConsequenceTrace, UnreachableControllerProducesNoTrace) {
    // Sensor -> (nothing): the temperature sensor has no forward path to
    // the SIS? It does (feedback edge). Use the Centrifuge instead: it has
    // no outgoing edges at all.
    model::SystemModel m = synth::centrifuge_model();
    HazardModel hm = synth::centrifuge_hazards();
    ConsequenceAnalyzer analyzer(m, hm);
    auto traces = analyzer.trace(fake_assoc({{"Centrifuge", 3}}));
    EXPECT_TRUE(traces.empty());
}

TEST(ConsequenceTrace, ExternallyReachableFiltersEntryPoints) {
    model::SystemModel m = synth::centrifuge_model();
    HazardModel hm = synth::centrifuge_hazards();
    ConsequenceAnalyzer analyzer(m, hm);
    auto assoc = fake_assoc({{"Programming WS", 1}, {"BPCS platform", 1}});
    auto all = analyzer.trace(assoc);
    auto external = analyzer.externally_reachable(assoc);
    EXPECT_GT(all.size(), external.size());
    for (const ConsequenceTrace& t : external) EXPECT_EQ(t.component, "Programming WS");
}

TEST(ConsequenceTrace, TracesSortedByDirectness) {
    model::SystemModel m = synth::centrifuge_model();
    HazardModel hm = synth::centrifuge_hazards();
    ConsequenceAnalyzer analyzer(m, hm);
    auto traces =
        analyzer.trace(fake_assoc({{"Programming WS", 1}, {"BPCS platform", 1}}));
    for (std::size_t i = 1; i < traces.size(); ++i)
        EXPECT_LE(traces[i - 1].pivot_hops(), traces[i].pivot_hops());
}

TEST(ConsequenceTrace, ToStringIsReadable) {
    model::SystemModel m = synth::centrifuge_model();
    HazardModel hm = synth::centrifuge_hazards();
    ConsequenceAnalyzer analyzer(m, hm);
    auto traces = analyzer.trace(fake_assoc({{"Programming WS", 2}}));
    ASSERT_FALSE(traces.empty());
    std::string s = to_string(traces.front());
    EXPECT_NE(s.find("Programming WS"), std::string::npos);
    EXPECT_NE(s.find("CWE-100"), std::string::npos);
    EXPECT_NE(s.find("UCA-"), std::string::npos);
    EXPECT_NE(s.find("losses:"), std::string::npos);
}

TEST(ConsequenceTrace, ExampleVectorsPreferWeaknesses) {
    model::SystemModel m = synth::centrifuge_model();
    HazardModel hm = synth::centrifuge_hazards();
    ConsequenceAnalyzer analyzer(m, hm);
    search::AssociationMap assoc = fake_assoc({{"BPCS platform", 5}});
    auto traces = analyzer.trace(assoc);
    ASSERT_FALSE(traces.empty());
    EXPECT_LE(traces[0].example_vectors.size(), 3u);
    EXPECT_EQ(traces[0].example_vectors[0].substr(0, 4), "CWE-");
}
