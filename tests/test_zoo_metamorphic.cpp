// Metamorphic properties over the analysis stack, driven by zoo-generated
// systems: relations that must hold between an analysis run and a
// mutated re-run, checked across >= 8 zoo seeds each.
//
//   1. Hardening monotonicity — removing a component's PlatformRef (less
//      attack-surface evidence) never makes that system's fleet risk or
//      rank worse.
//   2. Disconnected-component invariance — adding an unconnected
//      component leaves every pre-existing component's flow values, the
//      hazard slices, and the chokepoint ranking byte-identical.
//   3. Chokepoint sensitivity — a model whose entry->hazard traffic
//      pivots through one component triggers F003; adding a bypass path
//      around (or removing) that component changes the F003 output.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/fleet.hpp"
#include "flow/flow.hpp"
#include "lint/lint.hpp"
#include "search/association.hpp"
#include "synth/corpus_gen.hpp"
#include "synth/zoo.hpp"

using namespace cybok;

namespace {

constexpr std::uint64_t kSeeds[] = {11, 12, 13, 14, 15, 16, 17, 18};

/// One engine over a small deterministic corpus, shared by every test in
/// this file (cold index builds dominate otherwise).
const search::SearchEngine& shared_engine() {
    static const kb::Corpus corpus =
        synth::generate_corpus(synth::CorpusProfile::scaled(0.05, 42));
    static const search::SearchEngine engine(corpus);
    return engine;
}

synth::ZooSystem make_system(synth::ZooDomain domain, std::uint64_t seed,
                             std::size_t components) {
    synth::ZooConfig config;
    config.domain = domain;
    config.seed = seed;
    config.components = components;
    return synth::generate_zoo_system(config);
}

/// First (component, attribute) carrying a PlatformRef, by model order.
struct PlatformRefSite {
    model::ComponentId component;
    std::string attribute;
};
std::optional<PlatformRefSite> find_platform_ref(const model::SystemModel& m) {
    for (const model::Component& c : m.components()) {
        if (!c.id.valid()) continue;
        for (const model::Attribute& a : c.attributes)
            if (a.kind == model::AttributeKind::PlatformRef) return PlatformRefSite{c.id, a.name};
    }
    return std::nullopt;
}

std::vector<lint::Diagnostic> f003_diagnostics(const model::SystemModel& m,
                                               const safety::HazardModel& hazards) {
    const search::AssociationMap assoc = search::associate(m, shared_engine());
    lint::LintInput input;
    input.model = &m;
    input.hazards = &hazards;
    input.associations = &assoc;
    std::vector<lint::Diagnostic> out;
    for (const lint::Diagnostic& d : lint::run_lint(input).diagnostics)
        if (d.code == "F003") out.push_back(d);
    return out;
}

} // namespace

TEST(ZooMetamorphic, HardeningNeverWorsensFleetRank) {
    for (std::uint64_t seed : kSeeds) {
        // A four-domain fleet; the mutation target is the seed-th ranked
        // system that carries a PlatformRef to remove.
        std::vector<synth::ZooSystem> fleet;
        const auto& domains = synth::all_zoo_domains();
        for (std::size_t i = 0; i < domains.size(); ++i)
            fleet.push_back(make_system(domains[i], seed + i, 24));

        analysis::FleetOptions options;
        options.threads = 2;
        const analysis::FleetResult before =
            analysis::analyze_fleet(shared_engine(), fleet, options);
        ASSERT_EQ(before.failed, 0u) << "seed " << seed;

        std::size_t target = fleet.size();
        std::optional<PlatformRefSite> site;
        for (std::size_t i = 0; i < fleet.size(); ++i) {
            site = find_platform_ref(fleet[i].model);
            if (site.has_value()) {
                target = i;
                break;
            }
        }
        ASSERT_LT(target, fleet.size()) << "no PlatformRef anywhere at seed " << seed;
        const std::string name = fleet[target].model.name();
        const analysis::FleetSystemReport* was = before.find(name);
        ASSERT_NE(was, nullptr);

        ASSERT_TRUE(fleet[target].model.remove_attribute(site->component, site->attribute));
        const analysis::FleetResult after =
            analysis::analyze_fleet(shared_engine(), fleet, options);
        const analysis::FleetSystemReport* now = after.find(name);
        ASSERT_NE(now, nullptr);

        // Less evidence can only shrink vector mass, exposure, and risk —
        // so the system can never climb toward rank 1 (riskiest).
        EXPECT_LE(now->total_vectors(), was->total_vectors()) << name;
        EXPECT_LE(now->risk, was->risk) << name;
        EXPECT_GE(now->rank, was->rank) << name;
    }
}

TEST(ZooMetamorphic, DisconnectedComponentLeavesFlowUntouched) {
    for (std::size_t i = 0; i < std::size(kSeeds); ++i) {
        const synth::ZooDomain domain = synth::all_zoo_domains()[i % 4];
        synth::ZooSystem sys = make_system(domain, kSeeds[i], 30);

        const search::AssociationMap assoc = search::associate(sys.model, shared_engine());
        const flow::FlowResult before =
            flow::analyze(sys.model, assoc, &sys.hazards);

        const model::ComponentId orphan =
            sys.model.add_component("orphan-maintenance-cart", model::ComponentType::Other);
        model::Attribute role;
        role.name = "role";
        role.value = "portable diagnostic maintenance terminal";
        role.kind = model::AttributeKind::Descriptor;
        role.fidelity = model::Fidelity::Functional;
        sys.model.set_attribute(orphan, std::move(role));

        const search::AssociationMap assoc2 = search::associate(sys.model, shared_engine());
        flow::FlowResult after = flow::analyze(sys.model, assoc2, &sys.hazards);

        // The orphan has no edges and is not external-facing: zero taint,
        // unreachable, influencing nothing.
        const flow::ComponentFlow* of = after.find("orphan-maintenance-cart");
        ASSERT_NE(of, nullptr);
        EXPECT_EQ(of->taint, 0.0);
        EXPECT_FALSE(of->entry_point);
        EXPECT_TRUE(of->influences.empty());

        // Dropping its line from the result reproduces the original
        // fingerprint byte-for-byte: nothing else moved.
        std::erase_if(after.components, [](const flow::ComponentFlow& cf) {
            return cf.component == "orphan-maintenance-cart";
        });
        EXPECT_EQ(after.fingerprint(), before.fingerprint())
            << synth::zoo_domain_name(domain) << " seed " << kSeeds[i];
    }
}

TEST(ZooMetamorphic, SoleChokepointDrivesF003) {
    for (std::uint64_t seed : kSeeds) {
        // entry (HMI) -> gateway -> PLC(H-1 controller): every entry->hazard
        // flow pivots through the gateway. Roles reuse the zoo vocabulary so
        // each hop carries associated vectors (permeable at this corpus).
        model::SystemModel m("choke-" + std::to_string(seed), "");
        const auto add = [&](const std::string& name, model::ComponentType type,
                             const std::string& role_text, bool external) {
            const model::ComponentId id = m.add_component(name, type);
            m.component(id).external_facing = external;
            model::Attribute role;
            role.name = "role";
            role.value = role_text;
            role.kind = model::AttributeKind::Descriptor;
            role.fidelity = model::Fidelity::Functional;
            m.set_attribute(id, std::move(role));
            return id;
        };
        const auto hmi = add("plant-hmi", model::ComponentType::HumanInterface,
                             "plant operator human machine interface", true);
        const auto gw = add("control-gateway", model::ComponentType::Network,
                            "station bus network switch appliance", false);
        const auto plc = add("plc-0", model::ComponentType::Controller,
                             "programmable logic controller process control", false);
        m.connect(hmi, gw, "operator-lan", model::ChannelKind::Ethernet, true);
        m.connect(gw, plc, "modbus-tcp", model::ChannelKind::Fieldbus, true);
        // Seed-varied fan of leaf sensors below the PLC perturbs the graph
        // without adding a second entry->hazard route.
        for (std::uint64_t i = 0; i < 1 + seed % 4; ++i) {
            const auto s = add("sensor-" + std::to_string(i), model::ComponentType::Sensor,
                               "turbidity and chlorine measurement sensor probe", false);
            m.connect(s, plc, "measurement", model::ChannelKind::AnalogSignal);
        }

        safety::HazardModel hazards;
        hazards.add(safety::Loss{"L-1", "Unsafe water reaches consumers"});
        hazards.add(safety::Hazard{"H-1", "Chemical dose exceeds the safe band", {"L-1"}});
        hazards.add(safety::UnsafeControlAction{"UCA-1", "plc-0", "run the dosing pump",
                                                safety::UcaType::WrongDuration,
                                                "past the setpoint", {"H-1"}});

        const std::vector<lint::Diagnostic> before = f003_diagnostics(m, hazards);
        ASSERT_EQ(before.size(), 1u) << "seed " << seed;
        EXPECT_EQ(before[0].subject, "control-gateway");

        // A bypass route around the gateway: the min cut is no longer a
        // single component, so F003's output must change (here: silence).
        // The modem reuses the gateway's vocabulary so the bypass is
        // permeable — a role with no associated vectors would carry no
        // taint and leave the gateway a sole chokepoint.
        const auto bypass = add("engineering-modem", model::ComponentType::Network,
                                "station bus network switch appliance", false);
        m.connect(hmi, bypass, "dial-up", model::ChannelKind::Wireless, true);
        m.connect(bypass, plc, "serial-console", model::ChannelKind::Serial, true);
        const std::vector<lint::Diagnostic> after = f003_diagnostics(m, hazards);
        EXPECT_TRUE(after.empty()) << "seed " << seed;

        // And removing the erstwhile chokepoint entirely re-routes all
        // traffic through the bypass, making *it* the sole chokepoint —
        // different subject, again different F003 output.
        m.remove_component(gw);
        const std::vector<lint::Diagnostic> rerouted = f003_diagnostics(m, hazards);
        ASSERT_EQ(rerouted.size(), 1u) << "seed " << seed;
        EXPECT_EQ(rerouted[0].subject, "engineering-modem");
        EXPECT_NE(rerouted[0].subject, before[0].subject);
    }
}
