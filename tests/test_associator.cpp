// Unit coverage for the parallel association engine's parts: the thread
// pool (every index exactly once, load imbalance, exception propagation),
// the query cache (hit/miss, component invalidation, FIFO eviction), and
// AssocMetrics accounting end to end (hit rates, stage timings, JSON).

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "core/session.hpp"
#include "search/association.hpp"
#include "synth/corpus_gen.hpp"
#include "synth/scada.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

using namespace cybok;

namespace {
const kb::Corpus& small_corpus() {
    static const kb::Corpus corpus =
        synth::generate_corpus(synth::CorpusProfile::scaled(0.05, 7));
    return corpus;
}
} // namespace

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
    util::ThreadPool pool(4);
    constexpr std::size_t kN = 10'000;
    std::vector<std::atomic<int>> counts(kN);
    pool.parallel_for(kN, [&](std::size_t i) { counts[i].fetch_add(1); });
    for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(counts[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, SingleThreadRunsInline) {
    util::ThreadPool pool(1);
    EXPECT_EQ(pool.thread_count(), 1u);
    std::vector<int> order;
    pool.parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, UnevenWorkloadsComplete) {
    // One heavy item among many light ones — the chunked cursor must not
    // strand the tail behind the heavy chunk's owner.
    util::ThreadPool pool(4);
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(257, [&](std::size_t i) {
        std::size_t spin = (i == 3) ? 20'000 : 1;
        std::size_t acc = 0;
        for (std::size_t k = 0; k < spin; ++k) acc += k;
        sum.fetch_add(1 + (acc & 0)); // count completions
    });
    EXPECT_EQ(sum.load(), 257u);
}

TEST(ThreadPool, FirstExceptionPropagates) {
    util::ThreadPool pool(4);
    std::atomic<std::size_t> ran{0};
    EXPECT_THROW(pool.parallel_for(100,
                                   [&](std::size_t i) {
                                       ran.fetch_add(1);
                                       if (i == 42) throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
    // The loop drains (remaining indices still run) before rethrowing.
    EXPECT_EQ(ran.load(), 100u);
    // The pool is reusable after an exception.
    std::atomic<std::size_t> again{0};
    pool.parallel_for(10, [&](std::size_t) { again.fetch_add(1); });
    EXPECT_EQ(again.load(), 10u);
}

TEST(ThreadPool, ZeroItemsIsANoop) {
    util::ThreadPool pool(2);
    pool.parallel_for(0, [&](std::size_t) { FAIL() << "must not run"; });
}

// ------------------------------------------------------------ QueryCache

namespace {
search::Match mk_match(std::size_t idx) {
    search::Match m;
    m.cls = search::VectorClass::Weakness;
    m.corpus_index = idx;
    m.id = "CWE-" + std::to_string(idx);
    return m;
}
} // namespace

TEST(QueryCache, HitReturnsStoredValue) {
    search::QueryCache cache;
    EXPECT_FALSE(cache.get("k1", "compA").has_value());
    cache.put("k1", {mk_match(7)}, "compA");
    auto hit = cache.get("k1", "compB");
    ASSERT_TRUE(hit.has_value());
    ASSERT_EQ(hit->size(), 1u);
    EXPECT_EQ((*hit)[0].corpus_index, 7u);
}

TEST(QueryCache, InvalidateComponentDropsOnlyItsKeys) {
    search::QueryCache cache;
    cache.put("shared", {mk_match(1)}, "compA");
    cache.put("a-only", {mk_match(2)}, "compA");
    cache.put("b-only", {mk_match(3)}, "compB");
    // compB also reads the shared key -> it is recorded against both.
    (void)cache.get("shared", "compB");

    EXPECT_EQ(cache.invalidate_component("compA"), 2u); // shared + a-only
    EXPECT_FALSE(cache.get("a-only", "x").has_value());
    EXPECT_FALSE(cache.get("shared", "x").has_value()); // shared is dropped too
    EXPECT_TRUE(cache.get("b-only", "x").has_value());  // untouched component survives
    EXPECT_EQ(cache.invalidate_component("compA"), 0u); // idempotent
}

TEST(QueryCache, FifoEvictionBoundsSize) {
    search::QueryCache cache(3);
    for (int i = 0; i < 10; ++i)
        cache.put("k" + std::to_string(i), {mk_match(static_cast<std::size_t>(i))}, "c");
    EXPECT_LE(cache.size(), 3u);
    EXPECT_TRUE(cache.get("k9", "c").has_value());  // newest survives
    EXPECT_FALSE(cache.get("k0", "c").has_value()); // oldest evicted
}

// ------------------------------------------------------------ Associator

TEST(Associator, CacheHitsOnRepeatedAttributesAndRuns) {
    search::SearchEngine engine(small_corpus());
    search::AssocOptions opts;
    opts.threads = 2;
    search::Associator assoc(engine, opts);

    model::SystemModel m = synth::centrifuge_model();
    (void)assoc.associate(m);
    search::AssocMetrics cold = assoc.metrics();
    EXPECT_GT(cold.queries_run, 0u);
    EXPECT_EQ(cold.cache_misses, cold.queries_run); // every miss ran a query

    (void)assoc.associate(m);
    search::AssocMetrics warm = assoc.metrics();
    // Second run over an unchanged model: zero new engine queries.
    EXPECT_EQ(warm.queries_run, cold.queries_run);
    EXPECT_GT(warm.cache_hits, cold.cache_hits);
    EXPECT_GT(warm.cache_hit_rate(), 0.0);
}

TEST(Associator, MetricsStageTimingsAccumulate) {
    search::SearchEngine engine(small_corpus());
    search::Associator assoc(engine, {});
    (void)assoc.associate(synth::centrifuge_model());
    search::AssocMetrics m = assoc.metrics();
    EXPECT_GT(m.timings.wall_ns, 0u);
    EXPECT_GT(m.timings.lexical_ns, 0u);
    EXPECT_GT(m.components, 0u);
    EXPECT_GT(m.attributes, 0u);
    EXPECT_GT(m.total_candidates(), 0u);
    EXPECT_FALSE(m.summary().empty());

    assoc.reset_metrics();
    EXPECT_EQ(assoc.metrics().queries_run, 0u);
}

TEST(Associator, MetricsJsonRoundTrips) {
    search::SearchEngine engine(small_corpus());
    search::Associator assoc(engine, {});
    (void)assoc.associate(synth::centrifuge_model());
    json::Value v = assoc.metrics().to_json();
    ASSERT_TRUE(v.is_object());
    EXPECT_EQ(static_cast<std::size_t>(v.at("queries_run").as_int()),
              assoc.metrics().queries_run);
    EXPECT_TRUE(v.at("timings").is_object());
    // Serialize + parse back: the bench JSON sidecar path.
    json::Value back = json::parse(json::dump(v));
    EXPECT_EQ(back.at("cache_misses").as_int(), v.at("cache_misses").as_int());
}

TEST(Associator, FilterChainAppliedAfterCache) {
    search::SearchEngine engine(small_corpus());
    search::FilterChain chain;
    chain.add(search::by_class(search::VectorClass::Weakness));

    search::Associator assoc(engine, {});
    model::SystemModel m = synth::centrifuge_model();
    // Prime the cache unfiltered, then query filtered: the cached entry
    // must be stored pre-filter so both calls see correct results.
    search::AssociationMap unfiltered = assoc.associate(m);
    search::AssociationMap filtered = assoc.associate(m, &chain);
    EXPECT_GT(unfiltered.total(search::VectorClass::AttackPattern), 0u);
    EXPECT_EQ(filtered.total(search::VectorClass::AttackPattern), 0u);
    EXPECT_EQ(filtered.total(search::VectorClass::Weakness),
              unfiltered.total(search::VectorClass::Weakness));
}

TEST(Associator, OptionsSignatureSeparatesEngines) {
    search::EngineOptions a;
    search::EngineOptions b;
    b.lexical_vulnerabilities = true;
    EXPECT_NE(a.signature(), b.signature());
    search::EngineOptions c;
    c.ranker = search::EngineOptions::Ranker::Tfidf;
    EXPECT_NE(a.signature(), c.signature());
    EXPECT_EQ(a.signature(), search::EngineOptions{}.signature());
}

TEST(Associator, SessionSurfacesMetricsAndReportSection) {
    core::SessionOptions opts;
    opts.assoc.threads = 2;
    core::AnalysisSession session(synth::centrifuge_model(), small_corpus(), opts);
    (void)session.associations();
    search::AssocMetrics m = session.assoc_metrics();
    EXPECT_GT(m.queries_run, 0u);

    dashboard::Report report = session.report();
    const dashboard::Section* sec = report.find_section("Association engine");
    ASSERT_NE(sec, nullptr);
    EXPECT_FALSE(sec->lines.empty());
}

TEST(Associator, CommitInvalidatesOnlyRefinedComponent) {
    core::SessionOptions opts;
    core::AnalysisSession session(synth::centrifuge_model(), small_corpus(), opts);
    (void)session.associations();
    const std::size_t queries_before = session.assoc_metrics().queries_run;

    model::SystemModel candidate = session.model();
    model::ComponentId first = candidate.components().front().id;
    model::Attribute tweak;
    tweak.name = "note";
    tweak.value = "hardened supervisory role";
    candidate.set_attribute(first, tweak);
    session.commit(std::move(candidate));

    search::AssocMetrics m = session.assoc_metrics();
    // Only the touched component re-queried; the rest reused wholesale.
    EXPECT_GT(m.reused_components, 0u);
    EXPECT_GT(m.queries_run, queries_before);
    EXPECT_LT(m.queries_run - queries_before, m.attributes);
}
