#include <gtest/gtest.h>

#include <algorithm>

#include "graph/algorithms.hpp"
#include "graph/property_graph.hpp"

using namespace cybok::graph;

namespace {

/// a -> b -> c -> d with a side edge a -> c.
PropertyGraph diamondish() {
    PropertyGraph g;
    NodeId a = g.add_node("a");
    NodeId b = g.add_node("b");
    NodeId c = g.add_node("c");
    NodeId d = g.add_node("d");
    g.add_edge(a, b);
    g.add_edge(b, c);
    g.add_edge(c, d);
    g.add_edge(a, c);
    return g;
}

} // namespace

TEST(PropertyGraph, AddAndQueryNodes) {
    PropertyGraph g;
    NodeId a = g.add_node("alpha");
    NodeId b = g.add_node("beta");
    EXPECT_EQ(g.node_count(), 2u);
    EXPECT_EQ(g.node(a).label, "alpha");
    EXPECT_EQ(g.node(b).label, "beta");
    EXPECT_TRUE(g.contains(a));
    EXPECT_EQ(g.find_node("beta"), b);
    EXPECT_FALSE(g.find_node("gamma").has_value());
}

TEST(PropertyGraph, EdgesAndAdjacency) {
    PropertyGraph g;
    NodeId a = g.add_node("a");
    NodeId b = g.add_node("b");
    EdgeId e = g.add_edge(a, b, "link");
    EXPECT_EQ(g.edge_count(), 1u);
    EXPECT_EQ(g.edge(e).label, "link");
    EXPECT_EQ(g.out_degree(a), 1u);
    EXPECT_EQ(g.in_degree(b), 1u);
    EXPECT_EQ(g.successors(a), std::vector<NodeId>{b});
    EXPECT_EQ(g.predecessors(b), std::vector<NodeId>{a});
    EXPECT_TRUE(g.find_edge(a, b).has_value());
    EXPECT_FALSE(g.find_edge(b, a).has_value());
}

TEST(PropertyGraph, MultigraphAllowsParallelEdges) {
    PropertyGraph g;
    NodeId a = g.add_node("a");
    NodeId b = g.add_node("b");
    g.add_edge(a, b, "one");
    g.add_edge(a, b, "two");
    EXPECT_EQ(g.edge_count(), 2u);
    EXPECT_EQ(g.out_degree(a), 2u);
}

TEST(PropertyGraph, RemoveEdge) {
    PropertyGraph g;
    NodeId a = g.add_node("a");
    NodeId b = g.add_node("b");
    EdgeId e = g.add_edge(a, b);
    g.remove_edge(e);
    EXPECT_EQ(g.edge_count(), 0u);
    EXPECT_FALSE(g.contains(e));
    EXPECT_EQ(g.out_degree(a), 0u);
    EXPECT_THROW(g.remove_edge(e), cybok::NotFoundError);
}

TEST(PropertyGraph, RemoveNodeRemovesIncidentEdges) {
    PropertyGraph g = diamondish();
    NodeId c = *g.find_node("c");
    g.remove_node(c);
    EXPECT_EQ(g.node_count(), 3u);
    EXPECT_EQ(g.edge_count(), 1u); // only a->b survives
    EXPECT_THROW((void)g.node(c), cybok::NotFoundError);
}

TEST(PropertyGraph, NodeIdsNotReused) {
    PropertyGraph g;
    NodeId a = g.add_node("a");
    g.remove_node(a);
    NodeId b = g.add_node("b");
    EXPECT_NE(a, b);
    EXPECT_FALSE(g.contains(a));
}

TEST(PropertyGraph, Properties) {
    PropertyGraph g;
    NodeId a = g.add_node("a");
    g.set_property(a, "type", std::string("controller"));
    g.set_property(a, "count", std::int64_t{42});
    g.set_property(a, "score", 2.5);
    g.set_property(a, "flag", true);
    ASSERT_NE(g.get_property(a, "type"), nullptr);
    EXPECT_EQ(std::get<std::string>(*g.get_property(a, "type")), "controller");
    EXPECT_EQ(std::get<std::int64_t>(*g.get_property(a, "count")), 42);
    EXPECT_EQ(g.get_property(a, "missing"), nullptr);
    // Overwrite.
    g.set_property(a, "count", std::int64_t{7});
    EXPECT_EQ(std::get<std::int64_t>(*g.get_property(a, "count")), 7);
}

TEST(PropertyGraph, PropertyToString) {
    EXPECT_EQ(property_to_string(Property(std::string("x"))), "x");
    EXPECT_EQ(property_to_string(Property(std::int64_t{5})), "5");
    EXPECT_EQ(property_to_string(Property(true)), "true");
    EXPECT_EQ(property_to_string(Property(false)), "false");
}

TEST(PropertyGraph, NeighborsDeduplicates) {
    PropertyGraph g;
    NodeId a = g.add_node("a");
    NodeId b = g.add_node("b");
    g.add_edge(a, b);
    g.add_edge(b, a);
    EXPECT_EQ(g.neighbors(a), std::vector<NodeId>{b});
}

// ------------------------------------------------------------ algorithms

TEST(GraphAlgorithms, BfsOrderFromSource) {
    PropertyGraph g = diamondish();
    NodeId a = *g.find_node("a");
    std::vector<NodeId> order = bfs_order(g, a);
    EXPECT_EQ(order.size(), 4u);
    EXPECT_EQ(order.front(), a);
}

TEST(GraphAlgorithms, BfsBackward) {
    PropertyGraph g = diamondish();
    NodeId d = *g.find_node("d");
    EXPECT_EQ(bfs_order(g, d, Direction::Forward).size(), 1u);
    EXPECT_EQ(bfs_order(g, d, Direction::Backward).size(), 4u);
}

TEST(GraphAlgorithms, ReachableFromMultipleSources) {
    PropertyGraph g;
    NodeId a = g.add_node("a");
    NodeId b = g.add_node("b");
    NodeId c = g.add_node("c");
    g.add_edge(a, c);
    std::vector<NodeId> r = reachable_from(g, {a, b});
    EXPECT_EQ(r.size(), 3u);
}

TEST(GraphAlgorithms, TopologicalOrderOfDag) {
    PropertyGraph g = diamondish();
    auto order = topological_order(g);
    ASSERT_TRUE(order.has_value());
    auto pos = [&](std::string_view name) {
        NodeId n = *g.find_node(name);
        return std::find(order->begin(), order->end(), n) - order->begin();
    };
    EXPECT_LT(pos("a"), pos("b"));
    EXPECT_LT(pos("b"), pos("c"));
    EXPECT_LT(pos("c"), pos("d"));
}

TEST(GraphAlgorithms, CycleDetection) {
    PropertyGraph g;
    NodeId a = g.add_node("a");
    NodeId b = g.add_node("b");
    g.add_edge(a, b);
    EXPECT_FALSE(has_cycle(g));
    g.add_edge(b, a);
    EXPECT_TRUE(has_cycle(g));
    EXPECT_FALSE(topological_order(g).has_value());
}

TEST(GraphAlgorithms, WeaklyConnectedComponents) {
    PropertyGraph g;
    NodeId a = g.add_node("a");
    NodeId b = g.add_node("b");
    g.add_node("isolated");
    g.add_edge(a, b);
    auto comps = weakly_connected_components(g);
    ASSERT_EQ(comps.size(), 2u);
    EXPECT_EQ(comps[0].size(), 2u);
    EXPECT_EQ(comps[1].size(), 1u);
}

TEST(GraphAlgorithms, ShortestPathPrefersFewerHops) {
    PropertyGraph g = diamondish();
    NodeId a = *g.find_node("a");
    NodeId d = *g.find_node("d");
    std::vector<NodeId> path = shortest_path(g, a, d);
    ASSERT_EQ(path.size(), 3u); // a -> c -> d
    EXPECT_EQ(g.node(path[1]).label, "c");
}

TEST(GraphAlgorithms, ShortestPathUnreachableIsEmpty) {
    PropertyGraph g;
    NodeId a = g.add_node("a");
    NodeId b = g.add_node("b");
    EXPECT_TRUE(shortest_path(g, a, b).empty());
    EXPECT_EQ(shortest_path(g, a, a).size(), 1u);
}

TEST(GraphAlgorithms, BfsDistances) {
    PropertyGraph g = diamondish();
    NodeId a = *g.find_node("a");
    std::vector<std::uint32_t> dist = bfs_distances(g, a);
    EXPECT_EQ(dist[a.value], 0u);
    EXPECT_EQ(dist[g.find_node("b")->value], 1u);
    EXPECT_EQ(dist[g.find_node("c")->value], 1u);
    EXPECT_EQ(dist[g.find_node("d")->value], 2u);
}

TEST(GraphAlgorithms, AllSimplePathsEnumeratesBoth) {
    PropertyGraph g = diamondish();
    NodeId a = *g.find_node("a");
    NodeId d = *g.find_node("d");
    auto paths = all_simple_paths(g, a, d, 5);
    EXPECT_EQ(paths.size(), 2u); // a-b-c-d and a-c-d
}

TEST(GraphAlgorithms, AllSimplePathsRespectsHopLimit) {
    PropertyGraph g = diamondish();
    NodeId a = *g.find_node("a");
    NodeId d = *g.find_node("d");
    auto paths = all_simple_paths(g, a, d, 2);
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_EQ(paths[0].size(), 3u);
}

TEST(GraphAlgorithms, KShortestPathsOrdered) {
    PropertyGraph g = diamondish();
    NodeId a = *g.find_node("a");
    NodeId d = *g.find_node("d");
    auto paths = k_shortest_paths(g, a, d, 10);
    ASSERT_EQ(paths.size(), 2u);
    EXPECT_LE(paths[0].size(), paths[1].size());
    auto one = k_shortest_paths(g, a, d, 1);
    EXPECT_EQ(one.size(), 1u);
}

TEST(GraphAlgorithms, DegreeCentrality) {
    PropertyGraph g = diamondish();
    auto deg = degree_centrality(g);
    EXPECT_EQ(deg[*g.find_node("a")], 2u);
    EXPECT_EQ(deg[*g.find_node("c")], 3u);
    EXPECT_EQ(deg[*g.find_node("d")], 1u);
}

TEST(GraphAlgorithms, BetweennessCentralityOnPath) {
    // a -> b -> c: b lies on the single a..c shortest path.
    PropertyGraph g;
    NodeId a = g.add_node("a");
    NodeId b = g.add_node("b");
    NodeId c = g.add_node("c");
    g.add_edge(a, b);
    g.add_edge(b, c);
    auto cb = betweenness_centrality(g);
    EXPECT_DOUBLE_EQ(cb[b], 1.0);
    EXPECT_DOUBLE_EQ(cb[a], 0.0);
    EXPECT_DOUBLE_EQ(cb[c], 0.0);
}

TEST(GraphAlgorithms, BetweennessSplitsOverEqualPaths) {
    // Two parallel 2-hop routes a->{b,c}->d: each midpoint carries half.
    PropertyGraph g;
    NodeId a = g.add_node("a");
    NodeId b = g.add_node("b");
    NodeId c = g.add_node("c");
    NodeId d = g.add_node("d");
    g.add_edge(a, b);
    g.add_edge(a, c);
    g.add_edge(b, d);
    g.add_edge(c, d);
    auto cb = betweenness_centrality(g);
    EXPECT_DOUBLE_EQ(cb[b], 0.5);
    EXPECT_DOUBLE_EQ(cb[c], 0.5);
}

TEST(GraphAlgorithms, ArticulationPoints) {
    // a - b - c (undirected view): b is the cut vertex.
    PropertyGraph g;
    NodeId a = g.add_node("a");
    NodeId b = g.add_node("b");
    NodeId c = g.add_node("c");
    g.add_edge(a, b);
    g.add_edge(b, c);
    auto points = articulation_points(g);
    ASSERT_EQ(points.size(), 1u);
    EXPECT_EQ(points[0], b);
}

TEST(GraphAlgorithms, ArticulationPointsNoneInCycle) {
    PropertyGraph g;
    NodeId a = g.add_node("a");
    NodeId b = g.add_node("b");
    NodeId c = g.add_node("c");
    g.add_edge(a, b);
    g.add_edge(b, c);
    g.add_edge(c, a);
    EXPECT_TRUE(articulation_points(g).empty());
}

TEST(GraphAlgorithms, InducedSubgraph) {
    PropertyGraph g = diamondish();
    g.set_property(*g.find_node("a"), "k", std::string("v"));
    std::vector<NodeId> keep{*g.find_node("a"), *g.find_node("c"), *g.find_node("d")};
    Subgraph sub = induced_subgraph(g, keep);
    EXPECT_EQ(sub.graph.node_count(), 3u);
    EXPECT_EQ(sub.graph.edge_count(), 2u); // a->c, c->d survive
    NodeId na = sub.node_map.at(*g.find_node("a"));
    ASSERT_NE(sub.graph.get_property(na, "k"), nullptr);
}

TEST(GraphAlgorithms, DfsPostorderVisitsAll) {
    PropertyGraph g = diamondish();
    auto order = dfs_postorder(g);
    EXPECT_EQ(order.size(), 4u);
    // Postorder property: a (the root reaching all) comes last among its
    // reachable set.
    EXPECT_EQ(g.node(order.back()).label, "a");
}

TEST(GraphAlgorithms, SccDagIsAllSingletons) {
    PropertyGraph g = diamondish();
    auto sccs = strongly_connected_components(g);
    EXPECT_EQ(sccs.size(), 4u);
    for (const auto& comp : sccs) EXPECT_EQ(comp.size(), 1u);
}

TEST(GraphAlgorithms, SccFindsCycle) {
    PropertyGraph g;
    NodeId a = g.add_node("a");
    NodeId b = g.add_node("b");
    NodeId c = g.add_node("c");
    NodeId d = g.add_node("d");
    g.add_edge(a, b);
    g.add_edge(b, c);
    g.add_edge(c, a); // cycle a-b-c
    g.add_edge(c, d); // tail
    auto sccs = strongly_connected_components(g);
    ASSERT_EQ(sccs.size(), 2u);
    EXPECT_EQ(sccs[0].size(), 3u); // {a,b,c} sorted first (contains node 0)
    EXPECT_EQ(sccs[0][0], a);
    EXPECT_EQ(sccs[1], std::vector<NodeId>{d});
}

TEST(GraphAlgorithms, SccTwoSeparateCycles) {
    PropertyGraph g;
    NodeId a = g.add_node("a");
    NodeId b = g.add_node("b");
    NodeId c = g.add_node("c");
    NodeId d = g.add_node("d");
    g.add_edge(a, b);
    g.add_edge(b, a);
    g.add_edge(c, d);
    g.add_edge(d, c);
    g.add_edge(b, c); // one-way bridge keeps them separate SCCs
    auto sccs = strongly_connected_components(g);
    ASSERT_EQ(sccs.size(), 2u);
    EXPECT_EQ(sccs[0].size(), 2u);
    EXPECT_EQ(sccs[1].size(), 2u);
}

TEST(GraphAlgorithms, SccEmptyAndSelfLoop) {
    PropertyGraph empty;
    EXPECT_TRUE(strongly_connected_components(empty).empty());
    PropertyGraph g;
    NodeId a = g.add_node("a");
    g.add_edge(a, a);
    auto sccs = strongly_connected_components(g);
    ASSERT_EQ(sccs.size(), 1u);
    EXPECT_EQ(sccs[0], std::vector<NodeId>{a});
}

TEST(GraphAlgorithms, SimplePathsBoundedReportsTruncation) {
    PropertyGraph g = diamondish();
    NodeId a = *g.find_node("a");
    NodeId d = *g.find_node("d");
    // Two paths exist; a cap of one means the enumeration gave up early.
    SimplePaths capped = all_simple_paths_bounded(g, a, d, 5, 1);
    EXPECT_EQ(capped.paths.size(), 1u);
    EXPECT_TRUE(capped.truncated);
    // A hop bound that prunes a branch is also a truncation, not exhaustion.
    SimplePaths hop_cut = all_simple_paths_bounded(g, a, d, 2, 4096);
    EXPECT_EQ(hop_cut.paths.size(), 1u);
    EXPECT_TRUE(hop_cut.truncated);
    // Room for everything: the path space was exhausted.
    SimplePaths all = all_simple_paths_bounded(g, a, d, 5, 4096);
    EXPECT_EQ(all.paths.size(), 2u);
    EXPECT_FALSE(all.truncated);
}

TEST(GraphAlgorithms, MinVertexCutSingleWaist) {
    // s -> {p, q} -> m -> t : every path squeezes through m.
    PropertyGraph g;
    NodeId s = g.add_node("s");
    NodeId p = g.add_node("p");
    NodeId q = g.add_node("q");
    NodeId m = g.add_node("m");
    NodeId t = g.add_node("t");
    g.add_edge(s, p);
    g.add_edge(s, q);
    g.add_edge(p, m);
    g.add_edge(q, m);
    g.add_edge(m, t);
    EXPECT_EQ(min_vertex_cut(g, {s}, {t}), std::vector<NodeId>{m});
}

TEST(GraphAlgorithms, MinVertexCutDisjointPathsNeedTwoNodes) {
    // Two fully node-disjoint s->t routes: the cut must take one from each.
    PropertyGraph g;
    NodeId s = g.add_node("s");
    NodeId a = g.add_node("a");
    NodeId b = g.add_node("b");
    NodeId t = g.add_node("t");
    g.add_edge(s, a);
    g.add_edge(a, t);
    g.add_edge(s, b);
    g.add_edge(b, t);
    std::vector<NodeId> cut = min_vertex_cut(g, {s}, {t});
    EXPECT_EQ(cut.size(), 2u);
    EXPECT_TRUE(std::is_sorted(cut.begin(), cut.end()));
}

TEST(GraphAlgorithms, MinVertexCutIgnoresDirectEdge) {
    // The direct s->t edge cannot be severed by removing an intermediate;
    // only the path through m is cuttable.
    PropertyGraph g;
    NodeId s = g.add_node("s");
    NodeId m = g.add_node("m");
    NodeId t = g.add_node("t");
    g.add_edge(s, t);
    g.add_edge(s, m);
    g.add_edge(m, t);
    EXPECT_EQ(min_vertex_cut(g, {s}, {t}), std::vector<NodeId>{m});
}

TEST(GraphAlgorithms, MinVertexCutEmptyWhenUnreachable) {
    PropertyGraph g;
    NodeId s = g.add_node("s");
    NodeId m = g.add_node("m");
    NodeId t = g.add_node("t");
    g.add_edge(t, m); // edges point away from t; s reaches nothing
    g.add_edge(m, s);
    EXPECT_TRUE(min_vertex_cut(g, {s}, {t}).empty());
    EXPECT_TRUE(min_vertex_cut(g, {}, {t}).empty());
    EXPECT_TRUE(min_vertex_cut(g, {s}, {}).empty());
}

TEST(GraphAlgorithms, MinVertexCutMultiSourceMultiTarget) {
    // {s1, s2} both funnel through m to reach {t1, t2}.
    PropertyGraph g;
    NodeId s1 = g.add_node("s1");
    NodeId s2 = g.add_node("s2");
    NodeId m = g.add_node("m");
    NodeId t1 = g.add_node("t1");
    NodeId t2 = g.add_node("t2");
    g.add_edge(s1, m);
    g.add_edge(s2, m);
    g.add_edge(m, t1);
    g.add_edge(m, t2);
    EXPECT_EQ(min_vertex_cut(g, {s1, s2}, {t1, t2}), std::vector<NodeId>{m});
}
