#include <gtest/gtest.h>

#include <algorithm>

#include "model/diff.hpp"
#include "model/export.hpp"
#include "model/system_model.hpp"

using namespace cybok::model;

namespace {

Attribute make_attr(std::string name, std::string value,
                    AttributeKind kind = AttributeKind::Descriptor,
                    Fidelity fidelity = Fidelity::Logical) {
    Attribute a;
    a.name = std::move(name);
    a.value = std::move(value);
    a.kind = kind;
    a.fidelity = fidelity;
    return a;
}

SystemModel two_tier() {
    SystemModel m("plant", "test model");
    ComponentId ws = m.add_component("WS", ComponentType::Compute);
    m.component(ws).external_facing = true;
    m.set_attribute(ws, make_attr("role", "operator console", AttributeKind::Descriptor,
                                  Fidelity::Functional));
    Attribute os = make_attr("os", "Windows 7", AttributeKind::PlatformRef,
                             Fidelity::Implementation);
    os.platform =
        cybok::kb::Platform{cybok::kb::PlatformPart::OperatingSystem, "microsoft",
                            "windows_7", ""};
    m.set_attribute(ws, os);
    ComponentId plc = m.add_component("PLC", ComponentType::Controller);
    m.set_attribute(plc, make_attr("role", "process controller"));
    m.connect(ws, plc, "engineering", ChannelKind::Ethernet, /*bidirectional=*/true);
    return m;
}

} // namespace

TEST(SystemModel, AddAndFindComponents) {
    SystemModel m = two_tier();
    EXPECT_EQ(m.component_count(), 2u);
    auto ws = m.find_component("WS");
    ASSERT_TRUE(ws.has_value());
    EXPECT_EQ(m.component(*ws).type, ComponentType::Compute);
    EXPECT_FALSE(m.find_component("nope").has_value());
    EXPECT_THROW((void)m.component(ComponentId{99}), cybok::NotFoundError);
}

TEST(SystemModel, SetAttributeReplacesByName) {
    SystemModel m = two_tier();
    ComponentId ws = *m.find_component("WS");
    m.set_attribute(ws, make_attr("role", "updated"));
    EXPECT_EQ(m.component(ws).attributes.size(), 2u); // role + os, not 3
    EXPECT_EQ(m.find_attribute(ws, "role")->value, "updated");
}

TEST(SystemModel, RemoveAttribute) {
    SystemModel m = two_tier();
    ComponentId ws = *m.find_component("WS");
    EXPECT_TRUE(m.remove_attribute(ws, "os"));
    EXPECT_FALSE(m.remove_attribute(ws, "os"));
    EXPECT_EQ(m.find_attribute(ws, "os"), nullptr);
}

TEST(SystemModel, RemoveComponentDropsConnectors) {
    SystemModel m = two_tier();
    ComponentId plc = *m.find_component("PLC");
    m.remove_component(plc);
    EXPECT_EQ(m.component_count(), 1u);
    EXPECT_TRUE(m.connectors().empty());
    EXPECT_FALSE(m.contains(plc));
}

TEST(SystemModel, ConnectRejectsUnknownComponents) {
    SystemModel m = two_tier();
    EXPECT_THROW(m.connect(ComponentId{99}, *m.find_component("WS"), "x"),
                 cybok::NotFoundError);
}

TEST(SystemModel, ValidateCleanModel) {
    EXPECT_TRUE(two_tier().validate().empty());
}

TEST(SystemModel, ValidateFindsProblems) {
    SystemModel m = two_tier();
    // Duplicate name.
    m.add_component("WS", ComponentType::Compute);
    // Unresolved platform ref.
    ComponentId orphan = m.add_component("Orphan", ComponentType::Sensor);
    m.set_attribute(orphan, make_attr("fw", "Mystery 1.0", AttributeKind::PlatformRef));
    auto issues = m.validate();
    auto has = [&](std::string_view needle) {
        return std::any_of(issues.begin(), issues.end(), [&](const std::string& s) {
            return s.find(needle) != std::string::npos;
        });
    };
    EXPECT_TRUE(has("duplicate component name"));
    EXPECT_TRUE(has("no resolved platform"));
    EXPECT_TRUE(has("no connectors"));
}

TEST(SystemModel, FidelityProjectionDropsHighFidelityInfo) {
    SystemModel m = two_tier();
    EXPECT_EQ(m.max_fidelity(), Fidelity::Implementation);
    SystemModel functional = m.at_fidelity(Fidelity::Functional);
    // Components survive, implementation attributes and logical connectors
    // do not.
    EXPECT_EQ(functional.component_count(), 2u);
    ComponentId ws = *functional.find_component("WS");
    EXPECT_NE(functional.find_attribute(ws, "role"), nullptr);
    EXPECT_EQ(functional.find_attribute(ws, "os"), nullptr);
    EXPECT_TRUE(functional.connectors().empty());
    EXPECT_EQ(functional.max_fidelity(), Fidelity::Functional);
}

TEST(SystemModel, FidelityProjectionAtMaxIsIdentityShaped) {
    SystemModel m = two_tier();
    SystemModel same = m.at_fidelity(Fidelity::Implementation);
    EXPECT_TRUE(diff(m, same).empty());
}

TEST(SystemModel, EnumNames) {
    EXPECT_EQ(fidelity_name(Fidelity::Conceptual), "conceptual");
    EXPECT_EQ(fidelity_name(Fidelity::Implementation), "implementation");
    EXPECT_EQ(component_type_name(ComponentType::PhysicalProcess), "physical-process");
    EXPECT_EQ(channel_kind_name(ChannelKind::Fieldbus), "fieldbus");
    EXPECT_EQ(attribute_kind_name(AttributeKind::PlatformRef), "platform-ref");
}

// -------------------------------------------------------------------- diff

TEST(ModelDiff, EmptyForIdenticalModels) {
    SystemModel a = two_tier();
    SystemModel b = two_tier();
    EXPECT_TRUE(diff(a, b).empty());
}

TEST(ModelDiff, DetectsComponentAddRemove) {
    SystemModel a = two_tier();
    SystemModel b = two_tier();
    b.add_component("Historian", ComponentType::Compute);
    ModelDiff d = diff(a, b);
    ASSERT_EQ(d.added_components.size(), 1u);
    EXPECT_EQ(d.added_components[0], "Historian");
    ModelDiff r = diff(b, a);
    ASSERT_EQ(r.removed_components.size(), 1u);
    EXPECT_EQ(r.removed_components[0], "Historian");
}

TEST(ModelDiff, DetectsAttributeChanges) {
    SystemModel a = two_tier();
    SystemModel b = two_tier();
    ComponentId ws = *b.find_component("WS");
    b.set_attribute(ws, make_attr("os", "Linux", AttributeKind::Descriptor));
    b.set_attribute(ws, make_attr("extra", "new"));
    b.remove_attribute(ws, "role");
    ModelDiff d = diff(a, b);
    EXPECT_EQ(d.attribute_changes.size(), 3u);
    int added = 0, removed = 0, modified = 0;
    for (const auto& c : d.attribute_changes) {
        if (c.kind == AttributeChange::Kind::Added) ++added;
        if (c.kind == AttributeChange::Kind::Removed) ++removed;
        if (c.kind == AttributeChange::Kind::Modified) ++modified;
    }
    EXPECT_EQ(added, 1);
    EXPECT_EQ(removed, 1);
    EXPECT_EQ(modified, 1);
}

TEST(ModelDiff, DetectsConnectorChanges) {
    SystemModel a = two_tier();
    SystemModel b = two_tier();
    b.connect(*b.find_component("PLC"), *b.find_component("WS"), "alarms",
              ChannelKind::Ethernet);
    ModelDiff d = diff(a, b);
    ASSERT_EQ(d.added_connectors.size(), 1u);
    EXPECT_NE(d.added_connectors[0].find("PLC -> WS"), std::string::npos);
}

TEST(ModelDiff, TouchedComponents) {
    SystemModel a = two_tier();
    SystemModel b = two_tier();
    ComponentId ws = *b.find_component("WS");
    b.set_attribute(ws, make_attr("extra", "new"));
    b.add_component("Historian", ComponentType::Compute);
    auto touched = diff(a, b).touched_components();
    ASSERT_EQ(touched.size(), 2u); // WS and Historian, sorted
    EXPECT_EQ(touched[0], "Historian");
    EXPECT_EQ(touched[1], "WS");
}

TEST(ModelDiff, ToStringMentionsEachChange) {
    SystemModel a = two_tier();
    SystemModel b = two_tier();
    ComponentId ws = *b.find_component("WS");
    b.set_attribute(ws, make_attr("role", "changed"));
    std::string s = to_string(diff(a, b));
    EXPECT_NE(s.find("WS.role"), std::string::npos);
    EXPECT_NE(s.find("operator console"), std::string::npos);
    EXPECT_NE(s.find("changed"), std::string::npos);
}

// ------------------------------------------------------------------ export

TEST(ModelExport, GraphHasComponentsAndProperties) {
    cybok::graph::PropertyGraph g = to_graph(two_tier());
    EXPECT_EQ(g.node_count(), 2u);
    // Bidirectional connector -> 2 edges.
    EXPECT_EQ(g.edge_count(), 2u);
    auto ws = g.find_node("WS");
    ASSERT_TRUE(ws.has_value());
    EXPECT_EQ(std::get<std::string>(*g.get_property(*ws, "type")), "compute");
    EXPECT_EQ(std::get<bool>(*g.get_property(*ws, "external")), true);
    EXPECT_EQ(std::get<std::string>(*g.get_property(*ws, "attr.os")), "Windows 7");
    ASSERT_NE(g.get_property(*ws, "attr.os.platform"), nullptr);
}

TEST(ModelExport, RoundTripPreservesModel) {
    SystemModel m = two_tier();
    SystemModel m2 = from_graph(to_graph(m));
    // Round trip flattens bidirectional connectors into two directed ones;
    // everything else must survive exactly.
    EXPECT_EQ(m2.component_count(), m.component_count());
    ComponentId ws = *m2.find_component("WS");
    const Attribute* os = m2.find_attribute(ws, "os");
    ASSERT_NE(os, nullptr);
    EXPECT_EQ(os->value, "Windows 7");
    EXPECT_EQ(os->kind, AttributeKind::PlatformRef);
    EXPECT_EQ(os->fidelity, Fidelity::Implementation);
    ASSERT_TRUE(os->platform.has_value());
    EXPECT_EQ(os->platform->product, "windows_7");
    EXPECT_TRUE(m2.component(ws).external_facing);
    EXPECT_EQ(m2.connectors().size(), 2u);
}

TEST(ModelExport, RoundTripAssociationEquivalence) {
    // The security-relevant content (attributes, kinds, platforms) must be
    // identical after a round trip; diff only sees the connector split.
    SystemModel m = two_tier();
    SystemModel m2 = from_graph(to_graph(m));
    ModelDiff d = diff(m, m2);
    EXPECT_TRUE(d.attribute_changes.empty());
    EXPECT_TRUE(d.added_components.empty());
    EXPECT_TRUE(d.removed_components.empty());
}

TEST(ModelExport, FromGraphRejectsUntypedNodes) {
    cybok::graph::PropertyGraph g;
    g.add_node("untyped");
    EXPECT_THROW(from_graph(g), cybok::ValidationError);
}
