#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/hardening.hpp"
#include "search/engine.hpp"
#include "synth/scada.hpp"

using namespace cybok;
using namespace cybok::analysis;

namespace {

/// Stub associations: component -> match count.
search::AssociationMap stub(std::initializer_list<std::pair<const char*, int>> items) {
    search::AssociationMap map;
    for (const auto& [name, n] : items) {
        search::ComponentAssociation ca;
        ca.component = name;
        search::AttributeAssociation aa;
        aa.attribute_name = "role";
        aa.attribute_value = "stub";
        for (int i = 0; i < n; ++i) {
            search::Match m;
            m.cls = search::VectorClass::Weakness;
            m.id = "CWE-" + std::to_string(100 + i);
            aa.matches.push_back(std::move(m));
        }
        ca.attributes.push_back(std::move(aa));
        map.components.push_back(std::move(ca));
    }
    return map;
}

} // namespace

TEST(Hardening, FirewallIsTheChokePoint) {
    model::SystemModel m = synth::centrifuge_model();
    safety::HazardModel hazards = synth::centrifuge_hazards();
    // Everything on the WS-to-controller chain carries vectors.
    auto assoc = stub({{"Programming WS", 5},
                       {"Control firewall", 2},
                       {"BPCS platform", 4},
                       {"SIS platform", 3}});
    auto ranked = rank_hardening_candidates(m, assoc, &hazards);
    ASSERT_FALSE(ranked.empty());
    // Hardening the firewall or the WS cuts every externally-initiated
    // path; the top candidate must block a positive number of traces.
    EXPECT_GT(ranked.front().traces_blocked, 0u);
    // The firewall sits on every WS->controller path and is an
    // articulation point of the architecture.
    auto fw = std::find_if(ranked.begin(), ranked.end(), [](const HardeningCandidate& c) {
        return c.component == "Control firewall";
    });
    ASSERT_NE(fw, ranked.end());
    EXPECT_TRUE(fw->articulation_point);
    EXPECT_GT(fw->paths_cut, 0u);
}

TEST(Hardening, ComponentsWithoutVectorsNotCandidates) {
    model::SystemModel m = synth::centrifuge_model();
    auto assoc = stub({{"Programming WS", 3}, {"Centrifuge", 0}});
    auto ranked = rank_hardening_candidates(m, assoc, nullptr);
    ASSERT_EQ(ranked.size(), 1u);
    EXPECT_EQ(ranked[0].component, "Programming WS");
    EXPECT_EQ(ranked[0].vectors_removed, 3u);
}

TEST(Hardening, OrderingIsDeterministicAndSorted) {
    model::SystemModel m = synth::centrifuge_model();
    safety::HazardModel hazards = synth::centrifuge_hazards();
    auto assoc = stub({{"Programming WS", 5},
                       {"Control firewall", 2},
                       {"BPCS platform", 4},
                       {"Temperature sensor", 1}});
    auto a = rank_hardening_candidates(m, assoc, &hazards);
    auto b = rank_hardening_candidates(m, assoc, &hazards);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].component, b[i].component);
    for (std::size_t i = 1; i < a.size(); ++i) {
        // Sorted by traces blocked first.
        EXPECT_GE(a[i - 1].traces_blocked, a[i].traces_blocked);
    }
}

TEST(Hardening, ExplicitTargets) {
    model::SystemModel m = synth::centrifuge_model();
    auto assoc = stub({{"Programming WS", 2}, {"Control firewall", 1}, {"BPCS platform", 2}});
    HardeningOptions opts;
    opts.targets = {"BPCS platform"};
    auto ranked = rank_hardening_candidates(m, assoc, nullptr, opts);
    // Hardening the firewall cuts the single WS->FW->BPCS path.
    auto fw = std::find_if(ranked.begin(), ranked.end(), [](const HardeningCandidate& c) {
        return c.component == "Control firewall";
    });
    ASSERT_NE(fw, ranked.end());
    EXPECT_EQ(fw->paths_cut, 1u);
}

TEST(Hardening, EmptyAssociationsNoCandidates) {
    model::SystemModel m = synth::centrifuge_model();
    EXPECT_TRUE(rank_hardening_candidates(m, search::AssociationMap{}, nullptr).empty());
}
