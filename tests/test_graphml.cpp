#include <gtest/gtest.h>

#include "graph/dot.hpp"
#include "graph/graphml.hpp"

using namespace cybok::graph;

namespace {
PropertyGraph sample() {
    PropertyGraph g;
    NodeId a = g.add_node("Programming WS");
    NodeId b = g.add_node("Control <firewall> & \"friends\"");
    g.set_property(a, "type", std::string("compute"));
    g.set_property(a, "external", true);
    g.set_property(a, "count", std::int64_t{42});
    g.set_property(a, "score", 3.25);
    EdgeId e = g.add_edge(a, b, "engineering");
    g.set_property(e, "channel", std::string("ethernet"));
    return g;
}
} // namespace

TEST(GraphML, RoundTripPreservesStructure) {
    PropertyGraph g = sample();
    PropertyGraph g2 = from_graphml(to_graphml(g));
    EXPECT_EQ(g2.node_count(), g.node_count());
    EXPECT_EQ(g2.edge_count(), g.edge_count());
    auto a = g2.find_node("Programming WS");
    ASSERT_TRUE(a.has_value());
    EXPECT_TRUE(g2.find_node("Control <firewall> & \"friends\"").has_value());
}

TEST(GraphML, RoundTripPreservesTypedProperties) {
    PropertyGraph g2 = from_graphml(to_graphml(sample()));
    NodeId a = *g2.find_node("Programming WS");
    ASSERT_NE(g2.get_property(a, "type"), nullptr);
    EXPECT_EQ(std::get<std::string>(*g2.get_property(a, "type")), "compute");
    EXPECT_EQ(std::get<bool>(*g2.get_property(a, "external")), true);
    EXPECT_EQ(std::get<std::int64_t>(*g2.get_property(a, "count")), 42);
    EXPECT_DOUBLE_EQ(std::get<double>(*g2.get_property(a, "score")), 3.25);
}

TEST(GraphML, RoundTripPreservesEdgeProperties) {
    PropertyGraph g2 = from_graphml(to_graphml(sample()));
    ASSERT_EQ(g2.edges().size(), 1u);
    EdgeId e = g2.edges()[0];
    EXPECT_EQ(g2.edge(e).label, "engineering");
    EXPECT_EQ(std::get<std::string>(*g2.get_property(e, "channel")), "ethernet");
}

TEST(GraphML, EscapesXmlSpecials) {
    std::string xml = to_graphml(sample());
    EXPECT_EQ(xml.find("<firewall>"), std::string::npos);
    EXPECT_NE(xml.find("&lt;firewall&gt;"), std::string::npos);
}

TEST(GraphML, EmptyGraph) {
    PropertyGraph g2 = from_graphml(to_graphml(PropertyGraph{}));
    EXPECT_EQ(g2.node_count(), 0u);
    EXPECT_EQ(g2.edge_count(), 0u);
}

TEST(GraphML, RejectsMalformedDocuments) {
    EXPECT_THROW(from_graphml("not xml"), cybok::ParseError);
    EXPECT_THROW(from_graphml("<graphml><graph><node id=\"n0\"/></graph>"),
                 cybok::ParseError); // unterminated root
    EXPECT_THROW(from_graphml("<wrong/>"), cybok::ParseError);
    // Edge referencing unknown node.
    EXPECT_THROW(from_graphml(R"(<graphml><graph id="G" edgedefault="directed">
        <edge id="e0" source="n0" target="n1"/></graph></graphml>)"),
                 cybok::ParseError);
    // Undeclared data key.
    EXPECT_THROW(from_graphml(R"(<graphml><graph id="G" edgedefault="directed">
        <node id="n0"><data key="k9">x</data></node></graph></graphml>)"),
                 cybok::ParseError);
}

TEST(GraphML, ParsesHandWrittenDocument) {
    PropertyGraph g = from_graphml(R"(<?xml version="1.0"?>
      <!-- exported from an external tool -->
      <graphml>
        <key id="d0" for="node" attr.name="label" attr.type="string"/>
        <key id="d1" for="node" attr.name="weight" attr.type="double"/>
        <graph id="net" edgedefault="directed">
          <node id="a"><data key="d0">first</data><data key="d1">1.5</data></node>
          <node id="b"><data key="d0">second</data></node>
          <edge id="e" source="a" target="b"/>
        </graph>
      </graphml>)");
    EXPECT_EQ(g.node_count(), 2u);
    NodeId a = *g.find_node("first");
    EXPECT_DOUBLE_EQ(std::get<double>(*g.get_property(a, "weight")), 1.5);
}

TEST(GraphML, FileRoundTrip) {
    std::string path = testing::TempDir() + "/cybok_graphml_test.graphml";
    save_graphml(path, sample());
    PropertyGraph g2 = load_graphml(path);
    EXPECT_EQ(g2.node_count(), 2u);
    EXPECT_THROW(load_graphml("/nonexistent/x.graphml"), cybok::IoError);
}

TEST(Dot, ContainsNodesAndEdges) {
    DotOptions opts;
    opts.graph_name = "demo";
    opts.rankdir_lr = true;
    std::string dot = to_dot(sample(), opts);
    EXPECT_NE(dot.find("digraph \"demo\""), std::string::npos);
    EXPECT_NE(dot.find("rankdir=LR"), std::string::npos);
    EXPECT_NE(dot.find("Programming WS"), std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);
    EXPECT_NE(dot.find("[label=\"engineering\"]"), std::string::npos);
}

TEST(Dot, EscapesQuotes) {
    std::string dot = to_dot(sample());
    EXPECT_NE(dot.find("\\\"friends\\\""), std::string::npos);
}

TEST(Dot, AnnotationAndFillcolor) {
    PropertyGraph g;
    NodeId a = g.add_node("hot");
    g.set_property(a, "dot.fillcolor", std::string("salmon"));
    g.set_property(a, "vectors", std::int64_t{99});
    DotOptions opts;
    opts.annotation_key = "vectors";
    std::string dot = to_dot(g, opts);
    EXPECT_NE(dot.find("fillcolor=\"salmon\""), std::string::npos);
    EXPECT_NE(dot.find("hot\\n99"), std::string::npos);
}
