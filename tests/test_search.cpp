#include <gtest/gtest.h>

#include <algorithm>

#include "search/association.hpp"
#include "search/engine.hpp"
#include "search/filters.hpp"

using namespace cybok;
using namespace cybok::search;

namespace {

/// Small hand-built corpus with fully controlled vocabulary.
kb::Corpus tiny_corpus() {
    kb::Corpus c;

    kb::AttackPattern p1;
    p1.id = kb::AttackPatternId{88};
    p1.name = "Command Injection";
    p1.summary = "Injecting commands through an externally influenced input on linux hosts.";
    p1.related_weaknesses = {kb::WeaknessId{78}};
    c.add(p1);

    kb::AttackPattern p2;
    p2.id = kb::AttackPatternId{125};
    p2.name = "Flooding";
    p2.summary = "Exhausting a service with excessive requests.";
    p2.related_weaknesses = {kb::WeaknessId{400}};
    c.add(p2);

    kb::Weakness w1;
    w1.id = kb::WeaknessId{78};
    w1.name = "Command Injection Weakness";
    w1.description = "Improper neutralization of command elements on linux systems.";
    c.add(w1);

    kb::Weakness w2;
    w2.id = kb::WeaknessId{400};
    w2.name = "Uncontrolled Resource Consumption";
    w2.description = "The product does not limit resource allocation.";
    c.add(w2);

    kb::Vulnerability v1;
    v1.id = kb::VulnerabilityId{2019, 100};
    v1.description = "A command injection flaw in AcmeOS release 2.";
    v1.platforms = {kb::Platform{kb::PlatformPart::OperatingSystem, "acme", "acmeos", "2"}};
    v1.weaknesses = {kb::WeaknessId{78}};
    v1.cvss_vector = "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"; // 9.8
    c.add(v1);

    kb::Vulnerability v2;
    v2.id = kb::VulnerabilityId{2020, 200};
    v2.description = "A resource exhaustion flaw in AcmeOS release 3.";
    v2.platforms = {kb::Platform{kb::PlatformPart::OperatingSystem, "acme", "acmeos", "3"}};
    v2.weaknesses = {kb::WeaknessId{400}};
    v2.cvss_vector = "CVSS:3.1/AV:N/AC:H/PR:N/UI:R/S:U/C:L/I:L/A:N"; // 4.2
    c.add(v2);

    kb::Vulnerability v3;
    v3.id = kb::VulnerabilityId{2020, 300};
    v3.description = "An unscored flaw in OtherApp.";
    v3.platforms = {kb::Platform{kb::PlatformPart::Application, "other", "app", "1"}};
    c.add(v3);

    c.reindex();
    return c;
}


/// Tiny corpora have tiny IDFs; relax the evidence gate that is tuned for
/// CAPEC/CWE-scale document counts.
EngineOptions relaxed() {
    EngineOptions o;
    o.min_evidence_idf = 0.2;
    return o;
}

model::Attribute descriptor_attr(std::string value) {
    model::Attribute a;
    a.name = "role";
    a.value = std::move(value);
    a.kind = model::AttributeKind::Descriptor;
    return a;
}

model::Attribute platform_attr(kb::Platform p, std::string display) {
    model::Attribute a;
    a.name = "os";
    a.value = std::move(display);
    a.kind = model::AttributeKind::PlatformRef;
    a.platform = std::move(p);
    return a;
}

} // namespace

TEST(SearchEngine, RequiresIndexedCorpus) {
    kb::Corpus c;
    EXPECT_THROW(SearchEngine engine(c), cybok::ValidationError);
}

TEST(SearchEngine, LexicalQueryFindsPatternsByTopic) {
    kb::Corpus c = tiny_corpus();
    SearchEngine engine(c, relaxed());
    auto hits = engine.query_text("command injection", VectorClass::AttackPattern);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].id, "CAPEC-88");
    EXPECT_EQ(hits[0].via, MatchVia::Lexical);
    EXPECT_FALSE(hits[0].evidence.empty());
}

TEST(SearchEngine, EvidenceGateSuppressesWeakMatches) {
    kb::Corpus c = tiny_corpus();
    EngineOptions strict;
    strict.min_evidence_idf = 100.0; // nothing can pass
    SearchEngine engine(c, strict);
    EXPECT_TRUE(engine.query_text("command injection", VectorClass::AttackPattern).empty());
}

TEST(SearchEngine, PlatformBindingMatchesFamily) {
    kb::Corpus c = tiny_corpus();
    SearchEngine engine(c, relaxed());
    auto hits =
        engine.query_platform(kb::Platform{kb::PlatformPart::OperatingSystem, "acme",
                                           "acmeos", ""});
    ASSERT_EQ(hits.size(), 2u);
    for (const Match& m : hits) {
        EXPECT_EQ(m.cls, VectorClass::Vulnerability);
        EXPECT_EQ(m.via, MatchVia::PlatformBinding);
        ASSERT_EQ(m.evidence.size(), 1u);
        EXPECT_NE(m.evidence[0].find("acmeos"), std::string::npos);
    }
}

TEST(SearchEngine, PlatformBindingCarriesCvssSeverity) {
    kb::Corpus c = tiny_corpus();
    SearchEngine engine(c, relaxed());
    auto hits = engine.query_platform(
        kb::Platform{kb::PlatformPart::OperatingSystem, "acme", "acmeos", "2"});
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_DOUBLE_EQ(hits[0].severity, 9.8);
}

TEST(SearchEngine, UnscoredVulnerabilityHasNegativeSeverity) {
    kb::Corpus c = tiny_corpus();
    SearchEngine engine(c, relaxed());
    auto hits = engine.query_platform(
        kb::Platform{kb::PlatformPart::Application, "other", "app", ""});
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_LT(hits[0].severity, 0.0);
}

TEST(SearchEngine, AttributeDispatchByKind) {
    kb::Corpus c = tiny_corpus();
    SearchEngine engine(c, relaxed());

    // Descriptor: lexical only — no vulnerabilities.
    auto desc = engine.query_attribute(descriptor_attr("command injection controller"));
    EXPECT_TRUE(std::none_of(desc.begin(), desc.end(), [](const Match& m) {
        return m.cls == VectorClass::Vulnerability;
    }));
    EXPECT_TRUE(std::any_of(desc.begin(), desc.end(), [](const Match& m) {
        return m.cls == VectorClass::AttackPattern;
    }));
    EXPECT_TRUE(std::any_of(desc.begin(), desc.end(), [](const Match& m) {
        return m.cls == VectorClass::Weakness;
    }));

    // PlatformRef: platform binding adds vulnerabilities.
    auto plat = engine.query_attribute(platform_attr(
        kb::Platform{kb::PlatformPart::OperatingSystem, "acme", "acmeos", ""}, "AcmeOS"));
    EXPECT_TRUE(std::any_of(plat.begin(), plat.end(), [](const Match& m) {
        return m.cls == VectorClass::Vulnerability && m.via == MatchVia::PlatformBinding;
    }));

    // Parameter: nothing, by design.
    model::Attribute param;
    param.name = "max-speed";
    param.value = "10000 rpm command injection"; // even juicy text is ignored
    param.kind = model::AttributeKind::Parameter;
    EXPECT_TRUE(engine.query_attribute(param).empty());
}

TEST(SearchEngine, LexicalVulnerabilitiesOption) {
    kb::Corpus c = tiny_corpus();
    EngineOptions opts;
    opts.lexical_vulnerabilities = true;
    SearchEngine engine(c, opts);
    auto hits = engine.query_attribute(descriptor_attr("resource exhaustion flaw"));
    EXPECT_TRUE(std::any_of(hits.begin(), hits.end(), [](const Match& m) {
        return m.cls == VectorClass::Vulnerability && m.via == MatchVia::Lexical;
    }));
}

TEST(SearchEngine, TfidfRankerWorks) {
    kb::Corpus c = tiny_corpus();
    EngineOptions opts;
    opts.ranker = EngineOptions::Ranker::Tfidf;
    opts.min_evidence_idf = 0.1;
    SearchEngine engine(c, opts);
    auto hits = engine.query_text("flooding requests", VectorClass::AttackPattern);
    ASSERT_FALSE(hits.empty());
    EXPECT_EQ(hits[0].id, "CAPEC-125");
}

TEST(SearchEngine, ExpandWeaknessFollowsCrossReferences) {
    kb::Corpus c = tiny_corpus();
    SearchEngine engine(c, relaxed());
    auto weaknesses = engine.query_text("command neutralization", VectorClass::Weakness);
    ASSERT_FALSE(weaknesses.empty());
    auto patterns = engine.expand_weakness(weaknesses[0]);
    ASSERT_EQ(patterns.size(), 1u);
    EXPECT_EQ(patterns[0].id, "CAPEC-88");
    EXPECT_EQ(patterns[0].via, MatchVia::CrossReference);
    // Expanding a non-weakness is a caller bug.
    EXPECT_THROW((void)engine.expand_weakness(patterns[0]), cybok::ValidationError);
}

// ----------------------------------------------------------------- filters

namespace {
std::vector<Match> all_matches() {
    static const kb::Corpus corpus = tiny_corpus(); // outlives the engine
    SearchEngine engine(corpus, relaxed());
    std::vector<Match> out = engine.query_attribute(descriptor_attr("command injection"));
    for (Match& m : engine.query_attribute(platform_attr(
             kb::Platform{kb::PlatformPart::OperatingSystem, "acme", "acmeos", ""},
             "AcmeOS")))
        out.push_back(std::move(m));
    return out;
}
} // namespace

TEST(Filters, ByClass) {
    auto matches = all_matches();
    FilterChain chain;
    chain.add(by_class(VectorClass::Vulnerability));
    auto kept = chain.apply(matches);
    EXPECT_FALSE(kept.empty());
    for (const Match& m : kept) EXPECT_EQ(m.cls, VectorClass::Vulnerability);
}

TEST(Filters, MinSeverityPassesNonVulnerabilities) {
    auto matches = all_matches();
    FilterChain chain;
    chain.add(min_severity(cvss::Severity::Critical));
    auto kept = chain.apply(matches);
    bool has_pattern = false;
    for (const Match& m : kept) {
        if (m.cls == VectorClass::AttackPattern) has_pattern = true;
        if (m.cls == VectorClass::Vulnerability) {
            EXPECT_GE(m.severity, 9.0);
        }
    }
    EXPECT_TRUE(has_pattern); // severity gates only vulnerabilities
}

TEST(Filters, ByViaAndEvidence) {
    auto matches = all_matches();
    FilterChain via_chain;
    via_chain.add(by_via(MatchVia::PlatformBinding));
    for (const Match& m : via_chain.apply(matches))
        EXPECT_EQ(m.via, MatchVia::PlatformBinding);

    FilterChain ev_chain;
    ev_chain.add(evidence_contains("cpe:2.3:o:acme:acmeos:*"));
    auto kept = ev_chain.apply(matches);
    EXPECT_EQ(kept.size(), 2u);
}

TEST(Filters, ChainReportCountsDrops) {
    auto matches = all_matches();
    FilterChain chain;
    chain.add(by_class(VectorClass::Vulnerability)).add(min_severity(cvss::Severity::High));
    FilterChain::Report report;
    auto kept = chain.apply(matches, &report);
    EXPECT_EQ(report.input, matches.size());
    EXPECT_EQ(report.output, kept.size());
    std::size_t dropped = 0;
    for (const auto& [stage, n] : report.dropped_by) dropped += n;
    EXPECT_EQ(report.input - report.output, dropped);
    EXPECT_EQ(kept.size(), 1u); // only the 9.8 CVE survives
}

TEST(Filters, TopKPerClassKeepsWorstVulnerabilities) {
    auto matches = all_matches();
    FilterChain chain;
    chain.top_k_per_class(1);
    auto kept = chain.apply(matches);
    std::size_t vulns = 0;
    for (const Match& m : kept) {
        if (m.cls == VectorClass::Vulnerability) {
            ++vulns;
            EXPECT_DOUBLE_EQ(m.severity, 9.8); // ranked by severity
        }
    }
    EXPECT_EQ(vulns, 1u);
}

TEST(Filters, MinScore) {
    auto matches = all_matches();
    FilterChain chain;
    chain.add(min_score(1e9));
    EXPECT_TRUE(chain.apply(matches).empty());
}

TEST(Filters, AbstractVulnerabilitiesGroupsByWeakness) {
    kb::Corpus corpus = tiny_corpus();
    SearchEngine engine(corpus, relaxed());
    auto matches = engine.query_platform(
        kb::Platform{kb::PlatformPart::OperatingSystem, "acme", "acmeos", ""});
    ASSERT_EQ(matches.size(), 2u);
    auto abstracted = abstract_vulnerabilities(matches, corpus);
    // Two CVEs with different CWEs -> two weakness-class groups.
    ASSERT_EQ(abstracted.size(), 2u);
    for (const Match& m : abstracted) {
        EXPECT_EQ(m.via, MatchVia::CrossReference);
        ASSERT_EQ(m.evidence.size(), 1u);
        EXPECT_NE(m.evidence[0].find("abstracts 1"), std::string::npos);
    }
}

TEST(Filters, AbstractVulnerabilitiesKeepsMaxSeverity) {
    kb::Corpus corpus = tiny_corpus();
    SearchEngine engine(corpus, relaxed());
    // Two CVEs, same weakness: rig by querying both and rewriting CWE.
    auto matches = engine.query_platform(
        kb::Platform{kb::PlatformPart::OperatingSystem, "acme", "acmeos", ""});
    // Both CVEs in tiny_corpus have distinct CWEs; group unclassified ones
    // instead via v3.
    auto other = engine.query_platform(
        kb::Platform{kb::PlatformPart::Application, "other", "app", ""});
    ASSERT_EQ(other.size(), 1u);
    auto abstracted = abstract_vulnerabilities(other, corpus);
    ASSERT_EQ(abstracted.size(), 1u);
    EXPECT_NE(abstracted[0].id.find("group:"), std::string::npos);
    (void)matches;
}

// -------------------------------------------------------------- association

namespace {
model::SystemModel assoc_model() {
    model::SystemModel m("assoc", "association test");
    model::ComponentId a = m.add_component("Alpha", model::ComponentType::Compute);
    m.set_attribute(a, platform_attr(
        kb::Platform{kb::PlatformPart::OperatingSystem, "acme", "acmeos", ""}, "AcmeOS"));
    model::ComponentId b = m.add_component("Beta", model::ComponentType::Controller);
    m.set_attribute(b, descriptor_attr("command injection exposure"));
    m.connect(a, b, "link");
    return m;
}
} // namespace

TEST(Association, CountsPerComponentAndClass) {
    kb::Corpus corpus = tiny_corpus();
    SearchEngine engine(corpus, relaxed());
    AssociationMap map = associate(assoc_model(), engine);
    ASSERT_EQ(map.components.size(), 2u);

    const ComponentAssociation* alpha = map.find("Alpha");
    ASSERT_NE(alpha, nullptr);
    EXPECT_EQ(alpha->count(VectorClass::Vulnerability), 2u);

    const ComponentAssociation* beta = map.find("Beta");
    ASSERT_NE(beta, nullptr);
    EXPECT_GE(beta->count(VectorClass::AttackPattern), 1u);
    EXPECT_EQ(beta->count(VectorClass::Vulnerability), 0u);

    EXPECT_EQ(map.total(), alpha->total() + beta->total());
    EXPECT_EQ(map.find("Gamma"), nullptr);
}

TEST(Association, AttributeTableRows) {
    kb::Corpus corpus = tiny_corpus();
    SearchEngine engine(corpus, relaxed());
    AssociationMap map = associate(assoc_model(), engine);
    auto rows = map.attribute_table();
    ASSERT_EQ(rows.size(), 2u);
    bool found = false;
    for (const auto& row : rows) {
        if (row.attribute == "AcmeOS") {
            EXPECT_EQ(row.vulnerabilities, 2u);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Association, FilterChainAppliedPerAttribute) {
    kb::Corpus corpus = tiny_corpus();
    SearchEngine engine(corpus, relaxed());
    FilterChain chain;
    chain.add(by_class(VectorClass::Vulnerability));
    AssociationMap map = associate(assoc_model(), engine, &chain);
    EXPECT_EQ(map.total(VectorClass::AttackPattern), 0u);
    EXPECT_EQ(map.total(VectorClass::Vulnerability), 2u);
}

TEST(Association, ReassociateEquivalentToFullAssociate) {
    kb::Corpus corpus = tiny_corpus();
    SearchEngine engine(corpus, relaxed());
    model::SystemModel before = assoc_model();
    AssociationMap before_map = associate(before, engine);

    // Edit: change Alpha's platform, add a component, remove Beta.
    model::SystemModel after = assoc_model();
    model::ComponentId alpha = *after.find_component("Alpha");
    after.set_attribute(alpha, platform_attr(
        kb::Platform{kb::PlatformPart::Application, "other", "app", ""}, "OtherApp"));
    after.remove_component(*after.find_component("Beta"));
    model::ComponentId gamma = after.add_component("Gamma", model::ComponentType::Compute);
    after.set_attribute(gamma, descriptor_attr("flooding requests"));

    model::ModelDiff d = model::diff(before, after);
    AssociationMap incremental = reassociate(before_map, d, after, engine);
    AssociationMap full = associate(after, engine);

    ASSERT_EQ(incremental.components.size(), full.components.size());
    for (std::size_t i = 0; i < full.components.size(); ++i) {
        EXPECT_EQ(incremental.components[i].component, full.components[i].component);
        EXPECT_EQ(incremental.components[i].total(), full.components[i].total());
        for (auto cls : {VectorClass::AttackPattern, VectorClass::Weakness,
                         VectorClass::Vulnerability})
            EXPECT_EQ(incremental.components[i].count(cls), full.components[i].count(cls));
    }
}

TEST(Association, ReassociateReusesUntouchedResults) {
    kb::Corpus corpus = tiny_corpus();
    SearchEngine engine(corpus, relaxed());
    model::SystemModel before = assoc_model();
    AssociationMap before_map = associate(before, engine);
    // No-op diff: everything reused.
    model::ModelDiff empty;
    AssociationMap re = reassociate(before_map, empty, before, engine);
    EXPECT_EQ(re.total(), before_map.total());
}

TEST(SearchEngine, MaxLexicalHitsTruncatesPerClassQuery) {
    kb::Corpus c = tiny_corpus();
    EngineOptions unlimited = relaxed();
    SearchEngine full(c, unlimited);
    const char* query = "command injection resource consumption linux product";
    const auto all = full.query_text(query, VectorClass::Weakness);
    ASSERT_GE(all.size(), 2u);

    EngineOptions capped = relaxed();
    capped.max_lexical_hits = 1;
    SearchEngine engine(c, capped);
    const auto top = engine.query_text(query, VectorClass::Weakness);
    ASSERT_EQ(top.size(), 1u);
    // The survivor is the best-ranked hit of the unlimited run, unchanged.
    EXPECT_EQ(top[0].id, all[0].id);
    EXPECT_DOUBLE_EQ(top[0].score, all[0].score);
    EXPECT_EQ(top[0].evidence, all[0].evidence);
}

TEST(SearchEngine, OptionsSignatureIsStableAndKeysEveryOption) {
    EngineOptions a;
    EXPECT_EQ(a.signature(), "bm25|idf=2|lexvuln=0|tw=3|k=0");
    EngineOptions b = a;
    b.max_lexical_hits = 25;
    EXPECT_NE(a.signature(), b.signature());
    EngineOptions c = a;
    c.min_evidence_idf = 2.5;
    // to_chars spelling: locale-independent shortest form.
    EXPECT_EQ(c.signature(), "bm25|idf=2.5|lexvuln=0|tw=3|k=0");
}

TEST(Search, EnumNames) {
    EXPECT_EQ(vector_class_name(VectorClass::AttackPattern), "attack-pattern");
    EXPECT_EQ(vector_class_name(VectorClass::Vulnerability), "vulnerability");
    EXPECT_EQ(match_via_name(MatchVia::PlatformBinding), "platform-binding");
}
