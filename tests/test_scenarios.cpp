#include <gtest/gtest.h>

#include <algorithm>

#include "safety/scenarios.hpp"
#include "synth/corpus_gen.hpp"
#include "synth/scada.hpp"

using namespace cybok;
using namespace cybok::safety;

namespace {
struct Fixture {
    kb::Corpus corpus = synth::generate_corpus(synth::CorpusProfile::scaled(0.1, 99));
    model::SystemModel m = synth::centrifuge_model();
    HazardModel hazards = synth::centrifuge_hazards();
    search::SearchEngine engine{corpus};
    search::AssociationMap assoc = search::associate(m, engine);
    std::vector<CausalScenario> scenarios = generate_scenarios(m, hazards, assoc);
};
Fixture& fixture() {
    static Fixture f;
    return f;
}
} // namespace

TEST(Scenarios, EveryUcaGetsAtLeastController) {
    Fixture& f = fixture();
    for (const UnsafeControlAction& uca : f.hazards.ucas()) {
        auto count = std::count_if(f.scenarios.begin(), f.scenarios.end(),
                                   [&](const CausalScenario& s) { return s.uca_id == uca.id; });
        EXPECT_GE(count, 1) << uca.id;
        // And a compromised-controller scenario specifically.
        bool has_ctrl = std::any_of(f.scenarios.begin(), f.scenarios.end(),
                                    [&](const CausalScenario& s) {
                                        return s.uca_id == uca.id &&
                                               s.cls == CausalClass::CompromisedController;
                                    });
        EXPECT_TRUE(has_ctrl) << uca.id;
    }
}

TEST(Scenarios, FeedbackScenariosPerFeedbackPath) {
    Fixture& f = fixture();
    // BPCS has one feedback path (temperature), so each BPCS UCA gets one
    // corrupted-feedback scenario naming the temperature sensor.
    auto it = std::find_if(f.scenarios.begin(), f.scenarios.end(), [](const CausalScenario& s) {
        return s.uca_id == "UCA-1" && s.cls == CausalClass::CorruptedFeedback;
    });
    ASSERT_NE(it, f.scenarios.end());
    ASSERT_FALSE(it->elements.empty());
    EXPECT_EQ(it->elements.front(), "Temperature sensor");
}

TEST(Scenarios, SuppressionClassForNotProvidingUcas) {
    Fixture& f = fixture();
    // UCA-4 (trip withheld) must generate suppressed-action scenarios, not
    // forged ones.
    for (const CausalScenario& s : f.scenarios) {
        if (s.uca_id != "UCA-4") continue;
        EXPECT_NE(s.cls, CausalClass::ForgedControlAction);
    }
    bool suppressed = std::any_of(f.scenarios.begin(), f.scenarios.end(),
                                  [](const CausalScenario& s) {
                                      return s.uca_id == "UCA-4" &&
                                             s.cls == CausalClass::SuppressedAction;
                                  });
    EXPECT_TRUE(suppressed);
}

TEST(Scenarios, SupportedScenariosCiteWeaknesses) {
    Fixture& f = fixture();
    // Controllers carry weakness matches (CWE-78 etc.), so their
    // compromised-controller scenarios are supported.
    auto it = std::find_if(f.scenarios.begin(), f.scenarios.end(), [](const CausalScenario& s) {
        return s.uca_id == "UCA-1" && s.cls == CausalClass::CompromisedController;
    });
    ASSERT_NE(it, f.scenarios.end());
    EXPECT_TRUE(it->supported());
    EXPECT_LE(it->enabling_weaknesses.size(), 5u);
    for (const std::string& w : it->enabling_weaknesses)
        EXPECT_EQ(w.substr(0, 4), "CWE-");
}

TEST(Scenarios, UnsupportedWhenNoVectors) {
    Fixture& f = fixture();
    auto scenarios = generate_scenarios(f.m, f.hazards, search::AssociationMap{});
    for (const CausalScenario& s : scenarios) {
        EXPECT_FALSE(s.supported());
        EXPECT_NE(s.narrative.find("No supporting attack vector"), std::string::npos);
    }
}

TEST(Scenarios, IdsUniqueAndNarrativesComplete) {
    Fixture& f = fixture();
    std::set<std::string> ids;
    for (const CausalScenario& s : f.scenarios) {
        EXPECT_TRUE(ids.insert(s.id).second) << "duplicate id " << s.id;
        EXPECT_FALSE(s.narrative.empty());
        EXPECT_NE(s.narrative.find(s.uca_id), std::string::npos);
        std::string rendered = to_string(s);
        EXPECT_NE(rendered.find(s.id), std::string::npos);
        EXPECT_NE(rendered.find(causal_class_name(s.cls)), std::string::npos);
    }
}

TEST(Scenarios, CausalClassNames) {
    EXPECT_EQ(causal_class_name(CausalClass::CorruptedFeedback), "corrupted-feedback");
    EXPECT_EQ(causal_class_name(CausalClass::SuppressedAction), "suppressed-action");
}
