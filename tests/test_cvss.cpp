#include <gtest/gtest.h>

#include <cmath>

#include "cvss/cvss.hpp"
#include "util/error.hpp"

using namespace cybok::cvss;

// ---------------------------------------------------------------- parsing

TEST(CvssParse, FullBaseVector) {
    Vector v = parse("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H");
    EXPECT_EQ(v.av, AttackVector::Network);
    EXPECT_EQ(v.ac, AttackComplexity::Low);
    EXPECT_EQ(v.pr, PrivilegesRequired::None);
    EXPECT_EQ(v.ui, UserInteraction::None);
    EXPECT_EQ(v.scope, Scope::Unchanged);
    EXPECT_EQ(v.conf, Impact::High);
}

TEST(CvssParse, AcceptsCvss30Prefix) {
    EXPECT_NO_THROW((void)parse("CVSS:3.0/AV:L/AC:H/PR:H/UI:R/S:C/C:L/I:N/A:N"));
}

TEST(CvssParse, TemporalAndEnvironmentalMetrics) {
    Vector v = parse(
        "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H/E:F/RL:O/RC:R/CR:H/MAV:L/MC:N");
    EXPECT_EQ(v.exploit, ExploitMaturity::Functional);
    EXPECT_EQ(v.remediation, RemediationLevel::OfficialFix);
    EXPECT_EQ(v.confidence, ReportConfidence::Reasonable);
    EXPECT_EQ(v.cr, Requirement::High);
    ASSERT_TRUE(v.mav.has_value());
    EXPECT_EQ(*v.mav, AttackVector::Local);
    ASSERT_TRUE(v.mconf.has_value());
    EXPECT_EQ(*v.mconf, Impact::None);
    EXPECT_FALSE(v.mac.has_value());
}

TEST(CvssParse, RejectsMalformedVectors) {
    EXPECT_THROW((void)parse("AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"), cybok::ParseError);
    EXPECT_THROW((void)parse("CVSS:3.1/AV:N"), cybok::ParseError); // missing base metrics
    EXPECT_THROW((void)parse("CVSS:3.1/AV:Z/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"), cybok::ParseError);
    EXPECT_THROW((void)parse("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H/XX:Y"),
                 cybok::ParseError);
    EXPECT_THROW((void)parse("CVSS:3.1/AVN"), cybok::ParseError);
    EXPECT_THROW((void)parse(""), cybok::ParseError);
}

TEST(CvssParse, ToStringRoundTrip) {
    const char* vectors[] = {
        "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H",
        "CVSS:3.1/AV:P/AC:H/PR:H/UI:R/S:C/C:L/I:N/A:L",
        "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H/E:P/RL:W/RC:U/CR:L/IR:M/AR:H/"
        "MAV:A/MAC:H/MPR:L/MUI:R/MS:C/MC:L/MI:N/MA:H",
    };
    for (const char* s : vectors) {
        Vector v = parse(s);
        EXPECT_EQ(parse(to_string(v)), v) << s;
    }
}

// ---------------------------------------------------------------- scoring
// Reference scores from the FIRST.org CVSS v3.1 calculator.

struct ScoreCase {
    const char* vector;
    double expected;
};

class CvssBaseScore : public testing::TestWithParam<ScoreCase> {};

TEST_P(CvssBaseScore, MatchesReference) {
    EXPECT_DOUBLE_EQ(base_score(parse(GetParam().vector)), GetParam().expected)
        << GetParam().vector;
}

INSTANTIATE_TEST_SUITE_P(
    ReferenceVectors, CvssBaseScore,
    testing::Values(
        ScoreCase{"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H", 9.8},
        ScoreCase{"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H", 10.0},
        ScoreCase{"CVSS:3.1/AV:N/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H", 8.8},
        ScoreCase{"CVSS:3.1/AV:N/AC:H/PR:N/UI:R/S:U/C:L/I:L/A:N", 4.2},
        ScoreCase{"CVSS:3.1/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:N/A:N", 5.5},
        ScoreCase{"CVSS:3.1/AV:N/AC:L/PR:N/UI:R/S:C/C:L/I:L/A:N", 6.1},
        ScoreCase{"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:N", 0.0},
        ScoreCase{"CVSS:3.1/AV:P/AC:H/PR:H/UI:R/S:U/C:L/I:N/A:N", 1.6},
        ScoreCase{"CVSS:3.1/AV:A/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:H", 6.5},
        ScoreCase{"CVSS:3.1/AV:L/AC:L/PR:N/UI:R/S:U/C:H/I:H/A:H", 7.8}));

TEST(CvssScore, RangeInvariant) {
    // Sweep a coarse grid of base vectors; scores must stay in [0, 10]
    // with one decimal.
    const char* avs[] = {"N", "A", "L", "P"};
    const char* cias[] = {"H", "L", "N"};
    const char* scopes[] = {"U", "C"};
    for (const char* av : avs)
        for (const char* c : cias)
            for (const char* i : cias)
                for (const char* s : scopes) {
                    std::string vec = std::string("CVSS:3.1/AV:") + av +
                                      "/AC:L/PR:L/UI:N/S:" + s + "/C:" + c + "/I:" + i +
                                      "/A:N";
                    double score = base_score(parse(vec));
                    EXPECT_GE(score, 0.0) << vec;
                    EXPECT_LE(score, 10.0) << vec;
                    // One-decimal grid.
                    EXPECT_NEAR(score * 10.0, std::round(score * 10.0), 1e-9) << vec;
                }
}

TEST(CvssScore, ZeroImpactMeansZeroScore) {
    Vector v = parse("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:C/C:N/I:N/A:N");
    EXPECT_DOUBLE_EQ(base_score(v), 0.0);
    EXPECT_DOUBLE_EQ(temporal_score(v), 0.0);
    EXPECT_DOUBLE_EQ(environmental_score(v), 0.0);
}

TEST(CvssScore, TemporalNeverExceedsBase) {
    Vector v = parse("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H/E:U/RL:O/RC:U");
    EXPECT_LT(temporal_score(v), base_score(v));
    Vector nd = parse("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H");
    EXPECT_DOUBLE_EQ(temporal_score(nd), base_score(nd));
}

TEST(CvssScore, TemporalReference) {
    // 9.8 base with E:F/RL:O/RC:C -> 9.1 (FIRST calculator).
    Vector v = parse("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H/E:F/RL:O/RC:C");
    EXPECT_DOUBLE_EQ(temporal_score(v), 9.1);
}

TEST(CvssScore, EnvironmentalEqualsTemporalWhenUnmodified) {
    Vector v = parse("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H/E:F");
    EXPECT_DOUBLE_EQ(environmental_score(v), temporal_score(v));
}

TEST(CvssScore, EnvironmentalRespondsToRequirements) {
    Vector base = parse("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:N/A:N");
    Vector high = parse("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:N/A:N/CR:H");
    Vector low = parse("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:N/A:N/CR:L");
    EXPECT_GE(environmental_score(high), environmental_score(base));
    EXPECT_LT(environmental_score(low), environmental_score(base));
}

TEST(CvssScore, EnvironmentalModifiedImpactNoneIsZero) {
    Vector v = parse("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H/MC:N/MI:N/MA:N");
    EXPECT_DOUBLE_EQ(environmental_score(v), 0.0);
}

TEST(CvssScore, SubscoreRelationships) {
    Vector v = parse("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H");
    EXPECT_GT(impact_subscore(v), 0.0);
    EXPECT_GT(exploitability_subscore(v), 0.0);
    EXPECT_NEAR(exploitability_subscore(v), 3.887, 0.001);
}

TEST(CvssRoundup, SpecBehavior) {
    EXPECT_DOUBLE_EQ(roundup(4.02), 4.1);
    EXPECT_DOUBLE_EQ(roundup(4.0), 4.0);
    EXPECT_DOUBLE_EQ(roundup(0.0), 0.0);
    EXPECT_DOUBLE_EQ(roundup(9.99), 10.0);
    // Appendix A regression: floating artifacts must not bump the value.
    EXPECT_DOUBLE_EQ(roundup(8.6 * 1.0), 8.6);
}

TEST(CvssSeverity, Bands) {
    EXPECT_EQ(severity_band(0.0), Severity::None);
    EXPECT_EQ(severity_band(0.1), Severity::Low);
    EXPECT_EQ(severity_band(3.9), Severity::Low);
    EXPECT_EQ(severity_band(4.0), Severity::Medium);
    EXPECT_EQ(severity_band(6.9), Severity::Medium);
    EXPECT_EQ(severity_band(7.0), Severity::High);
    EXPECT_EQ(severity_band(8.9), Severity::High);
    EXPECT_EQ(severity_band(9.0), Severity::Critical);
    EXPECT_EQ(severity_band(10.0), Severity::Critical);
    EXPECT_EQ(severity_name(Severity::Critical), "Critical");
}
