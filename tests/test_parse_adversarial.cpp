// Adversarial inputs for the two text parsers. Every case must produce a
// typed ParseError (never a crash, hang, or uncaught std:: exception) —
// the CI ASan job runs these to prove no adversarial document reaches
// undefined behavior. The deep-nesting cases pin the recursion guard:
// kMaxParseDepth in json.cpp/xml.cpp bounds the stack instead of letting
// a hostile document overflow it.

#include <gtest/gtest.h>

#include <string>

#include "util/json.hpp"
#include "util/xml.hpp"

using namespace cybok;

namespace {

std::string repeat(const char* unit, std::size_t n) {
    std::string out;
    out.reserve(n * 2);
    for (std::size_t i = 0; i < n; ++i) out += unit;
    return out;
}

} // namespace

// ------------------------------------------------------------------- JSON

TEST(JsonAdversarial, TruncatedDocumentsThrowTyped) {
    for (const char* doc : {"", "{", "[", "[1,", "{\"k\":", "{\"k\"", "tru", "nul",
                            "-", "\"abc", "[1, 2", "{\"a\": 1,"}) {
        EXPECT_THROW((void)json::parse(doc), ParseError) << "doc: " << doc;
    }
}

TEST(JsonAdversarial, UnterminatedStringsThrowTyped) {
    EXPECT_THROW((void)json::parse("\"never closed"), ParseError);
    EXPECT_THROW((void)json::parse("\"trailing backslash\\"), ParseError);
    EXPECT_THROW((void)json::parse("\"bad escape \\q\""), ParseError);
    EXPECT_THROW((void)json::parse("\"short unicode \\u12\""), ParseError);
    EXPECT_THROW((void)json::parse("\"bad unicode \\uZZZZ\""), ParseError);
}

TEST(JsonAdversarial, DeepNestingIsBoundedNotStackOverflow) {
    // Just inside the guard: parses fine.
    const std::string ok = repeat("[", 150) + "1" + repeat("]", 150);
    EXPECT_TRUE(json::parse(ok).is_array());
    // Far beyond the guard: a typed error, not a blown stack. 100k frames
    // of unguarded recursion would overflow long before returning.
    const std::string arrays = repeat("[", 100000);
    EXPECT_THROW((void)json::parse(arrays), ParseError);
    const std::string objects = repeat("{\"k\":", 100000);
    EXPECT_THROW((void)json::parse(objects), ParseError);
    const std::string mixed = repeat("[{\"k\":", 50000);
    EXPECT_THROW((void)json::parse(mixed), ParseError);
}

TEST(JsonAdversarial, ControlCharactersAndGarbageThrowTyped) {
    EXPECT_THROW((void)json::parse("\"raw \x01 control\""), ParseError);
    EXPECT_THROW((void)json::parse("{]}"), ParseError);
    EXPECT_THROW((void)json::parse("[1 2]"), ParseError);
    EXPECT_THROW((void)json::parse("{\"a\" 1}"), ParseError);
    EXPECT_THROW((void)json::parse("[1] trailing"), ParseError);
    EXPECT_THROW((void)json::parse("\xff\xfe\x00"), ParseError);
}

TEST(JsonAdversarial, ErrorsCarryByteOffsets) {
    try {
        (void)json::parse("[1, 2, !]");
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_EQ(e.offset(), 7u);
    }
}

// -------------------------------------------------------------------- XML

TEST(XmlAdversarial, TruncatedDocumentsThrowTyped) {
    for (const char* doc : {"", "<", "<a", "<a>", "<a><b></b>", "<a attr", "<a attr=",
                            "<a attr=\"v", "<!--never closed", "<?xml version=\"1.0\""}) {
        EXPECT_THROW((void)xml::parse(doc), ParseError) << "doc: " << doc;
    }
}

TEST(XmlAdversarial, MismatchedAndMalformedTagsThrowTyped) {
    EXPECT_THROW((void)xml::parse("<a></b>"), ParseError);
    EXPECT_THROW((void)xml::parse("<a><b></a></b>"), ParseError);
    EXPECT_THROW((void)xml::parse("</a>"), ParseError);
    EXPECT_THROW((void)xml::parse("<a/><b/>"), ParseError); // two roots
    EXPECT_THROW((void)xml::parse("text only"), ParseError);
}

TEST(XmlAdversarial, MalformedEntitiesThrowTypedNotStdExceptions) {
    // These once reached std::stoi and escaped as std::invalid_argument /
    // std::out_of_range — untyped crashes for any caller catching only
    // cybok::Error. All must be ParseError now.
    EXPECT_THROW((void)xml::parse("<a>&#;</a>"), ParseError);        // empty reference
    EXPECT_THROW((void)xml::parse("<a>&#x;</a>"), ParseError);       // empty hex digits
    EXPECT_THROW((void)xml::parse("<a>&#abc;</a>"), ParseError);     // non-digit
    EXPECT_THROW((void)xml::parse("<a>&#xZZ;</a>"), ParseError);     // non-hex digit
    EXPECT_THROW((void)xml::parse("<a>&#99999999999999999999;</a>"), ParseError); // overflow
    EXPECT_THROW((void)xml::parse("<a>&#128;</a>"), ParseError);     // non-ASCII cp
    EXPECT_THROW((void)xml::parse("<a>&bogus;</a>"), ParseError);    // unknown entity
    EXPECT_THROW((void)xml::parse("<a>&amp</a>"), ParseError);       // unterminated
}

TEST(XmlAdversarial, ValidEntitiesStillDecode) {
    const xml::Node n = xml::parse("<a>&lt;&gt;&amp;&quot;&apos;&#65;&#x42;</a>");
    EXPECT_EQ(n.text, "<>&\"'AB");
}

TEST(XmlAdversarial, DeepNestingIsBoundedNotStackOverflow) {
    std::string ok;
    for (int i = 0; i < 150; ++i) ok += "<e>";
    ok += "x";
    for (int i = 0; i < 150; ++i) ok += "</e>";
    EXPECT_EQ(xml::parse(ok).name, "e");

    std::string deep;
    for (int i = 0; i < 100000; ++i) deep += "<e>";
    EXPECT_THROW((void)xml::parse(deep), ParseError);
}

TEST(XmlAdversarial, MalformedAttributesThrowTyped) {
    EXPECT_THROW((void)xml::parse("<a b=unquoted/>"), ParseError);
    EXPECT_THROW((void)xml::parse("<a b=\"&#xZZ;\"/>"), ParseError); // entity in attr value
    EXPECT_THROW((void)xml::parse("<a =\"v\"/>"), ParseError);       // empty attribute name
    EXPECT_THROW((void)xml::parse("<a b\"v\"/>"), ParseError);       // missing '='
}

TEST(XmlAdversarial, ErrorsCarryByteOffsets) {
    try {
        (void)xml::parse("<a>padding&#;</a>");
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        // unescape offsets are relative to the text span ("padding&#;"),
        // where the bad reference starts at index 7.
        EXPECT_EQ(e.offset(), 7u);
    }
}
