#include <gtest/gtest.h>

#include <filesystem>

#include "dashboard/export_bundle.hpp"
#include "dashboard/histogram.hpp"
#include "dashboard/report.hpp"
#include "dashboard/table.hpp"
#include "synth/corpus_gen.hpp"
#include "synth/scada.hpp"

using namespace cybok;
using namespace cybok::dashboard;

// ------------------------------------------------------------------- table

TEST(TextTable, RendersAlignedColumns) {
    TextTable t({"Name", "Count"});
    t.align_right(1);
    t.add_row({"alpha", "1"});
    t.add_row({"long-name", "12345"});
    std::string out = t.render();
    EXPECT_NE(out.find("| Name "), std::string::npos);
    EXPECT_NE(out.find("| alpha"), std::string::npos);
    // Right-aligned numbers: "1" is padded on the left.
    EXPECT_NE(out.find("    1 |"), std::string::npos);
    EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, RowArityEnforced) {
    TextTable t({"A", "B"});
    EXPECT_THROW(t.add_row({"only-one"}), cybok::ValidationError);
    EXPECT_THROW(t.align_right(5), cybok::ValidationError);
    EXPECT_THROW(TextTable empty({}), cybok::ValidationError);
}

TEST(TextTable, MarkdownRendering) {
    TextTable t({"Attribute", "Count"});
    t.align_right(1);
    t.add_row({"Cisco ASA", "3776"});
    std::string md = t.render_markdown();
    EXPECT_NE(md.find("| Attribute | Count |"), std::string::npos);
    EXPECT_NE(md.find("| --- | ---: |"), std::string::npos);
    EXPECT_NE(md.find("| Cisco ASA | 3776 |"), std::string::npos);
}

// ------------------------------------------------------------------ report

namespace {

struct Fixture {
    kb::Corpus corpus = synth::generate_corpus(synth::CorpusProfile::scaled(0.1, 99));
    model::SystemModel m = synth::centrifuge_model();
    search::SearchEngine engine{corpus};
    search::AssociationMap assoc = search::associate(m, engine);
    analysis::SecurityPosture posture = analysis::compute_posture(m, assoc);
    safety::HazardModel hazards = synth::centrifuge_hazards();
    std::vector<safety::ConsequenceTrace> traces =
        safety::ConsequenceAnalyzer(m, hazards).trace(assoc);
};

Fixture& fixture() {
    static Fixture f;
    return f;
}

} // namespace

TEST(Report, ContainsAllSections) {
    Fixture& f = fixture();
    Report r = build_report(f.m, f.assoc, f.posture, f.traces);
    EXPECT_NE(r.find_section("Overview"), nullptr);
    EXPECT_NE(r.find_section("Attack vectors per attribute"), nullptr);
    EXPECT_NE(r.find_section("Component: BPCS platform"), nullptr);
    EXPECT_NE(r.find_section("Posture"), nullptr);
    EXPECT_NE(r.find_section("Physical consequences"), nullptr);
    EXPECT_EQ(r.find_section("Nonexistent"), nullptr);
}

TEST(Report, OptionsDisableSections) {
    Fixture& f = fixture();
    ReportOptions opts;
    opts.include_posture = false;
    opts.include_traces = false;
    opts.include_attribute_table = false;
    Report r = build_report(f.m, f.assoc, f.posture, f.traces, opts);
    EXPECT_EQ(r.find_section("Posture"), nullptr);
    EXPECT_EQ(r.find_section("Physical consequences"), nullptr);
    EXPECT_EQ(r.find_section("Attack vectors per attribute"), nullptr);
}

TEST(Report, TextRenderingMentionsKeyFacts) {
    Fixture& f = fixture();
    std::string text = render_text(build_report(f.m, f.assoc, f.posture, f.traces));
    EXPECT_NE(text.find("Security analysis: particle-separation-centrifuge"),
              std::string::npos);
    EXPECT_NE(text.find("NI RT Linux OS"), std::string::npos);
    EXPECT_NE(text.find("UCA-"), std::string::npos);
}

TEST(Report, HtmlRenderingWellFormedish) {
    Fixture& f = fixture();
    std::string html = render_html(build_report(f.m, f.assoc, f.posture, f.traces));
    EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
    EXPECT_NE(html.find("<table>"), std::string::npos);
    EXPECT_NE(html.find("</html>"), std::string::npos);
    // Escaping: no raw angle brackets from content.
    EXPECT_EQ(html.find("<Programming"), std::string::npos);
}

TEST(Report, AttributeSummaryAggregatesDuplicatesByMax) {
    Fixture& f = fixture();
    TextTable table = attribute_summary_table(f.assoc);
    // NI RT Linux OS appears on both BPCS and SIS but must yield one row.
    std::string text = table.render();
    std::size_t first = text.find("NI RT Linux OS");
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(text.find("NI RT Linux OS", first + 1), std::string::npos);
}

// ------------------------------------------------------------------ bundle

TEST(Bundle, AssociationsJsonRoundTrip) {
    Fixture& f = fixture();
    json::Value doc = associations_to_json(f.assoc);
    search::AssociationMap re = associations_from_json(doc);
    ASSERT_EQ(re.components.size(), f.assoc.components.size());
    EXPECT_EQ(re.total(), f.assoc.total());
    for (std::size_t i = 0; i < re.components.size(); ++i) {
        EXPECT_EQ(re.components[i].component, f.assoc.components[i].component);
        EXPECT_EQ(re.components[i].total(), f.assoc.components[i].total());
    }
    EXPECT_THROW(associations_from_json(json::parse(R"({"format":"bogus"})")),
                 cybok::ValidationError);
}

TEST(Bundle, WritesAllFiles) {
    Fixture& f = fixture();
    std::string dir = testing::TempDir() + "/cybok_bundle_test";
    std::filesystem::create_directories(dir);
    Report r = build_report(f.m, f.assoc, f.posture, f.traces);
    auto files = write_bundle(dir, f.m, f.assoc, r);
    EXPECT_EQ(files.size(), 5u);
    for (const std::string& path : files) {
        EXPECT_TRUE(std::filesystem::exists(path)) << path;
        EXPECT_GT(std::filesystem::file_size(path), 0u) << path;
    }
    EXPECT_THROW(write_bundle("/nonexistent-dir-xyz", f.m, f.assoc, r), cybok::IoError);
}

// --------------------------------------------------------------- histogram

TEST(Histogram, CountsBandsFromMatches) {
    std::vector<search::Match> matches;
    auto add = [&](double severity) {
        search::Match m;
        m.cls = search::VectorClass::Vulnerability;
        m.severity = severity;
        matches.push_back(std::move(m));
    };
    add(9.8);
    add(9.0);
    add(7.5);
    add(5.0);
    add(2.0);
    add(-1.0); // unscored
    // Non-vulnerability matches are ignored.
    search::Match w;
    w.cls = search::VectorClass::Weakness;
    w.severity = 9.9;
    matches.push_back(w);

    SeverityHistogram h = severity_histogram(matches);
    EXPECT_EQ(h.band(cvss::Severity::Critical), 2u);
    EXPECT_EQ(h.band(cvss::Severity::High), 1u);
    EXPECT_EQ(h.band(cvss::Severity::Medium), 1u);
    EXPECT_EQ(h.band(cvss::Severity::Low), 1u);
    EXPECT_EQ(h.unscored, 1u);
    EXPECT_EQ(h.total(), 6u);
}

TEST(Histogram, RenderShowsBarsAndCounts) {
    SeverityHistogram h;
    h.band(cvss::Severity::Critical) = 4;
    h.band(cvss::Severity::High) = 2;
    std::string text = render(h, 8);
    EXPECT_NE(text.find("Critical |######## 4"), std::string::npos);
    EXPECT_NE(text.find("High     |#### 2"), std::string::npos);
    // Zero rows render without bars.
    EXPECT_NE(text.find("Low      | 0"), std::string::npos);
}

TEST(Histogram, AssociationMapHistogramMatchesCounts) {
    Fixture& f = fixture();
    SeverityHistogram h = severity_histogram(f.assoc);
    EXPECT_EQ(h.total(), f.assoc.total(search::VectorClass::Vulnerability));
    EXPECT_GT(h.band(cvss::Severity::Critical) + h.band(cvss::Severity::High), 0u);
}

TEST(Report, IncludesSeverityDistribution) {
    Fixture& f = fixture();
    Report r = build_report(f.m, f.assoc, f.posture, f.traces);
    const Section* sev = r.find_section("Vulnerability severity distribution");
    ASSERT_NE(sev, nullptr);
    EXPECT_FALSE(sev->lines.empty());
}
