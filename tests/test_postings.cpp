// Block-compressed posting codec: round-trip properties over seeded
// posting distributions, block-structure invariants, cursor (NextGEQ)
// semantics against a plain-vector reference, slab adoption, and typed
// rejection of truncated or garbage bytes at both validation layers
// (structural checks in from_slabs, per-block checks in decode_block).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "text/postings.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

using namespace cybok;
using namespace cybok::text;

namespace {

/// One seeded posting list: sorted unique doc ids with per-posting weights
/// drawn from a mix of integral and fractional values (so every WeightTag
/// shows up across the matrix).
std::vector<Posting> random_list(Rng& rng, std::uint32_t n_docs, std::size_t target,
                                 bool ones_only = false) {
    std::vector<Posting> out;
    if (target == 0 || n_docs == 0) return out;
    out.reserve(target);
    // Average gap sized so the list spreads over the whole doc space.
    const std::uint64_t max_gap = std::max<std::uint64_t>(1, (n_docs / target) * 2);
    std::uint64_t doc = rng.uniform(0, std::min<std::uint64_t>(max_gap - 1, n_docs - 1));
    while (doc < n_docs && out.size() < target) {
        float w = 1.0f;
        if (!ones_only) {
            switch (rng.uniform(0, 3)) {
            case 0: w = 1.0f; break;
            case 1: w = static_cast<float>(rng.uniform(1, 200)); break;   // u8/u16 range
            case 2: w = static_cast<float>(rng.uniform(1, 60000)); break; // u16 range
            default: w = static_cast<float>(rng.uniform(1, 50)) + 0.5f;   // forces f32
            }
        }
        out.push_back({static_cast<DocId>(doc), w});
        doc += 1 + rng.uniform(0, max_gap - 1);
    }
    return out;
}

/// Encode then reload through the slab path (the snapshot thaw route), so
/// every round-trip assertion also covers serialize -> view-in-place.
PostingStore reload_via_slabs(const PostingStore& store, const util::AlignedBuffer& backing,
                              std::uint32_t n_docs) {
    // The backing holds [terms][blocks][data] at 64-byte-aligned offsets.
    const std::string_view all = backing.view();
    const std::size_t terms_end = store.term_bytes().size();
    const std::size_t blocks_begin = util::align_up(terms_end, 64);
    const std::size_t blocks_end = blocks_begin + store.block_bytes().size();
    const std::size_t data_begin = util::align_up(blocks_end, 64);
    return PostingStore::from_slabs(all.substr(0, terms_end),
                                    all.substr(blocks_begin, blocks_end - blocks_begin),
                                    all.substr(data_begin, store.data_bytes().size()), n_docs);
}

/// 64-byte-aligned backing holding the store's three ranges contiguously
/// (what SlabWriter produces inside a real snapshot).
util::AlignedBuffer slab_backing(const PostingStore& store) {
    util::SlabWriter w;
    w.add(store.term_bytes());
    w.add(store.block_bytes());
    w.add(store.data_bytes());
    return util::AlignedBuffer(w.bytes());
}

void expect_equal_lists(const std::vector<Posting>& want, const std::vector<Posting>& got) {
    ASSERT_EQ(want.size(), got.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(want[i].doc, got[i].doc) << "posting " << i;
        ASSERT_EQ(want[i].weight, got[i].weight) << "posting " << i; // exact, lossless
    }
}

} // namespace

// ------------------------------------------------------------ round trips

TEST(PostingsCodec, RoundTripsSeededDistributions) {
    // (n_docs, target postings, ones_only) across singleton, short, block
    // boundary +/- 1, multi-block, and a 2^21-doc space whose deltas need
    // multi-byte varints.
    struct Shape {
        std::uint32_t n_docs;
        std::size_t target;
        bool ones;
    };
    const Shape shapes[] = {
        {1, 1, false},          {100, 1, false},         {1000, 127, false},
        {1000, 128, false},     {1000, 129, true},       {5000, 1000, false},
        {1u << 21, 3000, false}, {1u << 21, 30000, true},
    };
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        Rng rng(seed);
        for (const Shape& s : shapes) {
            const std::vector<Posting> list = random_list(rng, s.n_docs, s.target, s.ones);
            const PostingStore store = PostingStore::encode({list}, s.n_docs);
            ASSERT_EQ(store.posting_count(), list.size());
            expect_equal_lists(list, decode_postings(store.list(0)));

            // Same bytes, same postings through the slab (thaw) path.
            const util::AlignedBuffer backing = slab_backing(store);
            const PostingStore thawed = reload_via_slabs(store, backing, s.n_docs);
            EXPECT_FALSE(thawed.owning());
            expect_equal_lists(list, decode_postings(thawed.list(0)));
            // Re-freezing a thawed store is bit-exact.
            EXPECT_EQ(thawed.term_bytes(), store.term_bytes());
            EXPECT_EQ(thawed.block_bytes(), store.block_bytes());
            EXPECT_EQ(thawed.data_bytes(), store.data_bytes());
        }
    }
}

TEST(PostingsCodec, DenseRunCompressesToAllOnesBlocks) {
    // Consecutive docs with weight 1: one byte per posting (delta 1) and
    // no weight bytes at all beyond the 2-byte block headers.
    std::vector<Posting> list;
    for (DocId d = 0; d < 1000; ++d) list.push_back({d, 1.0f});
    const PostingStore store = PostingStore::encode({list}, 1000);
    const ListView lv = store.list(0);
    EXPECT_EQ(lv.n_blocks, (1000 + kBlockDocs - 1) / kBlockDocs);
    EXPECT_EQ(store.data_bytes().size(), list.size() + 2 * lv.n_blocks);
    expect_equal_lists(list, decode_postings(lv));
    // Resident bytes beat the uncompressed 8-byte Posting form outright.
    EXPECT_LT(store.byte_size(), list.size() * sizeof(Posting));
}

TEST(PostingsCodec, MultiTermStoreKeepsListsIndependent) {
    Rng rng(42);
    std::vector<std::vector<Posting>> lists;
    for (int t = 0; t < 20; ++t)
        lists.push_back(random_list(rng, 4096, static_cast<std::size_t>(rng.uniform(0, 400))));
    const PostingStore store = PostingStore::encode(lists, 4096);
    ASSERT_EQ(store.term_count(), lists.size());
    for (std::size_t t = 0; t < lists.size(); ++t)
        expect_equal_lists(lists[t], decode_postings(store.list(static_cast<TermId>(t))));
    // Out-of-range terms give a well-formed empty view, not UB.
    EXPECT_TRUE(store.list(static_cast<TermId>(lists.size())).empty());
}

TEST(PostingsCodec, BlockStructureInvariantsHold) {
    Rng rng(7);
    const std::vector<Posting> list = random_list(rng, 100000, 1000);
    const PostingStore store = PostingStore::encode({list}, 100000);
    const ListView lv = store.list(0);
    std::uint32_t docs[kBlockDocs];
    float weights[kBlockDocs];
    std::size_t seen = 0;
    for (std::uint32_t b = 0; b < lv.n_blocks; ++b) {
        // Blocks decode independently and in isolation (metadata carries
        // the delta base), in any order.
        const std::uint32_t probe = lv.n_blocks - 1 - b;
        const std::size_t n = decode_block(lv, probe, docs, weights);
        if (probe + 1 < lv.n_blocks) {
            EXPECT_EQ(n, kBlockDocs) << "non-final block must be full";
        }
        EXPECT_EQ(docs[n - 1], lv.blocks[probe].last_doc);
        seen += n;
    }
    EXPECT_EQ(seen, list.size());
}

// ----------------------------------------------------------------- cursor

TEST(PostingsCursor, SeekMatchesReferenceNextGEQ) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        Rng rng(seed);
        const std::uint32_t n_docs = 1u << 18;
        const std::vector<Posting> list = random_list(rng, n_docs, 2000);
        if (list.empty()) continue;
        const PostingStore store = PostingStore::encode({list}, n_docs);
        std::uint32_t docs[kBlockDocs];
        float weights[kBlockDocs];
        PostingStats stats;
        PostingCursor cur;
        cur.reset(store.list(0), docs, weights, &stats);

        DocId target = 0;
        while (true) {
            auto it = std::lower_bound(list.begin(), list.end(), target,
                                       [](const Posting& p, DocId t) { return p.doc < t; });
            if (it == list.end()) {
                cur.seek(target);
                EXPECT_TRUE(cur.exhausted());
                break;
            }
            cur.seek(target);
            ASSERT_FALSE(cur.exhausted());
            EXPECT_EQ(cur.doc(), it->doc);
            EXPECT_EQ(cur.weight(), it->weight);
            // Mix small steps (in-block) with long jumps (block skips).
            target = it->doc + static_cast<DocId>(rng.chance(0.3)
                                                      ? rng.uniform(1, 5)
                                                      : rng.uniform(1, n_docs / 8));
        }
        // Long jumps must actually skip blocks without decoding them.
        EXPECT_GT(stats.blocks_skipped, 0u) << "seed " << seed;
    }
}

TEST(PostingsCursor, SkippedBlocksAreNeverDecoded) {
    // A long list and one far seek: everything between block 0 and the
    // landing block is passed over by metadata comparison alone.
    std::vector<Posting> list;
    for (DocId d = 0; d < 10000; ++d) list.push_back({d * 2, 1.0f});
    const PostingStore store = PostingStore::encode({list}, 20000);
    std::uint32_t docs[kBlockDocs];
    float weights[kBlockDocs];
    PostingStats stats;
    PostingCursor cur;
    cur.reset(store.list(0), docs, weights, &stats);
    cur.seek(19000);
    ASSERT_FALSE(cur.exhausted());
    EXPECT_EQ(cur.doc(), 19000u);
    // Doc 19000 is posting 9500, i.e. block 74; reset decoded block 0, so
    // blocks 1..73 were passed over by metadata comparison alone and
    // blocks 75.. were never touched at all.
    EXPECT_EQ(stats.blocks_decoded, 2u); // block 0 (reset) + the landing block
    EXPECT_EQ(stats.blocks_skipped, 73u);
    EXPECT_EQ(stats.postings_decoded, 2u * kBlockDocs);
}

// ------------------------------------------------- encode-time validation

TEST(PostingsCodec, EncodeRejectsMalformedInput) {
    // Unsorted docs.
    EXPECT_THROW((void)PostingStore::encode({{{5, 1.0f}, {3, 1.0f}}}, 10), ValidationError);
    // Duplicate docs.
    EXPECT_THROW((void)PostingStore::encode({{{3, 1.0f}, {3, 1.0f}}}, 10), ValidationError);
    // Doc id outside the corpus.
    EXPECT_THROW((void)PostingStore::encode({{{10, 1.0f}}}, 10), ValidationError);
}

// ------------------------------------------- structural slab validation

namespace {

/// Adopt (terms, blocks, data) copies through aligned buffers so the only
/// rejection reason can be the corruption under test, never alignment.
PostingStore adopt(std::string terms, std::string blocks, std::string data,
                   std::uint32_t n_docs) {
    static std::vector<util::AlignedBuffer> keep_alive; // views must outlive the call
    keep_alive.emplace_back(terms);
    const std::string_view t = keep_alive.back().view();
    keep_alive.emplace_back(blocks);
    const std::string_view b = keep_alive.back().view();
    keep_alive.emplace_back(data);
    const std::string_view d = keep_alive.back().view();
    return PostingStore::from_slabs(t, b, d, n_docs);
}

} // namespace

TEST(PostingsCodec, FromSlabsRejectsStructuralCorruption) {
    Rng rng(11);
    const std::vector<Posting> list = random_list(rng, 5000, 700);
    const PostingStore store = PostingStore::encode({list}, 5000);
    const std::string terms(store.term_bytes());
    const std::string blocks(store.block_bytes());
    const std::string data(store.data_bytes());

    // The intact triple adopts fine.
    EXPECT_EQ(adopt(terms, blocks, data, 5000).posting_count(), list.size());

    // Ragged ranges: not a multiple of the entry size.
    EXPECT_THROW((void)adopt(terms.substr(0, terms.size() - 1), blocks, data, 5000), ParseError);
    EXPECT_THROW((void)adopt(terms, blocks.substr(0, blocks.size() - 3), data, 5000), ParseError);

    // A dropped block: the term's block count no longer matches its
    // doc count.
    EXPECT_THROW((void)adopt(terms, blocks.substr(0, blocks.size() - sizeof(BlockMeta)), data,
                             5000),
                 ParseError);

    // Non-monotone block last_doc ids.
    {
        std::string bad = blocks;
        BlockMeta m{};
        std::memcpy(&m, bad.data(), sizeof m);
        m.last_doc = 5000 + 17; // also >= n_docs
        std::memcpy(bad.data(), &m, sizeof m);
        EXPECT_THROW((void)adopt(terms, bad, data, 5000), ParseError);
    }

    // A block data offset pointing past the packed data.
    {
        std::string bad = blocks;
        BlockMeta m{};
        std::memcpy(&m, bad.data() + sizeof(BlockMeta), sizeof m);
        m.data_off = static_cast<std::uint32_t>(data.size() + 100);
        std::memcpy(bad.data() + sizeof(BlockMeta), &m, sizeof m);
        EXPECT_THROW((void)adopt(terms, bad, data, 5000), ParseError);
    }

    // A term entry whose doc_count disagrees with the block shapes.
    {
        std::string bad = terms;
        TermEntry e{};
        std::memcpy(&e, bad.data(), sizeof e);
        e.doc_count += kBlockDocs; // claims one more block than exists
        std::memcpy(bad.data(), &e, sizeof e);
        EXPECT_THROW((void)adopt(bad, blocks, data, 5000), ParseError);
    }
}

// --------------------------------------------- decode-time data validation

TEST(PostingsCodec, DecodeRejectsTruncatedAndGarbageBlocks) {
    Rng rng(13);
    const std::vector<Posting> list = random_list(rng, 5000, 700);
    const PostingStore store = PostingStore::encode({list}, 5000);
    const std::string terms(store.term_bytes());
    const std::string blocks(store.block_bytes());
    const std::string data(store.data_bytes());
    std::uint32_t docs[kBlockDocs];
    float weights[kBlockDocs];

    // Garbage posting count in a block header.
    {
        std::string bad = data;
        bad[0] = static_cast<char>(0xFF); // count-1 byte: claims 256 postings
        const PostingStore s = adopt(terms, blocks, bad, 5000);
        EXPECT_THROW((void)decode_block(s.list(0), 0, docs, weights), ParseError);
    }
    // Out-of-range weight tag.
    {
        std::string bad = data;
        bad[1] = static_cast<char>(0x7E);
        const PostingStore s = adopt(terms, blocks, bad, 5000);
        EXPECT_THROW((void)decode_block(s.list(0), 0, docs, weights), ParseError);
    }
    // Truncated packed data: the final block's bytes are cut short. The
    // structural checks cannot see this (offsets still fit); the decode
    // must die typed instead of over-reading.
    {
        const std::string bad = data.substr(0, data.size() - 1);
        const PostingStore s = adopt(terms, blocks, bad, 5000);
        const ListView lv = s.list(0);
        EXPECT_THROW((void)decode_block(lv, lv.n_blocks - 1, docs, weights), ParseError);
    }
    // Bit flips inside the varint stream: either the running doc id stops
    // matching the block's last_doc, monotonicity breaks, or the slice is
    // mis-consumed — all typed, never silent wrong postings. (A handful of
    // offsets; exhaustive flipping is the soak suite's job.)
    for (std::size_t off = 2; off < std::min<std::size_t>(data.size(), 34); ++off) {
        std::string bad = data;
        bad[off] ^= 0x55;
        const PostingStore s = adopt(terms, blocks, bad, 5000);
        try {
            const std::vector<Posting> got = decode_postings(s.list(0));
            // Decodes that survive must at least preserve the block frame:
            // same posting count, same final doc (guaranteed by the
            // last_doc check). Weight bytes are not checksummed here —
            // that is the snapshot frame's job.
            EXPECT_EQ(got.size(), list.size());
        } catch (const ParseError&) {
            // typed rejection is the expected common case
        }
    }
}

TEST(PostingsCodec, EmptyStoreAndEmptyTermsAreWellFormed) {
    const PostingStore empty = PostingStore::encode({}, 0);
    EXPECT_EQ(empty.term_count(), 0u);
    EXPECT_EQ(empty.posting_count(), 0u);
    EXPECT_TRUE(empty.list(0).empty());

    // Terms with no postings between populated ones.
    const std::vector<std::vector<Posting>> lists = {
        {{1, 2.0f}}, {}, {{0, 1.0f}, {9, 3.5f}}, {}};
    const PostingStore store = PostingStore::encode(lists, 10);
    EXPECT_TRUE(store.list(1).empty());
    EXPECT_TRUE(store.list(3).empty());
    expect_equal_lists(lists[2], decode_postings(store.list(2)));
    // Cursor over an empty list is born exhausted.
    std::uint32_t docs[kBlockDocs];
    float weights[kBlockDocs];
    PostingCursor cur;
    cur.reset(store.list(1), docs, weights, nullptr);
    EXPECT_TRUE(cur.exhausted());
}
