#include <gtest/gtest.h>

#include "kb/hierarchy.hpp"
#include "util/error.hpp"

using namespace cybok::kb;

namespace {

/// Weakness tree: 1 -> {2 -> {4, 5}, 3}; 6 is a second root.
/// Pattern tree: 10 -> 11.
Corpus tree_corpus() {
    Corpus c;
    auto add_w = [&c](std::uint32_t id, std::uint32_t parent) {
        Weakness w;
        w.id = WeaknessId{id};
        w.name = "W" + std::to_string(id);
        w.parent = WeaknessId{parent};
        c.add(w);
    };
    add_w(1, 0);
    add_w(2, 1);
    add_w(3, 1);
    add_w(4, 2);
    add_w(5, 2);
    add_w(6, 0);

    auto add_p = [&c](std::uint32_t id, std::uint32_t parent) {
        AttackPattern p;
        p.id = AttackPatternId{id};
        p.parent = AttackPatternId{parent};
        c.add(p);
    };
    add_p(10, 0);
    add_p(11, 10);
    c.reindex();
    return c;
}

} // namespace

TEST(Hierarchy, AncestorsWalkToRoot) {
    Corpus c = tree_corpus();
    Hierarchy h(c);
    auto chain = h.ancestors(WeaknessId{4});
    ASSERT_EQ(chain.size(), 2u);
    EXPECT_EQ(chain[0].value, 2u);
    EXPECT_EQ(chain[1].value, 1u);
    EXPECT_TRUE(h.ancestors(WeaknessId{1}).empty());
    EXPECT_TRUE(h.ancestors(WeaknessId{99}).empty()); // unknown id
}

TEST(Hierarchy, RootResolution) {
    Corpus c = tree_corpus();
    Hierarchy h(c);
    EXPECT_EQ(h.root(WeaknessId{4}).value, 1u);
    EXPECT_EQ(h.root(WeaknessId{3}).value, 1u);
    EXPECT_EQ(h.root(WeaknessId{6}).value, 6u); // own root
    EXPECT_EQ(h.root(AttackPatternId{11}).value, 10u);
}

TEST(Hierarchy, Children) {
    Corpus c = tree_corpus();
    Hierarchy h(c);
    auto kids = h.children(WeaknessId{1});
    ASSERT_EQ(kids.size(), 2u);
    EXPECT_EQ(kids[0].value, 2u);
    EXPECT_EQ(kids[1].value, 3u);
    EXPECT_TRUE(h.children(WeaknessId{4}).empty());
    EXPECT_EQ(h.children(AttackPatternId{10}).size(), 1u);
}

TEST(Hierarchy, Descendants) {
    Corpus c = tree_corpus();
    Hierarchy h(c);
    auto sub = h.descendants(WeaknessId{1});
    ASSERT_EQ(sub.size(), 4u); // 2,3,4,5
    EXPECT_EQ(sub[0].value, 2u);
    EXPECT_EQ(sub[3].value, 5u);
    EXPECT_TRUE(h.descendants(WeaknessId{6}).empty());
}

TEST(Hierarchy, DepthAndRoots) {
    Corpus c = tree_corpus();
    Hierarchy h(c);
    EXPECT_EQ(h.depth(WeaknessId{1}), 0u);
    EXPECT_EQ(h.depth(WeaknessId{2}), 1u);
    EXPECT_EQ(h.depth(WeaknessId{4}), 2u);
    auto roots = h.weakness_roots();
    ASSERT_EQ(roots.size(), 2u);
    EXPECT_EQ(roots[0].value, 1u);
    EXPECT_EQ(roots[1].value, 6u);
}

TEST(Hierarchy, CycleDetected) {
    Corpus c;
    Weakness a;
    a.id = WeaknessId{1};
    a.parent = WeaknessId{2};
    c.add(a);
    Weakness b;
    b.id = WeaknessId{2};
    b.parent = WeaknessId{1};
    c.add(b);
    c.reindex();
    Hierarchy h(c);
    EXPECT_THROW((void)h.ancestors(WeaknessId{1}), cybok::ValidationError);
}
