#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/attack_paths.hpp"
#include "analysis/fidelity.hpp"
#include "analysis/posture.hpp"
#include "analysis/whatif.hpp"
#include "synth/corpus_gen.hpp"
#include "synth/scada.hpp"

using namespace cybok;
using namespace cybok::analysis;

namespace {

const kb::Corpus& demo_corpus() {
    static const kb::Corpus corpus =
        synth::generate_corpus(synth::CorpusProfile::scaled(0.1, 99));
    return corpus;
}

const search::SearchEngine& demo_engine() {
    static const search::SearchEngine engine(demo_corpus());
    return engine;
}

search::AssociationMap stub_assoc(
    std::initializer_list<std::pair<const char*, int>> items) {
    search::AssociationMap map;
    for (const auto& [name, n] : items) {
        search::ComponentAssociation ca;
        ca.component = name;
        search::AttributeAssociation aa;
        aa.attribute_name = "role";
        aa.attribute_value = "stub";
        for (int i = 0; i < n; ++i) {
            search::Match m;
            m.cls = i % 2 == 0 ? search::VectorClass::Weakness
                               : search::VectorClass::Vulnerability;
            m.id = "X-" + std::to_string(i);
            m.severity = i % 2 == 1 ? 5.0 + i : -1.0;
            aa.matches.push_back(std::move(m));
        }
        ca.attributes.push_back(std::move(aa));
        map.components.push_back(std::move(ca));
    }
    return map;
}

} // namespace

// ----------------------------------------------------------------- posture

TEST(Posture, ComputesCountsAndExposure) {
    model::SystemModel m = synth::centrifuge_model();
    search::AssociationMap assoc = search::associate(m, demo_engine());
    SecurityPosture posture = compute_posture(m, assoc);

    ASSERT_EQ(posture.components.size(), 6u);
    const ComponentPosture* ws = posture.find("Programming WS");
    ASSERT_NE(ws, nullptr);
    EXPECT_EQ(ws->exposure_hops, 0u); // external-facing
    EXPECT_GT(ws->total_vectors(), 0u);

    const ComponentPosture* bpcs = posture.find("BPCS platform");
    ASSERT_NE(bpcs, nullptr);
    EXPECT_EQ(bpcs->exposure_hops, 2u); // WS -> firewall -> BPCS
    EXPECT_GT(bpcs->centrality, 0.0);   // everything pivots through it

    const ComponentPosture* cf = posture.find("Centrifuge");
    ASSERT_NE(cf, nullptr);
    EXPECT_EQ(cf->exposure_hops, 3u);

    EXPECT_EQ(posture.total_vectors(), assoc.total());
    EXPECT_EQ(posture.find("nope"), nullptr);
}

TEST(Posture, MaxSeverityTracksWorstVulnerability) {
    model::SystemModel m("t", "");
    m.add_component("A", model::ComponentType::Compute);
    SecurityPosture p = compute_posture(m, stub_assoc({{"A", 4}}));
    ASSERT_EQ(p.components.size(), 1u);
    EXPECT_DOUBLE_EQ(p.components[0].max_severity, 8.0); // 5+3
}

TEST(Posture, UnreachableComponentExposure) {
    model::SystemModel m("t", "");
    m.add_component("A", model::ComponentType::Compute); // not external
    SecurityPosture p = compute_posture(m, search::AssociationMap{});
    EXPECT_EQ(p.components[0].exposure_hops, UINT32_MAX);
}

TEST(PostureCompare, ImprovedWhenVectorsDrop) {
    model::SystemModel m("t", "");
    m.add_component("A", model::ComponentType::Compute);
    SecurityPosture before = compute_posture(m, stub_assoc({{"A", 6}}));
    SecurityPosture after = compute_posture(m, stub_assoc({{"A", 2}}));
    PostureComparison cmp = compare(before, after);
    EXPECT_EQ(cmp.verdict, Verdict::Improved);
    EXPECT_EQ(cmp.delta_total, -4);
    ASSERT_EQ(cmp.rows.size(), 1u);
    EXPECT_EQ(cmp.rows[0].component, "A");
}

TEST(PostureCompare, WorsenedAndMixedAndUnchanged) {
    model::SystemModel m("t", "");
    m.add_component("A", model::ComponentType::Compute);
    m.add_component("B", model::ComponentType::Compute);
    auto p = [&](int a, int b) { return compute_posture(m, stub_assoc({{"A", a}, {"B", b}})); };
    EXPECT_EQ(compare(p(1, 1), p(3, 1)).verdict, Verdict::Worsened);
    EXPECT_EQ(compare(p(1, 1), p(3, 0)).verdict, Verdict::Mixed);
    EXPECT_EQ(compare(p(1, 1), p(1, 1)).verdict, Verdict::Unchanged);
    EXPECT_TRUE(compare(p(2, 2), p(2, 2)).rows.empty());
}

TEST(PostureCompare, HandlesAppearingAndDisappearingComponents) {
    model::SystemModel a("t", "");
    a.add_component("A", model::ComponentType::Compute);
    model::SystemModel b("t", "");
    b.add_component("B", model::ComponentType::Compute);
    SecurityPosture pa = compute_posture(a, stub_assoc({{"A", 3}}));
    SecurityPosture pb = compute_posture(b, stub_assoc({{"B", 5}}));
    PostureComparison cmp = compare(pa, pb);
    EXPECT_EQ(cmp.delta_total, 2); // -3 + 5
    EXPECT_EQ(cmp.verdict, Verdict::Mixed);
}

TEST(PostureCompare, VerdictNames) {
    EXPECT_EQ(verdict_name(Verdict::Improved), "improved");
    EXPECT_EQ(verdict_name(Verdict::Mixed), "mixed");
}

// -------------------------------------------------------------- attack paths

TEST(AttackPaths, RequireVectorsAlongThePath) {
    model::SystemModel m = synth::centrifuge_model();
    // Only the WS and BPCS carry vectors: the path WS->FW->BPCS is broken
    // at the firewall.
    auto paths = attack_paths(m, stub_assoc({{"Programming WS", 2}, {"BPCS platform", 3}}),
                              "BPCS platform");
    EXPECT_TRUE(paths.empty());

    // Give the firewall a vector and the path exists.
    paths = attack_paths(
        m,
        stub_assoc({{"Programming WS", 2}, {"Control firewall", 1}, {"BPCS platform", 3}}),
        "BPCS platform");
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_EQ(paths[0].components.size(), 3u);
    EXPECT_EQ(paths[0].components.front(), "Programming WS");
    EXPECT_EQ(paths[0].components.back(), "BPCS platform");
    EXPECT_EQ(paths[0].total_vectors, 6u);
    EXPECT_EQ(paths[0].weakest_link, 1u);
    EXPECT_EQ(paths[0].hops(), 2u);
}

TEST(AttackPaths, MinVectorsPerHopRaisesTheBar) {
    model::SystemModel m = synth::centrifuge_model();
    auto assoc =
        stub_assoc({{"Programming WS", 2}, {"Control firewall", 1}, {"BPCS platform", 3}});
    AttackPathOptions opts;
    opts.min_vectors_per_hop = 2; // firewall (1 vector) no longer traversable
    EXPECT_TRUE(attack_paths(m, assoc, "BPCS platform", opts).empty());
    AttackPathOptions zero;
    zero.min_vectors_per_hop = 0;
    EXPECT_THROW(attack_paths(m, assoc, "BPCS platform", zero), cybok::ValidationError);
}

TEST(AttackPaths, TargetIsEntryPoint) {
    model::SystemModel m = synth::centrifuge_model();
    auto paths = attack_paths(m, stub_assoc({{"Programming WS", 2}}), "Programming WS");
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_EQ(paths[0].hops(), 0u);
}

TEST(AttackPaths, UnknownTargetThrows) {
    model::SystemModel m = synth::centrifuge_model();
    EXPECT_THROW(attack_paths(m, search::AssociationMap{}, "Nonexistent"),
                 cybok::NotFoundError);
}

TEST(AttackPaths, TargetWithoutVectorsUnreachable) {
    model::SystemModel m = synth::centrifuge_model();
    auto paths = attack_paths(m, stub_assoc({{"Programming WS", 2}}), "BPCS platform");
    EXPECT_TRUE(paths.empty());
}

TEST(AttackPaths, TruncatedFlagDistinguishesCapFromExhaustion) {
    // Entry with two disjoint routes to the target: capping max_paths at
    // one must be reported as a truncation, a roomy cap as exhaustion.
    model::SystemModel m("twopath", "two disjoint entry->target routes");
    const auto a = m.add_component("Entry", model::ComponentType::Compute);
    const auto b = m.add_component("Upper", model::ComponentType::Network);
    const auto c = m.add_component("Lower", model::ComponentType::Network);
    const auto t = m.add_component("Target", model::ComponentType::Controller);
    m.component(a).external_facing = true;
    m.connect(a, b, "e-u");
    m.connect(a, c, "e-l");
    m.connect(b, t, "u-t");
    m.connect(c, t, "l-t");
    const auto assoc =
        stub_assoc({{"Entry", 2}, {"Upper", 1}, {"Lower", 1}, {"Target", 2}});

    AttackPathOptions capped;
    capped.max_paths = 1;
    const AttackPathsResult one = attack_paths(m, assoc, "Target", capped);
    EXPECT_EQ(one.size(), 1u);
    EXPECT_TRUE(one.truncated);

    const AttackPathsResult both = attack_paths(m, assoc, "Target");
    EXPECT_EQ(both.size(), 2u);
    EXPECT_FALSE(both.truncated);
    // Exposure is the product of per-hop permeabilities: positive, below 1.
    for (const AttackPath& p : both) {
        EXPECT_GT(p.exposure, 0.0);
        EXPECT_LT(p.exposure, 1.0);
    }

    AttackPathOptions hop_cut;
    hop_cut.max_hops = 1; // both routes need 2 hops; pruning is truncation
    const AttackPathsResult none = attack_paths(m, assoc, "Target", hop_cut);
    EXPECT_TRUE(none.empty());
    EXPECT_TRUE(none.truncated);
}

// ------------------------------------------------------------ fidelity sweep

TEST(FidelitySweep, ResultSpaceGrowsWithFidelity) {
    model::SystemModel m = synth::centrifuge_model();
    auto points = fidelity_sweep(m, demo_engine());
    ASSERT_EQ(points.size(), 4u); // conceptual..implementation

    // Attribute count is monotone in fidelity.
    for (std::size_t i = 1; i < points.size(); ++i)
        EXPECT_GE(points[i].attributes, points[i - 1].attributes);

    // The paper's lesson: vulnerabilities only appear at implementation
    // fidelity (platform references), and dominate the result space there.
    EXPECT_EQ(points[0].vulnerabilities, 0u);
    EXPECT_EQ(points[1].vulnerabilities, 0u);
    EXPECT_EQ(points[2].vulnerabilities, 0u);
    EXPECT_GT(points[3].vulnerabilities, 0u);
    EXPECT_GT(points[3].vulnerabilities, points[3].attack_patterns);

    // Specificity (platform-bound fraction) jumps at implementation level.
    EXPECT_DOUBLE_EQ(points[0].specificity, 0.0);
    EXPECT_GT(points[3].specificity, 0.5);
}

TEST(FidelitySweep, FunctionalLevelStillFindsPatterns) {
    model::SystemModel m = synth::centrifuge_model();
    auto points = fidelity_sweep(m, demo_engine());
    // Descriptors exist at functional fidelity; they match patterns and
    // weaknesses even before any product is chosen.
    EXPECT_GT(points[1].attack_patterns + points[1].weaknesses, 0u);
}

// ----------------------------------------------------------------- what-if

TEST(WhatIf, HardenedArchitectureImproves) {
    model::SystemModel before = synth::centrifuge_model();
    search::AssociationMap before_assoc = search::associate(before, demo_engine());
    WhatIfResult result =
        what_if(before, before_assoc, synth::centrifuge_model_hardened(), demo_engine());

    EXPECT_FALSE(result.diff.empty());
    EXPECT_EQ(result.comparison.verdict, Verdict::Improved);
    EXPECT_LT(result.comparison.delta_total, 0);
    EXPECT_LT(result.after_posture.total_vectors(), before_assoc.total());
}

TEST(WhatIf, NoChangeIsUnchanged) {
    model::SystemModel before = synth::centrifuge_model();
    search::AssociationMap before_assoc = search::associate(before, demo_engine());
    WhatIfResult result = what_if(before, before_assoc, synth::centrifuge_model(),
                                  demo_engine());
    EXPECT_TRUE(result.diff.empty());
    EXPECT_EQ(result.comparison.verdict, Verdict::Unchanged);
}

TEST(WhatIf, MatchesFullRecomputation) {
    model::SystemModel before = synth::centrifuge_model();
    search::AssociationMap before_assoc = search::associate(before, demo_engine());
    model::SystemModel after = synth::centrifuge_model_hardened();
    WhatIfResult result = what_if(before, before_assoc, after, demo_engine());
    search::AssociationMap full = search::associate(after, demo_engine());
    EXPECT_EQ(result.after_associations.total(), full.total());
}
