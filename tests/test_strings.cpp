#include <gtest/gtest.h>

#include "util/strings.hpp"

namespace s = cybok::strings;

TEST(Strings, TrimRemovesSurroundingWhitespace) {
    EXPECT_EQ(s::trim("  hello  "), "hello");
    EXPECT_EQ(s::trim("\t\nx\r "), "x");
    EXPECT_EQ(s::trim(""), "");
    EXPECT_EQ(s::trim("   "), "");
    EXPECT_EQ(s::trim("no-trim"), "no-trim");
}

TEST(Strings, SplitPreservesEmptyFields) {
    auto parts = s::split(",a,", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "");
    EXPECT_EQ(parts[1], "a");
    EXPECT_EQ(parts[2], "");
}

TEST(Strings, SplitSingleField) {
    auto parts = s::split("abc", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, SplitWsDropsEmptyFields) {
    auto parts = s::split_ws("  a \t b\nc ");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "b");
    EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitWsEmptyInput) {
    EXPECT_TRUE(s::split_ws("").empty());
    EXPECT_TRUE(s::split_ws("   ").empty());
}

TEST(Strings, JoinRoundTripsSplit) {
    std::vector<std::string> parts{"a", "b", "c"};
    EXPECT_EQ(s::join(parts, ", "), "a, b, c");
    EXPECT_EQ(s::join(std::vector<std::string>{}, ","), "");
    EXPECT_EQ(s::join(std::vector<std::string>{"x"}, ","), "x");
}

TEST(Strings, ToLower) {
    EXPECT_EQ(s::to_lower("MiXeD 123 Case"), "mixed 123 case");
}

TEST(Strings, ReplaceAll) {
    EXPECT_EQ(s::replace_all("a.b.c", ".", "::"), "a::b::c");
    EXPECT_EQ(s::replace_all("aaa", "aa", "b"), "ba");
    EXPECT_EQ(s::replace_all("none", "x", "y"), "none");
    EXPECT_EQ(s::replace_all("abc", "", "z"), "abc");
}

TEST(Strings, CaseInsensitiveEquality) {
    EXPECT_TRUE(s::iequals("Windows 7", "windows 7"));
    EXPECT_FALSE(s::iequals("Windows 7", "Windows 10"));
    EXPECT_FALSE(s::iequals("abc", "abcd"));
}

TEST(Strings, CaseInsensitiveContains) {
    EXPECT_TRUE(s::icontains("NI RT Linux OS", "linux"));
    EXPECT_TRUE(s::icontains("abc", ""));
    EXPECT_FALSE(s::icontains("ab", "abc"));
    EXPECT_FALSE(s::icontains("windows", "linux"));
}

TEST(Strings, EditDistanceBasics) {
    EXPECT_EQ(s::edit_distance("", ""), 0u);
    EXPECT_EQ(s::edit_distance("abc", "abc"), 0u);
    EXPECT_EQ(s::edit_distance("abc", ""), 3u);
    EXPECT_EQ(s::edit_distance("kitten", "sitting"), 3u);
    EXPECT_EQ(s::edit_distance("crio 9063", "crio 9064"), 1u);
}

TEST(Strings, EditDistanceSymmetric) {
    EXPECT_EQ(s::edit_distance("labview", "rt linux"), s::edit_distance("rt linux", "labview"));
}

TEST(Strings, WithCommas) {
    EXPECT_EQ(s::with_commas(0), "0");
    EXPECT_EQ(s::with_commas(999), "999");
    EXPECT_EQ(s::with_commas(1000), "1,000");
    EXPECT_EQ(s::with_commas(9673), "9,673");
    EXPECT_EQ(s::with_commas(1234567), "1,234,567");
}
