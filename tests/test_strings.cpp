#include <gtest/gtest.h>

#include "util/strings.hpp"

namespace s = cybok::strings;

TEST(Strings, TrimRemovesSurroundingWhitespace) {
    EXPECT_EQ(s::trim("  hello  "), "hello");
    EXPECT_EQ(s::trim("\t\nx\r "), "x");
    EXPECT_EQ(s::trim(""), "");
    EXPECT_EQ(s::trim("   "), "");
    EXPECT_EQ(s::trim("no-trim"), "no-trim");
}

TEST(Strings, SplitPreservesEmptyFields) {
    auto parts = s::split(",a,", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "");
    EXPECT_EQ(parts[1], "a");
    EXPECT_EQ(parts[2], "");
}

TEST(Strings, SplitSingleField) {
    auto parts = s::split("abc", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, SplitWsDropsEmptyFields) {
    auto parts = s::split_ws("  a \t b\nc ");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "b");
    EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitWsEmptyInput) {
    EXPECT_TRUE(s::split_ws("").empty());
    EXPECT_TRUE(s::split_ws("   ").empty());
}

TEST(Strings, JoinRoundTripsSplit) {
    std::vector<std::string> parts{"a", "b", "c"};
    EXPECT_EQ(s::join(parts, ", "), "a, b, c");
    EXPECT_EQ(s::join(std::vector<std::string>{}, ","), "");
    EXPECT_EQ(s::join(std::vector<std::string>{"x"}, ","), "x");
}

TEST(Strings, ToLower) {
    EXPECT_EQ(s::to_lower("MiXeD 123 Case"), "mixed 123 case");
}

TEST(Strings, ReplaceAll) {
    EXPECT_EQ(s::replace_all("a.b.c", ".", "::"), "a::b::c");
    EXPECT_EQ(s::replace_all("aaa", "aa", "b"), "ba");
    EXPECT_EQ(s::replace_all("none", "x", "y"), "none");
    EXPECT_EQ(s::replace_all("abc", "", "z"), "abc");
}

TEST(Strings, CaseInsensitiveEquality) {
    EXPECT_TRUE(s::iequals("Windows 7", "windows 7"));
    EXPECT_FALSE(s::iequals("Windows 7", "Windows 10"));
    EXPECT_FALSE(s::iequals("abc", "abcd"));
}

TEST(Strings, CaseInsensitiveContains) {
    EXPECT_TRUE(s::icontains("NI RT Linux OS", "linux"));
    EXPECT_TRUE(s::icontains("abc", ""));
    EXPECT_FALSE(s::icontains("ab", "abc"));
    EXPECT_FALSE(s::icontains("windows", "linux"));
}

TEST(Strings, EditDistanceBasics) {
    EXPECT_EQ(s::edit_distance("", ""), 0u);
    EXPECT_EQ(s::edit_distance("abc", "abc"), 0u);
    EXPECT_EQ(s::edit_distance("abc", ""), 3u);
    EXPECT_EQ(s::edit_distance("kitten", "sitting"), 3u);
    EXPECT_EQ(s::edit_distance("crio 9063", "crio 9064"), 1u);
}

TEST(Strings, EditDistanceSymmetric) {
    EXPECT_EQ(s::edit_distance("labview", "rt linux"), s::edit_distance("rt linux", "labview"));
}

TEST(Strings, WithCommas) {
    EXPECT_EQ(s::with_commas(0), "0");
    EXPECT_EQ(s::with_commas(999), "999");
    EXPECT_EQ(s::with_commas(1000), "1,000");
    EXPECT_EQ(s::with_commas(9673), "9,673");
    EXPECT_EQ(s::with_commas(1234567), "1,234,567");
}

TEST(Strings, TruncateUtf8AsciiMatchesPlainTruncation) {
    EXPECT_EQ(s::truncate_utf8("short", 70), "short");
    EXPECT_EQ(s::truncate_utf8("abcdefghij", 10), "abcdefghij");
    EXPECT_EQ(s::truncate_utf8("abcdefghijk", 10), "abcdefg...");
    EXPECT_EQ(s::truncate_utf8("", 3), "");
}

TEST(Strings, TruncateUtf8NeverSplitsMultiByteSequences) {
    // "Müller" = M \xC3\xBC l l e r — cutting between \xC3 and \xBC would
    // leave an invalid lead byte at the end of the title.
    const std::string s8 = "M\xC3\xBCller GmbH industrial controller";
    for (std::size_t max_len = 3; max_len <= s8.size() + 1; ++max_len) {
        const std::string out = s::truncate_utf8(s8, max_len);
        EXPECT_LE(out.size(), std::max<std::size_t>(max_len, 3));
        // No dangling lead byte: the last byte must not start a multi-byte
        // sequence that got cut off (check by validating tail structure).
        for (std::size_t i = 0; i < out.size();) {
            const unsigned char c = static_cast<unsigned char>(out[i]);
            std::size_t len = c < 0x80 ? 1 : (c >> 5) == 0x6 ? 2 : (c >> 4) == 0xE ? 3 : 4;
            if ((c & 0xC0) == 0x80) { ADD_FAILURE() << "stray continuation at " << i; break; }
            if (i + len > out.size() && out.compare(i, std::string::npos, "...") != 0) {
                ADD_FAILURE() << "split sequence at byte " << i << " (max_len " << max_len
                              << ")";
                break;
            }
            i += len;
        }
    }
}

TEST(Strings, TruncateUtf8FourByteSequence) {
    const std::string emoji = "\xF0\x9F\x94\x92 locked device description here";
    // Cut points that land inside the 4-byte emoji back up to its start.
    EXPECT_EQ(s::truncate_utf8(emoji, 5), "...");
    EXPECT_EQ(s::truncate_utf8(emoji, 6), "...");
    const std::string out7 = s::truncate_utf8(emoji, 7);
    EXPECT_EQ(out7, "\xF0\x9F\x94\x92...");
}
