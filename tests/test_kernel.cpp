// Property tests for the flat-accumulator scoring kernel: on synthetic
// corpora from the bench_search_scaling sweep, query_kernel must produce
// hit-for-hit identical output (doc id, score, matched terms) to the
// retained reference scorers with the engine's gate/dedup semantics
// applied — for both rankers, with and without top-k and pruning.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "synth/corpus_gen.hpp"
#include "text/index.hpp"
#include "text/scratch.hpp"
#include "text/tokenize.hpp"
#include "util/rng.hpp"

using namespace cybok;
using namespace cybok::text;

namespace {

/// Index a corpus's weakness records the way the engine does (title
/// weight 3x, body 1x) — the richest of the three per-class indexes.
InvertedIndex weakness_index(const kb::Corpus& corpus) {
    InvertedIndex index;
    for (const kb::Weakness& w : corpus.weaknesses()) {
        index.add_document();
        index.add_terms(analyze(w.name), 3.0f);
        index.add_terms(analyze(w.description));
        for (const std::string& c : w.consequences) index.add_terms(analyze(c));
        for (const std::string& ap : w.applicable_platforms) index.add_terms(analyze(ap));
    }
    index.finalize();
    return index;
}

/// The engine-side reference semantics the kernel fuses in: dedup+sort
/// matched terms (canonical ascending term-string order), gate on summed
/// rsj IDF, truncate to top-k.
std::vector<Hit> reference_hits(const std::vector<Hit>& raw, const InvertedIndex& index,
                                const KernelOptions& opts) {
    std::vector<Hit> out;
    const Vocabulary& vocab = index.vocabulary();
    for (Hit h : raw) {
        std::sort(h.matched_terms.begin(), h.matched_terms.end(),
                  [&vocab](TermId a, TermId b) { return vocab.term(a) < vocab.term(b); });
        h.matched_terms.erase(std::unique(h.matched_terms.begin(), h.matched_terms.end()),
                              h.matched_terms.end());
        double evidence = 0.0;
        for (TermId t : h.matched_terms) evidence += index.idf(t);
        if (evidence < opts.min_evidence_idf) continue;
        out.push_back(std::move(h));
    }
    if (opts.top_k > 0 && out.size() > opts.top_k) out.resize(opts.top_k);
    return out;
}

void expect_identical(const std::vector<Hit>& kernel, const std::vector<Hit>& reference,
                      const std::string& label) {
    ASSERT_EQ(kernel.size(), reference.size()) << label;
    for (std::size_t i = 0; i < kernel.size(); ++i) {
        EXPECT_EQ(kernel[i].doc, reference[i].doc) << label << " hit " << i;
        EXPECT_NEAR(kernel[i].score, reference[i].score, 1e-9) << label << " hit " << i;
        EXPECT_EQ(kernel[i].matched_terms, reference[i].matched_terms) << label << " hit " << i;
    }
}

/// Random queries over the index's own vocabulary (so they actually hit),
/// with duplicates and unknown tokens mixed in.
std::vector<std::vector<std::string>> sample_queries(const InvertedIndex& index,
                                                     std::uint64_t seed, std::size_t count) {
    Rng rng(seed);
    std::vector<std::vector<std::string>> queries;
    for (std::size_t q = 0; q < count; ++q) {
        std::vector<std::string> tokens;
        const std::size_t len = rng.uniform(1, 9);
        for (std::size_t i = 0; i < len; ++i) {
            const TermId t = static_cast<TermId>(rng.uniform(0, index.term_count() - 1));
            tokens.push_back(index.vocabulary().term(t));
            if (rng.chance(0.2)) tokens.push_back(tokens.back()); // duplicate
        }
        if (rng.chance(0.3)) tokens.push_back("zqzqzq-unknown-token");
        queries.push_back(std::move(tokens));
    }
    return queries;
}

struct KernelCase {
    KernelOptions opts;
    const char* label;
};

const KernelCase kCases[] = {
    {{0, 0.0, true}, "all-hits"},
    {{0, 2.0, true}, "gated"},
    {{5, 0.0, true}, "top5-pruned"},
    {{5, 0.0, false}, "top5-unpruned"},
    {{5, 2.0, true}, "top5-gated-pruned"},
    {{1, 2.0, true}, "top1-gated-pruned"},
    {{1000000, 2.0, true}, "k-beyond-hits"},
};

} // namespace

class KernelProperty : public ::testing::TestWithParam<int> {};

TEST_P(KernelProperty, Bm25KernelMatchesReferenceOnSyntheticSweep) {
    const double scale = GetParam() / 1000.0;
    const kb::Corpus corpus = synth::generate_corpus(synth::CorpusProfile::scaled(scale, 31));
    const InvertedIndex index = weakness_index(corpus);
    const Bm25Scorer scorer(index);
    QueryScratch scratch; // one arena reused across every query below
    for (const auto& tokens : sample_queries(index, 7u + GetParam(), 25)) {
        const std::vector<Hit> raw = scorer.query(tokens);
        for (const KernelCase& c : kCases) {
            expect_identical(scorer.query_kernel(tokens, scratch, c.opts),
                             reference_hits(raw, index, c.opts), c.label);
        }
    }
}

TEST_P(KernelProperty, TfidfKernelMatchesReferenceOnSyntheticSweep) {
    const double scale = GetParam() / 1000.0;
    const kb::Corpus corpus = synth::generate_corpus(synth::CorpusProfile::scaled(scale, 31));
    const InvertedIndex index = weakness_index(corpus);
    const TfidfScorer scorer(index);
    QueryScratch scratch;
    for (const auto& tokens : sample_queries(index, 11u + GetParam(), 25)) {
        const std::vector<Hit> raw = scorer.query(tokens);
        for (const KernelCase& c : kCases) {
            expect_identical(scorer.query_kernel(tokens, scratch, c.opts),
                             reference_hits(raw, index, c.opts), c.label);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(SyntheticSweep, KernelProperty, ::testing::Values(50, 200));

// ------------------------------------------------------------ small cases

namespace {

/// Four docs where "alpha" scores identically in docs 1..3 (same length,
/// same tf) — exact score ties at any top-k cut.
InvertedIndex tied_index() {
    InvertedIndex index;
    for (int d = 0; d < 4; ++d) {
        index.add_document();
        index.add_terms({d == 0 ? "unique" : "alpha", "pad", "pad"});
    }
    index.finalize();
    return index;
}

} // namespace

TEST(Kernel, TopKTieAtTheCutBreaksByDocId) {
    const InvertedIndex index = tied_index();
    const Bm25Scorer scorer(index);
    QueryScratch scratch;
    for (bool prune : {false, true}) {
        KernelOptions opts;
        opts.top_k = 2;
        opts.prune = prune;
        const std::vector<Hit> hits = scorer.query_kernel({"alpha"}, scratch, opts);
        // Docs 1, 2, 3 tie exactly; the cut keeps the two lowest doc ids.
        ASSERT_EQ(hits.size(), 2u) << "prune=" << prune;
        EXPECT_EQ(hits[0].doc, 1u);
        EXPECT_EQ(hits[1].doc, 2u);
        EXPECT_DOUBLE_EQ(hits[0].score, hits[1].score);
    }
}

TEST(Kernel, TopKZeroMeansUnlimited) {
    const InvertedIndex index = tied_index();
    const Bm25Scorer scorer(index);
    QueryScratch scratch;
    KernelOptions opts; // top_k = 0
    EXPECT_EQ(scorer.query_kernel({"alpha"}, scratch, opts).size(), 3u);
    EXPECT_EQ(scorer.query_kernel({"pad"}, scratch, opts).size(), 4u);
}

TEST(Kernel, TopKBeyondHitCountReturnsEverything) {
    const InvertedIndex index = tied_index();
    const Bm25Scorer scorer(index);
    QueryScratch scratch;
    KernelOptions opts;
    opts.top_k = 100;
    EXPECT_EQ(scorer.query_kernel({"alpha"}, scratch, opts).size(), 3u);
}

TEST(Kernel, EmptyAndUnknownQueries) {
    const InvertedIndex index = tied_index();
    const Bm25Scorer bm25(index);
    const TfidfScorer tfidf(index);
    QueryScratch scratch;
    EXPECT_TRUE(bm25.query_kernel({}, scratch).empty());
    EXPECT_TRUE(bm25.query_kernel({"nope"}, scratch).empty());
    EXPECT_TRUE(tfidf.query_kernel({}, scratch).empty());
    EXPECT_TRUE(tfidf.query_kernel({"nope"}, scratch).empty());
}

TEST(Kernel, WideQueryFallsBackToReferenceSemantics) {
    // More than 64 distinct terms exceeds the per-doc term bitset; the
    // kernel must route through the reference scorer and still apply
    // gate + dedup + top-k.
    InvertedIndex index;
    std::vector<std::string> wide;
    for (int i = 0; i < 80; ++i) wide.push_back("term" + std::to_string(i));
    for (int d = 0; d < 6; ++d) {
        index.add_document();
        // Each doc holds a sliding window of 40 of the 80 terms.
        for (int i = 0; i < 40; ++i) index.add_term(wide[(d * 8 + i) % 80]);
    }
    index.finalize();
    const Bm25Scorer scorer(index);
    QueryScratch scratch;
    KernelOptions opts;
    opts.top_k = 3;
    KernelStats stats;
    const std::vector<Hit> kernel = scorer.query_kernel(wide, scratch, opts, &stats);
    EXPECT_EQ(stats.fallback_queries, 1u);
    expect_identical(kernel, reference_hits(scorer.query(wide), index, opts), "wide-fallback");
    for (const Hit& h : kernel)
        EXPECT_TRUE(std::is_sorted(
            h.matched_terms.begin(), h.matched_terms.end(), [&](TermId a, TermId b) {
                return index.vocabulary().term(a) < index.vocabulary().term(b);
            }));
}

TEST(Kernel, ScratchArenaSurvivesIndexSwitching) {
    // One arena alternating between two indexes of different sizes — the
    // epoch stamps must isolate queries completely.
    const InvertedIndex small = tied_index();
    const kb::Corpus corpus = synth::generate_corpus(synth::CorpusProfile::scaled(0.05, 31));
    const InvertedIndex big = weakness_index(corpus);
    const Bm25Scorer small_scorer(small);
    const Bm25Scorer big_scorer(big);
    QueryScratch scratch;
    const std::vector<Hit> small_ref = small_scorer.query_kernel({"alpha"}, scratch);
    const auto queries = sample_queries(big, 5, 10);
    for (int round = 0; round < 3; ++round) {
        for (const auto& tokens : queries) {
            expect_identical(big_scorer.query_kernel(tokens, scratch),
                             reference_hits(big_scorer.query(tokens), big, {}), "big");
        }
        expect_identical(small_scorer.query_kernel({"alpha"}, scratch), small_ref, "small");
    }
}

TEST(Kernel, StatsCountPostingsAndGatedHits) {
    const InvertedIndex index = tied_index();
    const Bm25Scorer scorer(index);
    QueryScratch scratch;
    KernelOptions opts;
    opts.min_evidence_idf = 1e9; // nothing can pass
    KernelStats stats;
    EXPECT_TRUE(scorer.query_kernel({"alpha", "pad"}, scratch, opts, &stats).empty());
    EXPECT_EQ(stats.postings_scanned, 7u); // 3 alpha + 4 pad
    EXPECT_EQ(stats.hits_gated, 4u);       // every touched doc gated out
}
