// Concurrent-read safety: the search engine and corpus are immutable
// after construction, so N threads must be able to associate different
// models simultaneously and get byte-identical results to the serial run.
// (The dashboard's interactive loop relies on this: the GUI thread
// re-queries while a background thread renders the previous result.)
//
// The parallel pipeline half of this file hammers search::Associator —
// its own fan-out threads, the shared query cache, and many client
// threads on one instance — and asserts byte-identical output against
// the sequential reference, cache on and off.
//
// For data-race coverage beyond what assertions can see, build the tsan
// preset and run this binary under it:
//   cmake --preset tsan && cmake --build --preset tsan -j
//   build/tsan/tests/cybok_tests --gtest_filter='Concurrency.*'

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>

#include "search/association.hpp"
#include "synth/corpus_gen.hpp"
#include "synth/model_gen.hpp"
#include "synth/scada.hpp"

using namespace cybok;

namespace {
const kb::Corpus& shared_corpus() {
    static const kb::Corpus corpus =
        synth::generate_corpus(synth::CorpusProfile::scaled(0.1, 99));
    return corpus;
}

/// Deterministic full serialization of an association map — component
/// order, attribute order, match order, exact (hexfloat) scores and all
/// evidence. Two maps with equal fingerprints are byte-identical results.
std::string fingerprint(const search::AssociationMap& map) {
    std::ostringstream out;
    out << std::hexfloat;
    for (const search::ComponentAssociation& c : map.components) {
        out << "C " << c.component << '\n';
        for (const search::AttributeAssociation& a : c.attributes) {
            out << " A " << a.attribute_name << '=' << a.attribute_value << '\n';
            for (const search::Match& m : a.matches) {
                out << "  M " << static_cast<int>(m.cls) << ' ' << m.corpus_index << ' '
                    << m.id << ' ' << m.score << ' ' << static_cast<int>(m.via) << ' '
                    << m.severity;
                for (const std::string& e : m.evidence) out << ' ' << e;
                out << '\n';
            }
        }
    }
    return out.str();
}
} // namespace

TEST(Concurrency, ParallelQueriesMatchSerialResults) {
    search::SearchEngine engine(shared_corpus());

    // Serial reference results.
    model::SystemModel scada = synth::centrifuge_model();
    model::SystemModel uav = synth::uav_model();
    const std::size_t scada_total = search::associate(scada, engine).total();
    const std::size_t uav_total = search::associate(uav, engine).total();

    constexpr int kThreads = 8;
    constexpr int kRounds = 4;
    std::atomic<int> mismatches{0};
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            for (int round = 0; round < kRounds; ++round) {
                const bool use_scada = (t + round) % 2 == 0;
                model::SystemModel m =
                    use_scada ? synth::centrifuge_model() : synth::uav_model();
                std::size_t total = search::associate(m, engine).total();
                std::size_t expected = use_scada ? scada_total : uav_total;
                if (total != expected) mismatches.fetch_add(1);
            }
        });
    }
    for (std::thread& w : workers) w.join();
    EXPECT_EQ(mismatches.load(), 0);
}

TEST(Concurrency, ParallelPipelineByteIdenticalToSequential) {
    search::SearchEngine engine(shared_corpus());
    model::SystemModel scada = synth::centrifuge_model();
    const std::string reference = fingerprint(search::associate(scada, engine));

    for (bool cache_on : {false, true}) {
        for (std::size_t threads : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
            search::AssocOptions opts;
            opts.threads = threads;
            opts.cache_enabled = cache_on;
            search::Associator assoc(engine, opts);
            // Twice: the second run exercises the warm-cache replay path.
            EXPECT_EQ(fingerprint(assoc.associate(scada)), reference)
                << "threads=" << threads << " cache=" << cache_on;
            EXPECT_EQ(fingerprint(assoc.associate(scada)), reference)
                << "threads=" << threads << " cache=" << cache_on << " (warm)";
            if (cache_on) {
                search::AssocMetrics m = assoc.metrics();
                EXPECT_GT(m.cache_hits, 0u); // repeated attributes + second run
            }
        }
    }
}

TEST(Concurrency, ManyThreadsHammerOneSharedAssociator) {
    // The hard case: one Associator instance (one pool, one cache, one
    // metrics block) driven by many client threads at once, mixing two
    // models so cache keys interleave. Every result must be byte-identical
    // to the sequential reference.
    search::SearchEngine engine(shared_corpus());
    model::SystemModel scada = synth::centrifuge_model();
    model::SystemModel uav = synth::uav_model();
    const std::string scada_ref = fingerprint(search::associate(scada, engine));
    const std::string uav_ref = fingerprint(search::associate(uav, engine));

    search::AssocOptions opts;
    opts.threads = 4;
    search::Associator assoc(engine, opts);

    constexpr int kThreads = 8;
    constexpr int kRounds = 3;
    std::atomic<int> mismatches{0};
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            for (int round = 0; round < kRounds; ++round) {
                const bool use_scada = (t + round) % 2 == 0;
                const model::SystemModel& m = use_scada ? scada : uav;
                const std::string& expected = use_scada ? scada_ref : uav_ref;
                if (fingerprint(assoc.associate(m)) != expected) mismatches.fetch_add(1);
            }
        });
    }
    for (std::thread& w : workers) w.join();
    EXPECT_EQ(mismatches.load(), 0);
    search::AssocMetrics m = assoc.metrics();
    EXPECT_GT(m.cache_hits, 0u);
    // Parameter attributes skip the cache by design, so traffic is a
    // subset of attributes visited.
    EXPECT_GE(m.attributes, m.cache_hits + m.cache_misses);
}

TEST(Concurrency, ParallelReassociateMatchesFullAssociate) {
    search::SearchEngine engine(shared_corpus());
    model::SystemModel before = synth::centrifuge_model();
    model::SystemModel after = synth::centrifuge_model_hardened();
    const std::string full_ref = fingerprint(search::associate(after, engine));

    for (bool cache_on : {false, true}) {
        search::AssocOptions opts;
        opts.threads = 4;
        opts.cache_enabled = cache_on;
        search::Associator assoc(engine, opts);
        search::AssociationMap before_map = assoc.associate(before);
        model::ModelDiff d = model::diff(before, after);
        search::AssociationMap incremental = assoc.reassociate(before_map, d, after);
        EXPECT_EQ(fingerprint(incremental), full_ref) << "cache=" << cache_on;
        if (cache_on) {
            EXPECT_GT(assoc.metrics().cache_invalidations, 0u);
        }
    }
}

TEST(Concurrency, KernelScratchArenasAreThreadLocal) {
    // The scoring kernel reuses a per-thread scratch arena
    // (text::tls_query_scratch) across queries. Hammer one engine's
    // lexical path from many raw threads — under tsan this proves the
    // arenas never alias; under any build it proves results equal the
    // single-threaded run. The Associator's pool threads take exactly
    // this path, so this is the arena half of its zero-allocation
    // steady-state contract.
    search::SearchEngine engine(shared_corpus());
    const std::vector<std::string> queries = {
        "linux kernel privilege escalation", "scada controller modbus command injection",
        "buffer overflow firmware update",   "windows registry weak permissions",
    };
    std::vector<std::vector<search::Match>> expected;
    for (const std::string& q : queries)
        expected.push_back(engine.query_text(q, search::VectorClass::Weakness));

    std::atomic<int> mismatches{0};
    std::vector<std::thread> workers;
    for (int t = 0; t < 8; ++t) {
        workers.emplace_back([&, t] {
            for (int round = 0; round < 16; ++round) {
                const std::size_t qi = static_cast<std::size_t>(t + round) % queries.size();
                auto hits = engine.query_text(queries[qi], search::VectorClass::Weakness);
                const auto& want = expected[qi];
                bool ok = hits.size() == want.size();
                for (std::size_t i = 0; ok && i < hits.size(); ++i)
                    ok = hits[i].id == want[i].id && hits[i].score == want[i].score &&
                         hits[i].evidence == want[i].evidence;
                if (!ok) mismatches.fetch_add(1);
            }
        });
    }
    for (std::thread& w : workers) w.join();
    EXPECT_EQ(mismatches.load(), 0);
}

TEST(Concurrency, ParallelEnginesOverOneCorpus) {
    // Several engines (different options) built concurrently over the same
    // corpus — construction only reads the corpus.
    std::atomic<int> failures{0};
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
        workers.emplace_back([&, t] {
            search::EngineOptions opts;
            opts.ranker = t % 2 == 0 ? search::EngineOptions::Ranker::Bm25
                                     : search::EngineOptions::Ranker::Tfidf;
            try {
                search::SearchEngine engine(shared_corpus(), opts);
                auto hits = engine.query_text("linux kernel escalation",
                                              search::VectorClass::Weakness);
                if (hits.empty()) failures.fetch_add(1);
            } catch (...) {
                failures.fetch_add(1);
            }
        });
    }
    for (std::thread& w : workers) w.join();
    EXPECT_EQ(failures.load(), 0);
}
