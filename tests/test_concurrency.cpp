// Concurrent-read safety: the search engine and corpus are immutable
// after construction, so N threads must be able to associate different
// models simultaneously and get byte-identical results to the serial run.
// (The dashboard's interactive loop relies on this: the GUI thread
// re-queries while a background thread renders the previous result.)

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "search/association.hpp"
#include "synth/corpus_gen.hpp"
#include "synth/model_gen.hpp"
#include "synth/scada.hpp"

using namespace cybok;

namespace {
const kb::Corpus& shared_corpus() {
    static const kb::Corpus corpus =
        synth::generate_corpus(synth::CorpusProfile::scaled(0.1, 99));
    return corpus;
}
} // namespace

TEST(Concurrency, ParallelQueriesMatchSerialResults) {
    search::SearchEngine engine(shared_corpus());

    // Serial reference results.
    model::SystemModel scada = synth::centrifuge_model();
    model::SystemModel uav = synth::uav_model();
    const std::size_t scada_total = search::associate(scada, engine).total();
    const std::size_t uav_total = search::associate(uav, engine).total();

    constexpr int kThreads = 8;
    constexpr int kRounds = 4;
    std::atomic<int> mismatches{0};
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            for (int round = 0; round < kRounds; ++round) {
                const bool use_scada = (t + round) % 2 == 0;
                model::SystemModel m =
                    use_scada ? synth::centrifuge_model() : synth::uav_model();
                std::size_t total = search::associate(m, engine).total();
                std::size_t expected = use_scada ? scada_total : uav_total;
                if (total != expected) mismatches.fetch_add(1);
            }
        });
    }
    for (std::thread& w : workers) w.join();
    EXPECT_EQ(mismatches.load(), 0);
}

TEST(Concurrency, ParallelEnginesOverOneCorpus) {
    // Several engines (different options) built concurrently over the same
    // corpus — construction only reads the corpus.
    std::atomic<int> failures{0};
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
        workers.emplace_back([&, t] {
            search::EngineOptions opts;
            opts.ranker = t % 2 == 0 ? search::EngineOptions::Ranker::Bm25
                                     : search::EngineOptions::Ranker::Tfidf;
            try {
                search::SearchEngine engine(shared_corpus(), opts);
                auto hits = engine.query_text("linux kernel escalation",
                                              search::VectorClass::Weakness);
                if (hits.empty()) failures.fetch_add(1);
            } catch (...) {
                failures.fetch_add(1);
            }
        });
    }
    for (std::thread& w : workers) w.join();
    EXPECT_EQ(failures.load(), 0);
}
