// Zoo fleet soak (label: soak). Two long-running sweeps kept out of the
// fast suite:
//
//   * a 64-system, four-domain fleet whose comparative ranking must be
//     byte-identical across 1/2/8 analysis threads (the CI zoo-soak gate);
//   * a 16-seed fault soak arming synth.zoo.gen and analysis.fleet.task
//     probabilistically — every run completes, failures are recorded
//     per-system and ranked last, and a disarmed rerun is byte-identical
//     to the clean reference.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/fleet.hpp"
#include "search/engine.hpp"
#include "synth/corpus_gen.hpp"
#include "util/fault.hpp"

using namespace cybok;

namespace {

const search::SearchEngine& shared_engine() {
    static const kb::Corpus corpus =
        synth::generate_corpus(synth::CorpusProfile::scaled(0.05, 42));
    static const search::SearchEngine engine(corpus);
    return engine;
}

analysis::FleetOptions soak_options(std::size_t systems, std::size_t threads) {
    analysis::FleetOptions options;
    options.systems = systems;   // domains default to all four, round-robin
    options.components = 30;
    options.base_seed = 11;
    options.threads = threads;
    return options;
}

} // namespace

TEST(ZooSoak, FleetRankingByteIdenticalAcrossThreadCounts) {
    const std::string reference =
        analysis::analyze_fleet(shared_engine(), soak_options(64, 1)).fingerprint();
    for (std::size_t threads : {2u, 8u}) {
        const analysis::FleetResult result =
            analysis::analyze_fleet(shared_engine(), soak_options(64, threads));
        EXPECT_EQ(result.failed, 0u);
        EXPECT_EQ(result.fingerprint(), reference)
            << "ranking diverged at " << threads << " threads";
    }
}

TEST(ZooSoak, FaultSoakDegradesPerSystemAndRecovers) {
    const analysis::FleetOptions options = soak_options(16, 4);
    const std::string clean =
        analysis::analyze_fleet(shared_engine(), options).fingerprint();

    for (std::uint64_t seed = 1; seed <= 16; ++seed) {
        analysis::FleetResult result;
        {
            util::FaultScope scope("seed=" + std::to_string(seed) +
                                   ";synth.zoo.gen=p:0.2;analysis.fleet.task=p:0.2");
            result = analysis::analyze_fleet(shared_engine(), options);
        }
        // The run always completes with every system accounted for.
        ASSERT_EQ(result.systems, options.systems) << "seed " << seed;
        ASSERT_EQ(result.ranking.size(), options.systems) << "seed " << seed;

        std::size_t failed = 0;
        for (const analysis::FleetSystemReport& r : result.ranking) {
            if (r.failed) {
                ++failed;
                EXPECT_FALSE(r.name.empty()) << "failed report lost its identity";
                EXPECT_NE(r.error.find("injected"), std::string::npos) << r.name;
            } else {
                // Ranking places every healthy system ahead of every failure.
                EXPECT_EQ(failed, 0u) << r.name << " ranked below a failure";
            }
        }
        EXPECT_EQ(result.failed, failed) << "seed " << seed;

        // Disarmed, the very next run reproduces the clean reference.
        EXPECT_EQ(analysis::analyze_fleet(shared_engine(), options).fingerprint(), clean)
            << "seed " << seed << " left residue";
    }
}
