# Empty compiler generated dependencies file for bench_cvss.
# This may be replaced when dependencies are built.
