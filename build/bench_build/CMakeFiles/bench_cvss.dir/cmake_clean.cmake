file(REMOVE_RECURSE
  "../bench/bench_cvss"
  "../bench/bench_cvss.pdb"
  "CMakeFiles/bench_cvss.dir/bench_cvss.cpp.o"
  "CMakeFiles/bench_cvss.dir/bench_cvss.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cvss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
