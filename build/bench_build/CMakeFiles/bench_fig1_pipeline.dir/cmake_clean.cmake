file(REMOVE_RECURSE
  "../bench/bench_fig1_pipeline"
  "../bench/bench_fig1_pipeline.pdb"
  "CMakeFiles/bench_fig1_pipeline.dir/bench_fig1_pipeline.cpp.o"
  "CMakeFiles/bench_fig1_pipeline.dir/bench_fig1_pipeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
