file(REMOVE_RECURSE
  "../bench/bench_fidelity"
  "../bench/bench_fidelity.pdb"
  "CMakeFiles/bench_fidelity.dir/bench_fidelity.cpp.o"
  "CMakeFiles/bench_fidelity.dir/bench_fidelity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
