file(REMOVE_RECURSE
  "../bench/bench_search_scaling"
  "../bench/bench_search_scaling.pdb"
  "CMakeFiles/bench_search_scaling.dir/bench_search_scaling.cpp.o"
  "CMakeFiles/bench_search_scaling.dir/bench_search_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_search_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
