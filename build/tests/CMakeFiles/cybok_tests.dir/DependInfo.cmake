
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/cybok_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/cybok_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_baseline.cpp" "tests/CMakeFiles/cybok_tests.dir/test_baseline.cpp.o" "gcc" "tests/CMakeFiles/cybok_tests.dir/test_baseline.cpp.o.d"
  "/root/repo/tests/test_concurrency.cpp" "tests/CMakeFiles/cybok_tests.dir/test_concurrency.cpp.o" "gcc" "tests/CMakeFiles/cybok_tests.dir/test_concurrency.cpp.o.d"
  "/root/repo/tests/test_cvss.cpp" "tests/CMakeFiles/cybok_tests.dir/test_cvss.cpp.o" "gcc" "tests/CMakeFiles/cybok_tests.dir/test_cvss.cpp.o.d"
  "/root/repo/tests/test_cvss2.cpp" "tests/CMakeFiles/cybok_tests.dir/test_cvss2.cpp.o" "gcc" "tests/CMakeFiles/cybok_tests.dir/test_cvss2.cpp.o.d"
  "/root/repo/tests/test_dashboard.cpp" "tests/CMakeFiles/cybok_tests.dir/test_dashboard.cpp.o" "gcc" "tests/CMakeFiles/cybok_tests.dir/test_dashboard.cpp.o.d"
  "/root/repo/tests/test_dsl.cpp" "tests/CMakeFiles/cybok_tests.dir/test_dsl.cpp.o" "gcc" "tests/CMakeFiles/cybok_tests.dir/test_dsl.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/cybok_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/cybok_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_graphml.cpp" "tests/CMakeFiles/cybok_tests.dir/test_graphml.cpp.o" "gcc" "tests/CMakeFiles/cybok_tests.dir/test_graphml.cpp.o.d"
  "/root/repo/tests/test_hardening.cpp" "tests/CMakeFiles/cybok_tests.dir/test_hardening.cpp.o" "gcc" "tests/CMakeFiles/cybok_tests.dir/test_hardening.cpp.o.d"
  "/root/repo/tests/test_hierarchy.cpp" "tests/CMakeFiles/cybok_tests.dir/test_hierarchy.cpp.o" "gcc" "tests/CMakeFiles/cybok_tests.dir/test_hierarchy.cpp.o.d"
  "/root/repo/tests/test_import_mitre.cpp" "tests/CMakeFiles/cybok_tests.dir/test_import_mitre.cpp.o" "gcc" "tests/CMakeFiles/cybok_tests.dir/test_import_mitre.cpp.o.d"
  "/root/repo/tests/test_import_nvd.cpp" "tests/CMakeFiles/cybok_tests.dir/test_import_nvd.cpp.o" "gcc" "tests/CMakeFiles/cybok_tests.dir/test_import_nvd.cpp.o.d"
  "/root/repo/tests/test_index.cpp" "tests/CMakeFiles/cybok_tests.dir/test_index.cpp.o" "gcc" "tests/CMakeFiles/cybok_tests.dir/test_index.cpp.o.d"
  "/root/repo/tests/test_json.cpp" "tests/CMakeFiles/cybok_tests.dir/test_json.cpp.o" "gcc" "tests/CMakeFiles/cybok_tests.dir/test_json.cpp.o.d"
  "/root/repo/tests/test_kb.cpp" "tests/CMakeFiles/cybok_tests.dir/test_kb.cpp.o" "gcc" "tests/CMakeFiles/cybok_tests.dir/test_kb.cpp.o.d"
  "/root/repo/tests/test_mission.cpp" "tests/CMakeFiles/cybok_tests.dir/test_mission.cpp.o" "gcc" "tests/CMakeFiles/cybok_tests.dir/test_mission.cpp.o.d"
  "/root/repo/tests/test_model.cpp" "tests/CMakeFiles/cybok_tests.dir/test_model.cpp.o" "gcc" "tests/CMakeFiles/cybok_tests.dir/test_model.cpp.o.d"
  "/root/repo/tests/test_monitoring.cpp" "tests/CMakeFiles/cybok_tests.dir/test_monitoring.cpp.o" "gcc" "tests/CMakeFiles/cybok_tests.dir/test_monitoring.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/cybok_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/cybok_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/cybok_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/cybok_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_safety.cpp" "tests/CMakeFiles/cybok_tests.dir/test_safety.cpp.o" "gcc" "tests/CMakeFiles/cybok_tests.dir/test_safety.cpp.o.d"
  "/root/repo/tests/test_scenarios.cpp" "tests/CMakeFiles/cybok_tests.dir/test_scenarios.cpp.o" "gcc" "tests/CMakeFiles/cybok_tests.dir/test_scenarios.cpp.o.d"
  "/root/repo/tests/test_search.cpp" "tests/CMakeFiles/cybok_tests.dir/test_search.cpp.o" "gcc" "tests/CMakeFiles/cybok_tests.dir/test_search.cpp.o.d"
  "/root/repo/tests/test_session.cpp" "tests/CMakeFiles/cybok_tests.dir/test_session.cpp.o" "gcc" "tests/CMakeFiles/cybok_tests.dir/test_session.cpp.o.d"
  "/root/repo/tests/test_strings.cpp" "tests/CMakeFiles/cybok_tests.dir/test_strings.cpp.o" "gcc" "tests/CMakeFiles/cybok_tests.dir/test_strings.cpp.o.d"
  "/root/repo/tests/test_synth.cpp" "tests/CMakeFiles/cybok_tests.dir/test_synth.cpp.o" "gcc" "tests/CMakeFiles/cybok_tests.dir/test_synth.cpp.o.d"
  "/root/repo/tests/test_text.cpp" "tests/CMakeFiles/cybok_tests.dir/test_text.cpp.o" "gcc" "tests/CMakeFiles/cybok_tests.dir/test_text.cpp.o.d"
  "/root/repo/tests/test_vector_graph.cpp" "tests/CMakeFiles/cybok_tests.dir/test_vector_graph.cpp.o" "gcc" "tests/CMakeFiles/cybok_tests.dir/test_vector_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cybok_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_dashboard.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_safety.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_search.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_cvss.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
