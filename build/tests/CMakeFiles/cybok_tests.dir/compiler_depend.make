# Empty compiler generated dependencies file for cybok_tests.
# This may be replaced when dependencies are built.
