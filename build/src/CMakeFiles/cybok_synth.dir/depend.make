# Empty dependencies file for cybok_synth.
# This may be replaced when dependencies are built.
