file(REMOVE_RECURSE
  "CMakeFiles/cybok_synth.dir/synth/corpus_gen.cpp.o"
  "CMakeFiles/cybok_synth.dir/synth/corpus_gen.cpp.o.d"
  "CMakeFiles/cybok_synth.dir/synth/lexicon.cpp.o"
  "CMakeFiles/cybok_synth.dir/synth/lexicon.cpp.o.d"
  "CMakeFiles/cybok_synth.dir/synth/model_gen.cpp.o"
  "CMakeFiles/cybok_synth.dir/synth/model_gen.cpp.o.d"
  "CMakeFiles/cybok_synth.dir/synth/scada.cpp.o"
  "CMakeFiles/cybok_synth.dir/synth/scada.cpp.o.d"
  "libcybok_synth.a"
  "libcybok_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cybok_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
