file(REMOVE_RECURSE
  "libcybok_synth.a"
)
