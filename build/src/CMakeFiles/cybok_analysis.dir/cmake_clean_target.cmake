file(REMOVE_RECURSE
  "libcybok_analysis.a"
)
