file(REMOVE_RECURSE
  "CMakeFiles/cybok_analysis.dir/analysis/attack_paths.cpp.o"
  "CMakeFiles/cybok_analysis.dir/analysis/attack_paths.cpp.o.d"
  "CMakeFiles/cybok_analysis.dir/analysis/fidelity.cpp.o"
  "CMakeFiles/cybok_analysis.dir/analysis/fidelity.cpp.o.d"
  "CMakeFiles/cybok_analysis.dir/analysis/hardening.cpp.o"
  "CMakeFiles/cybok_analysis.dir/analysis/hardening.cpp.o.d"
  "CMakeFiles/cybok_analysis.dir/analysis/mission_impact.cpp.o"
  "CMakeFiles/cybok_analysis.dir/analysis/mission_impact.cpp.o.d"
  "CMakeFiles/cybok_analysis.dir/analysis/model_advice.cpp.o"
  "CMakeFiles/cybok_analysis.dir/analysis/model_advice.cpp.o.d"
  "CMakeFiles/cybok_analysis.dir/analysis/monitoring.cpp.o"
  "CMakeFiles/cybok_analysis.dir/analysis/monitoring.cpp.o.d"
  "CMakeFiles/cybok_analysis.dir/analysis/posture.cpp.o"
  "CMakeFiles/cybok_analysis.dir/analysis/posture.cpp.o.d"
  "CMakeFiles/cybok_analysis.dir/analysis/whatif.cpp.o"
  "CMakeFiles/cybok_analysis.dir/analysis/whatif.cpp.o.d"
  "libcybok_analysis.a"
  "libcybok_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cybok_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
