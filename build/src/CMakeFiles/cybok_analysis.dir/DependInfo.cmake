
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/attack_paths.cpp" "src/CMakeFiles/cybok_analysis.dir/analysis/attack_paths.cpp.o" "gcc" "src/CMakeFiles/cybok_analysis.dir/analysis/attack_paths.cpp.o.d"
  "/root/repo/src/analysis/fidelity.cpp" "src/CMakeFiles/cybok_analysis.dir/analysis/fidelity.cpp.o" "gcc" "src/CMakeFiles/cybok_analysis.dir/analysis/fidelity.cpp.o.d"
  "/root/repo/src/analysis/hardening.cpp" "src/CMakeFiles/cybok_analysis.dir/analysis/hardening.cpp.o" "gcc" "src/CMakeFiles/cybok_analysis.dir/analysis/hardening.cpp.o.d"
  "/root/repo/src/analysis/mission_impact.cpp" "src/CMakeFiles/cybok_analysis.dir/analysis/mission_impact.cpp.o" "gcc" "src/CMakeFiles/cybok_analysis.dir/analysis/mission_impact.cpp.o.d"
  "/root/repo/src/analysis/model_advice.cpp" "src/CMakeFiles/cybok_analysis.dir/analysis/model_advice.cpp.o" "gcc" "src/CMakeFiles/cybok_analysis.dir/analysis/model_advice.cpp.o.d"
  "/root/repo/src/analysis/monitoring.cpp" "src/CMakeFiles/cybok_analysis.dir/analysis/monitoring.cpp.o" "gcc" "src/CMakeFiles/cybok_analysis.dir/analysis/monitoring.cpp.o.d"
  "/root/repo/src/analysis/posture.cpp" "src/CMakeFiles/cybok_analysis.dir/analysis/posture.cpp.o" "gcc" "src/CMakeFiles/cybok_analysis.dir/analysis/posture.cpp.o.d"
  "/root/repo/src/analysis/whatif.cpp" "src/CMakeFiles/cybok_analysis.dir/analysis/whatif.cpp.o" "gcc" "src/CMakeFiles/cybok_analysis.dir/analysis/whatif.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cybok_search.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_safety.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_cvss.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
