# Empty compiler generated dependencies file for cybok_analysis.
# This may be replaced when dependencies are built.
