file(REMOVE_RECURSE
  "libcybok_baseline.a"
)
