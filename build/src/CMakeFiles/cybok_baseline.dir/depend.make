# Empty dependencies file for cybok_baseline.
# This may be replaced when dependencies are built.
