file(REMOVE_RECURSE
  "CMakeFiles/cybok_baseline.dir/baseline/attack_tree.cpp.o"
  "CMakeFiles/cybok_baseline.dir/baseline/attack_tree.cpp.o.d"
  "CMakeFiles/cybok_baseline.dir/baseline/comparison.cpp.o"
  "CMakeFiles/cybok_baseline.dir/baseline/comparison.cpp.o.d"
  "CMakeFiles/cybok_baseline.dir/baseline/stride.cpp.o"
  "CMakeFiles/cybok_baseline.dir/baseline/stride.cpp.o.d"
  "libcybok_baseline.a"
  "libcybok_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cybok_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
