# Empty compiler generated dependencies file for cybok_cvss.
# This may be replaced when dependencies are built.
