file(REMOVE_RECURSE
  "libcybok_cvss.a"
)
