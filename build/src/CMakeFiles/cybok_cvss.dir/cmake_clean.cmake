file(REMOVE_RECURSE
  "CMakeFiles/cybok_cvss.dir/cvss/cvss.cpp.o"
  "CMakeFiles/cybok_cvss.dir/cvss/cvss.cpp.o.d"
  "CMakeFiles/cybok_cvss.dir/cvss/cvss2.cpp.o"
  "CMakeFiles/cybok_cvss.dir/cvss/cvss2.cpp.o.d"
  "libcybok_cvss.a"
  "libcybok_cvss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cybok_cvss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
