
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cvss/cvss.cpp" "src/CMakeFiles/cybok_cvss.dir/cvss/cvss.cpp.o" "gcc" "src/CMakeFiles/cybok_cvss.dir/cvss/cvss.cpp.o.d"
  "/root/repo/src/cvss/cvss2.cpp" "src/CMakeFiles/cybok_cvss.dir/cvss/cvss2.cpp.o" "gcc" "src/CMakeFiles/cybok_cvss.dir/cvss/cvss2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cybok_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
