# Empty dependencies file for cybok_model.
# This may be replaced when dependencies are built.
