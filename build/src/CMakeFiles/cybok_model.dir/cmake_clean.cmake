file(REMOVE_RECURSE
  "CMakeFiles/cybok_model.dir/model/diff.cpp.o"
  "CMakeFiles/cybok_model.dir/model/diff.cpp.o.d"
  "CMakeFiles/cybok_model.dir/model/dsl.cpp.o"
  "CMakeFiles/cybok_model.dir/model/dsl.cpp.o.d"
  "CMakeFiles/cybok_model.dir/model/export.cpp.o"
  "CMakeFiles/cybok_model.dir/model/export.cpp.o.d"
  "CMakeFiles/cybok_model.dir/model/mission.cpp.o"
  "CMakeFiles/cybok_model.dir/model/mission.cpp.o.d"
  "CMakeFiles/cybok_model.dir/model/system_model.cpp.o"
  "CMakeFiles/cybok_model.dir/model/system_model.cpp.o.d"
  "libcybok_model.a"
  "libcybok_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cybok_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
