
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/diff.cpp" "src/CMakeFiles/cybok_model.dir/model/diff.cpp.o" "gcc" "src/CMakeFiles/cybok_model.dir/model/diff.cpp.o.d"
  "/root/repo/src/model/dsl.cpp" "src/CMakeFiles/cybok_model.dir/model/dsl.cpp.o" "gcc" "src/CMakeFiles/cybok_model.dir/model/dsl.cpp.o.d"
  "/root/repo/src/model/export.cpp" "src/CMakeFiles/cybok_model.dir/model/export.cpp.o" "gcc" "src/CMakeFiles/cybok_model.dir/model/export.cpp.o.d"
  "/root/repo/src/model/mission.cpp" "src/CMakeFiles/cybok_model.dir/model/mission.cpp.o" "gcc" "src/CMakeFiles/cybok_model.dir/model/mission.cpp.o.d"
  "/root/repo/src/model/system_model.cpp" "src/CMakeFiles/cybok_model.dir/model/system_model.cpp.o" "gcc" "src/CMakeFiles/cybok_model.dir/model/system_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cybok_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_cvss.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
