file(REMOVE_RECURSE
  "libcybok_model.a"
)
