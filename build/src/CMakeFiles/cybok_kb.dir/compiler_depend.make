# Empty compiler generated dependencies file for cybok_kb.
# This may be replaced when dependencies are built.
