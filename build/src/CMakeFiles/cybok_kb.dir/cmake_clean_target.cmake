file(REMOVE_RECURSE
  "libcybok_kb.a"
)
