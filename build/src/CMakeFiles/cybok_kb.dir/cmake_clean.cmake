file(REMOVE_RECURSE
  "CMakeFiles/cybok_kb.dir/kb/corpus.cpp.o"
  "CMakeFiles/cybok_kb.dir/kb/corpus.cpp.o.d"
  "CMakeFiles/cybok_kb.dir/kb/hierarchy.cpp.o"
  "CMakeFiles/cybok_kb.dir/kb/hierarchy.cpp.o.d"
  "CMakeFiles/cybok_kb.dir/kb/import_mitre.cpp.o"
  "CMakeFiles/cybok_kb.dir/kb/import_mitre.cpp.o.d"
  "CMakeFiles/cybok_kb.dir/kb/import_nvd.cpp.o"
  "CMakeFiles/cybok_kb.dir/kb/import_nvd.cpp.o.d"
  "CMakeFiles/cybok_kb.dir/kb/platform.cpp.o"
  "CMakeFiles/cybok_kb.dir/kb/platform.cpp.o.d"
  "CMakeFiles/cybok_kb.dir/kb/serialize.cpp.o"
  "CMakeFiles/cybok_kb.dir/kb/serialize.cpp.o.d"
  "libcybok_kb.a"
  "libcybok_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cybok_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
