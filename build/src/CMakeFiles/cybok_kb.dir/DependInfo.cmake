
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kb/corpus.cpp" "src/CMakeFiles/cybok_kb.dir/kb/corpus.cpp.o" "gcc" "src/CMakeFiles/cybok_kb.dir/kb/corpus.cpp.o.d"
  "/root/repo/src/kb/hierarchy.cpp" "src/CMakeFiles/cybok_kb.dir/kb/hierarchy.cpp.o" "gcc" "src/CMakeFiles/cybok_kb.dir/kb/hierarchy.cpp.o.d"
  "/root/repo/src/kb/import_mitre.cpp" "src/CMakeFiles/cybok_kb.dir/kb/import_mitre.cpp.o" "gcc" "src/CMakeFiles/cybok_kb.dir/kb/import_mitre.cpp.o.d"
  "/root/repo/src/kb/import_nvd.cpp" "src/CMakeFiles/cybok_kb.dir/kb/import_nvd.cpp.o" "gcc" "src/CMakeFiles/cybok_kb.dir/kb/import_nvd.cpp.o.d"
  "/root/repo/src/kb/platform.cpp" "src/CMakeFiles/cybok_kb.dir/kb/platform.cpp.o" "gcc" "src/CMakeFiles/cybok_kb.dir/kb/platform.cpp.o.d"
  "/root/repo/src/kb/serialize.cpp" "src/CMakeFiles/cybok_kb.dir/kb/serialize.cpp.o" "gcc" "src/CMakeFiles/cybok_kb.dir/kb/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cybok_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_cvss.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
