# Empty dependencies file for cybok_search.
# This may be replaced when dependencies are built.
