# Empty compiler generated dependencies file for cybok_search.
# This may be replaced when dependencies are built.
