file(REMOVE_RECURSE
  "libcybok_search.a"
)
