
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/search/association.cpp" "src/CMakeFiles/cybok_search.dir/search/association.cpp.o" "gcc" "src/CMakeFiles/cybok_search.dir/search/association.cpp.o.d"
  "/root/repo/src/search/engine.cpp" "src/CMakeFiles/cybok_search.dir/search/engine.cpp.o" "gcc" "src/CMakeFiles/cybok_search.dir/search/engine.cpp.o.d"
  "/root/repo/src/search/filters.cpp" "src/CMakeFiles/cybok_search.dir/search/filters.cpp.o" "gcc" "src/CMakeFiles/cybok_search.dir/search/filters.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cybok_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_cvss.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
