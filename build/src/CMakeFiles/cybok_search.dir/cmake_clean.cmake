file(REMOVE_RECURSE
  "CMakeFiles/cybok_search.dir/search/association.cpp.o"
  "CMakeFiles/cybok_search.dir/search/association.cpp.o.d"
  "CMakeFiles/cybok_search.dir/search/engine.cpp.o"
  "CMakeFiles/cybok_search.dir/search/engine.cpp.o.d"
  "CMakeFiles/cybok_search.dir/search/filters.cpp.o"
  "CMakeFiles/cybok_search.dir/search/filters.cpp.o.d"
  "libcybok_search.a"
  "libcybok_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cybok_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
