file(REMOVE_RECURSE
  "CMakeFiles/cybok_util.dir/util/json.cpp.o"
  "CMakeFiles/cybok_util.dir/util/json.cpp.o.d"
  "CMakeFiles/cybok_util.dir/util/rng.cpp.o"
  "CMakeFiles/cybok_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/cybok_util.dir/util/strings.cpp.o"
  "CMakeFiles/cybok_util.dir/util/strings.cpp.o.d"
  "CMakeFiles/cybok_util.dir/util/xml.cpp.o"
  "CMakeFiles/cybok_util.dir/util/xml.cpp.o.d"
  "libcybok_util.a"
  "libcybok_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cybok_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
