# Empty compiler generated dependencies file for cybok_util.
# This may be replaced when dependencies are built.
