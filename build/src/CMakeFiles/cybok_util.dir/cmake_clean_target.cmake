file(REMOVE_RECURSE
  "libcybok_util.a"
)
