# Empty compiler generated dependencies file for cybok_safety.
# This may be replaced when dependencies are built.
