file(REMOVE_RECURSE
  "libcybok_safety.a"
)
