file(REMOVE_RECURSE
  "CMakeFiles/cybok_safety.dir/safety/control_structure.cpp.o"
  "CMakeFiles/cybok_safety.dir/safety/control_structure.cpp.o.d"
  "CMakeFiles/cybok_safety.dir/safety/hazards.cpp.o"
  "CMakeFiles/cybok_safety.dir/safety/hazards.cpp.o.d"
  "CMakeFiles/cybok_safety.dir/safety/scenarios.cpp.o"
  "CMakeFiles/cybok_safety.dir/safety/scenarios.cpp.o.d"
  "CMakeFiles/cybok_safety.dir/safety/trace.cpp.o"
  "CMakeFiles/cybok_safety.dir/safety/trace.cpp.o.d"
  "libcybok_safety.a"
  "libcybok_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cybok_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
