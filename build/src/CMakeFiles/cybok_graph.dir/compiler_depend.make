# Empty compiler generated dependencies file for cybok_graph.
# This may be replaced when dependencies are built.
