
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/algorithms.cpp" "src/CMakeFiles/cybok_graph.dir/graph/algorithms.cpp.o" "gcc" "src/CMakeFiles/cybok_graph.dir/graph/algorithms.cpp.o.d"
  "/root/repo/src/graph/dot.cpp" "src/CMakeFiles/cybok_graph.dir/graph/dot.cpp.o" "gcc" "src/CMakeFiles/cybok_graph.dir/graph/dot.cpp.o.d"
  "/root/repo/src/graph/graphml.cpp" "src/CMakeFiles/cybok_graph.dir/graph/graphml.cpp.o" "gcc" "src/CMakeFiles/cybok_graph.dir/graph/graphml.cpp.o.d"
  "/root/repo/src/graph/property_graph.cpp" "src/CMakeFiles/cybok_graph.dir/graph/property_graph.cpp.o" "gcc" "src/CMakeFiles/cybok_graph.dir/graph/property_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cybok_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
