file(REMOVE_RECURSE
  "libcybok_graph.a"
)
