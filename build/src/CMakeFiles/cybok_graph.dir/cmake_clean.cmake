file(REMOVE_RECURSE
  "CMakeFiles/cybok_graph.dir/graph/algorithms.cpp.o"
  "CMakeFiles/cybok_graph.dir/graph/algorithms.cpp.o.d"
  "CMakeFiles/cybok_graph.dir/graph/dot.cpp.o"
  "CMakeFiles/cybok_graph.dir/graph/dot.cpp.o.d"
  "CMakeFiles/cybok_graph.dir/graph/graphml.cpp.o"
  "CMakeFiles/cybok_graph.dir/graph/graphml.cpp.o.d"
  "CMakeFiles/cybok_graph.dir/graph/property_graph.cpp.o"
  "CMakeFiles/cybok_graph.dir/graph/property_graph.cpp.o.d"
  "libcybok_graph.a"
  "libcybok_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cybok_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
