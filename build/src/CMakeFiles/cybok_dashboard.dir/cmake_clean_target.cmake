file(REMOVE_RECURSE
  "libcybok_dashboard.a"
)
