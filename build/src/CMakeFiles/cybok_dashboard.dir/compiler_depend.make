# Empty compiler generated dependencies file for cybok_dashboard.
# This may be replaced when dependencies are built.
