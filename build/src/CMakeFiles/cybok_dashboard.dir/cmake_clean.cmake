file(REMOVE_RECURSE
  "CMakeFiles/cybok_dashboard.dir/dashboard/export_bundle.cpp.o"
  "CMakeFiles/cybok_dashboard.dir/dashboard/export_bundle.cpp.o.d"
  "CMakeFiles/cybok_dashboard.dir/dashboard/histogram.cpp.o"
  "CMakeFiles/cybok_dashboard.dir/dashboard/histogram.cpp.o.d"
  "CMakeFiles/cybok_dashboard.dir/dashboard/report.cpp.o"
  "CMakeFiles/cybok_dashboard.dir/dashboard/report.cpp.o.d"
  "CMakeFiles/cybok_dashboard.dir/dashboard/table.cpp.o"
  "CMakeFiles/cybok_dashboard.dir/dashboard/table.cpp.o.d"
  "CMakeFiles/cybok_dashboard.dir/dashboard/vector_graph.cpp.o"
  "CMakeFiles/cybok_dashboard.dir/dashboard/vector_graph.cpp.o.d"
  "libcybok_dashboard.a"
  "libcybok_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cybok_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
