
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dashboard/export_bundle.cpp" "src/CMakeFiles/cybok_dashboard.dir/dashboard/export_bundle.cpp.o" "gcc" "src/CMakeFiles/cybok_dashboard.dir/dashboard/export_bundle.cpp.o.d"
  "/root/repo/src/dashboard/histogram.cpp" "src/CMakeFiles/cybok_dashboard.dir/dashboard/histogram.cpp.o" "gcc" "src/CMakeFiles/cybok_dashboard.dir/dashboard/histogram.cpp.o.d"
  "/root/repo/src/dashboard/report.cpp" "src/CMakeFiles/cybok_dashboard.dir/dashboard/report.cpp.o" "gcc" "src/CMakeFiles/cybok_dashboard.dir/dashboard/report.cpp.o.d"
  "/root/repo/src/dashboard/table.cpp" "src/CMakeFiles/cybok_dashboard.dir/dashboard/table.cpp.o" "gcc" "src/CMakeFiles/cybok_dashboard.dir/dashboard/table.cpp.o.d"
  "/root/repo/src/dashboard/vector_graph.cpp" "src/CMakeFiles/cybok_dashboard.dir/dashboard/vector_graph.cpp.o" "gcc" "src/CMakeFiles/cybok_dashboard.dir/dashboard/vector_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cybok_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_safety.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_search.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_cvss.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
