file(REMOVE_RECURSE
  "CMakeFiles/cybok_core.dir/core/session.cpp.o"
  "CMakeFiles/cybok_core.dir/core/session.cpp.o.d"
  "libcybok_core.a"
  "libcybok_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cybok_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
