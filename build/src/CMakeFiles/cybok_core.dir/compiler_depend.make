# Empty compiler generated dependencies file for cybok_core.
# This may be replaced when dependencies are built.
