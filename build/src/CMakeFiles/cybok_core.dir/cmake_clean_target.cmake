file(REMOVE_RECURSE
  "libcybok_core.a"
)
