# Empty compiler generated dependencies file for cybok_text.
# This may be replaced when dependencies are built.
