file(REMOVE_RECURSE
  "libcybok_text.a"
)
