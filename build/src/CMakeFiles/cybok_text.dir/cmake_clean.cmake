file(REMOVE_RECURSE
  "CMakeFiles/cybok_text.dir/text/index.cpp.o"
  "CMakeFiles/cybok_text.dir/text/index.cpp.o.d"
  "CMakeFiles/cybok_text.dir/text/tokenize.cpp.o"
  "CMakeFiles/cybok_text.dir/text/tokenize.cpp.o.d"
  "libcybok_text.a"
  "libcybok_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cybok_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
