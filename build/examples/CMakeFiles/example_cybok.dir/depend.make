# Empty dependencies file for example_cybok.
# This may be replaced when dependencies are built.
