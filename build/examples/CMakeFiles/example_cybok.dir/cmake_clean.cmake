file(REMOVE_RECURSE
  "../examples_bin/cybok"
  "../examples_bin/cybok.pdb"
  "CMakeFiles/example_cybok.dir/cybok.cpp.o"
  "CMakeFiles/example_cybok.dir/cybok.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cybok.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
