# Empty dependencies file for example_deployed_reevaluation.
# This may be replaced when dependencies are built.
