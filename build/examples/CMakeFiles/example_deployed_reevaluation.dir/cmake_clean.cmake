file(REMOVE_RECURSE
  "../examples_bin/deployed_reevaluation"
  "../examples_bin/deployed_reevaluation.pdb"
  "CMakeFiles/example_deployed_reevaluation.dir/deployed_reevaluation.cpp.o"
  "CMakeFiles/example_deployed_reevaluation.dir/deployed_reevaluation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_deployed_reevaluation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
