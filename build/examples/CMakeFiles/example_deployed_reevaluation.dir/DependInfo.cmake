
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/deployed_reevaluation.cpp" "examples/CMakeFiles/example_deployed_reevaluation.dir/deployed_reevaluation.cpp.o" "gcc" "examples/CMakeFiles/example_deployed_reevaluation.dir/deployed_reevaluation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cybok_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_dashboard.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_safety.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_search.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_cvss.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cybok_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
