# Empty compiler generated dependencies file for example_uav_demo.
# This may be replaced when dependencies are built.
