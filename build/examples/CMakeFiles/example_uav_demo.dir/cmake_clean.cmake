file(REMOVE_RECURSE
  "../examples_bin/uav_demo"
  "../examples_bin/uav_demo.pdb"
  "CMakeFiles/example_uav_demo.dir/uav_demo.cpp.o"
  "CMakeFiles/example_uav_demo.dir/uav_demo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_uav_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
