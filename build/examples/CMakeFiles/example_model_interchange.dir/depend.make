# Empty dependencies file for example_model_interchange.
# This may be replaced when dependencies are built.
