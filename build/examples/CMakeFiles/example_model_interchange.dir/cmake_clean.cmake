file(REMOVE_RECURSE
  "../examples_bin/model_interchange"
  "../examples_bin/model_interchange.pdb"
  "CMakeFiles/example_model_interchange.dir/model_interchange.cpp.o"
  "CMakeFiles/example_model_interchange.dir/model_interchange.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_model_interchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
