# Empty compiler generated dependencies file for example_centrifuge_demo.
# This may be replaced when dependencies are built.
