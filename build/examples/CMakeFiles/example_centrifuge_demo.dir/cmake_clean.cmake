file(REMOVE_RECURSE
  "../examples_bin/centrifuge_demo"
  "../examples_bin/centrifuge_demo.pdb"
  "CMakeFiles/example_centrifuge_demo.dir/centrifuge_demo.cpp.o"
  "CMakeFiles/example_centrifuge_demo.dir/centrifuge_demo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_centrifuge_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
