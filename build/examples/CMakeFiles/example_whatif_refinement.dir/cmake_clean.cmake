file(REMOVE_RECURSE
  "../examples_bin/whatif_refinement"
  "../examples_bin/whatif_refinement.pdb"
  "CMakeFiles/example_whatif_refinement.dir/whatif_refinement.cpp.o"
  "CMakeFiles/example_whatif_refinement.dir/whatif_refinement.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_whatif_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
