# Empty compiler generated dependencies file for example_whatif_refinement.
# This may be replaced when dependencies are built.
