// Graph-substrate throughput: the algorithms the analysis layer leans on
// (reachability for exposure, betweenness for criticality, simple-path
// enumeration for attack paths) across architecture sizes.

#include <cstdio>

#include "bench_common.hpp"
#include "graph/algorithms.hpp"
#include "graph/graphml.hpp"
#include "model/export.hpp"

using namespace cybok;
using namespace cybok::graph;

namespace {

PropertyGraph layered_graph(std::size_t components) {
    synth::ModelGenConfig cfg;
    cfg.components = components;
    cfg.seed = 41;
    return model::to_graph(synth::generate_model(cfg));
}

void preamble() {
    std::printf("Graph algorithm throughput on layered architectures\n\n");
}

void BM_Bfs(benchmark::State& state) {
    PropertyGraph g = layered_graph(static_cast<std::size_t>(state.range(0)));
    NodeId start = g.nodes().front();
    for (auto _ : state) {
        auto order = bfs_order(g, start);
        benchmark::DoNotOptimize(order);
    }
}
BENCHMARK(BM_Bfs)->Arg(50)->Arg(200)->Arg(800);

void BM_Betweenness(benchmark::State& state) {
    PropertyGraph g = layered_graph(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        auto cb = betweenness_centrality(g);
        benchmark::DoNotOptimize(cb);
    }
}
BENCHMARK(BM_Betweenness)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_WeaklyConnectedComponents(benchmark::State& state) {
    PropertyGraph g = layered_graph(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        auto comps = weakly_connected_components(g);
        benchmark::DoNotOptimize(comps);
    }
}
BENCHMARK(BM_WeaklyConnectedComponents)->Arg(200)->Arg(800);

void BM_AllSimplePaths(benchmark::State& state) {
    PropertyGraph g = layered_graph(static_cast<std::size_t>(state.range(0)));
    auto nodes = g.nodes();
    NodeId from = nodes.front();
    NodeId to = nodes.back();
    for (auto _ : state) {
        auto paths = all_simple_paths(g, from, to, 8, 1024);
        benchmark::DoNotOptimize(paths);
    }
}
BENCHMARK(BM_AllSimplePaths)->Arg(50)->Arg(200);

void BM_TopologicalOrder(benchmark::State& state) {
    PropertyGraph g = layered_graph(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        auto order = topological_order(g);
        benchmark::DoNotOptimize(order);
    }
}
BENCHMARK(BM_TopologicalOrder)->Arg(200)->Arg(800);

void BM_GraphmlSerialize(benchmark::State& state) {
    PropertyGraph g = layered_graph(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        std::string xml = to_graphml(g);
        benchmark::DoNotOptimize(xml);
    }
    state.counters["nodes"] = static_cast<double>(g.node_count());
}
BENCHMARK(BM_GraphmlSerialize)->Arg(50)->Arg(200)->Arg(800);

void BM_GraphmlParse(benchmark::State& state) {
    std::string xml = to_graphml(layered_graph(static_cast<std::size_t>(state.range(0))));
    for (auto _ : state) {
        PropertyGraph g = from_graphml(xml);
        benchmark::DoNotOptimize(g);
    }
    state.counters["bytes"] = static_cast<double>(xml.size());
}
BENCHMARK(BM_GraphmlParse)->Arg(50)->Arg(200)->Arg(800);

} // namespace

CYBOK_BENCH_MAIN(preamble)
