// Leaf-substrate throughput: CVSS parsing/scoring (the severity filter's
// inner loop) and the text-analysis pipeline (the search engine's inner
// loop).

#include <cstdio>

#include "bench_common.hpp"
#include "cvss/cvss.hpp"
#include "text/tokenize.hpp"

using namespace cybok;

namespace {

void preamble() {
    std::printf("CVSS + text pipeline micro-benchmarks\n\n");
}

void BM_CvssParse(benchmark::State& state) {
    for (auto _ : state) {
        auto v = cvss::parse("CVSS:3.1/AV:N/AC:L/PR:L/UI:R/S:C/C:H/I:L/A:N/E:F/RL:O/RC:C");
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_CvssParse);

void BM_CvssBaseScore(benchmark::State& state) {
    auto v = cvss::parse("CVSS:3.1/AV:N/AC:L/PR:L/UI:R/S:C/C:H/I:L/A:N");
    for (auto _ : state) {
        double s = cvss::base_score(v);
        benchmark::DoNotOptimize(s);
    }
}
BENCHMARK(BM_CvssBaseScore);

void BM_CvssEnvironmentalScore(benchmark::State& state) {
    auto v = cvss::parse(
        "CVSS:3.1/AV:N/AC:L/PR:L/UI:R/S:C/C:H/I:L/A:N/CR:H/IR:M/AR:L/MAV:A/MS:U/MC:H");
    for (auto _ : state) {
        double s = cvss::environmental_score(v);
        benchmark::DoNotOptimize(s);
    }
}
BENCHMARK(BM_CvssEnvironmentalScore);

void BM_CvssScoreAllCorpusVectors(benchmark::State& state) {
    // The severity filter's worst case: parse+score every CVE of one OS.
    const kb::Corpus& corpus = cybok::bench::demo_corpus();
    std::vector<const std::string*> vectors;
    for (const kb::Vulnerability& v : corpus.vulnerabilities())
        if (!v.cvss_vector.empty()) vectors.push_back(&v.cvss_vector);
    for (auto _ : state) {
        double total = 0.0;
        for (const std::string* s : vectors) total += cvss::base_score(cvss::parse(*s));
        benchmark::DoNotOptimize(total);
    }
    state.counters["vectors"] = static_cast<double>(vectors.size());
}
BENCHMARK(BM_CvssScoreAllCorpusVectors)->Unit(benchmark::kMillisecond);

void BM_Tokenize(benchmark::State& state) {
    const std::string text =
        "An upstream attacker may inject all or part of an operating system command "
        "onto an externally influenced input of the BPCS platform disrupting operation.";
    for (auto _ : state) {
        auto tokens = text::tokenize(text);
        benchmark::DoNotOptimize(tokens);
    }
}
BENCHMARK(BM_Tokenize);

void BM_AnalyzePipeline(benchmark::State& state) {
    const std::string text =
        "An upstream attacker may inject all or part of an operating system command "
        "onto an externally influenced input of the BPCS platform disrupting operation.";
    for (auto _ : state) {
        auto tokens = text::analyze(text);
        benchmark::DoNotOptimize(tokens);
    }
}
BENCHMARK(BM_AnalyzePipeline);

void BM_PorterStemmer(benchmark::State& state) {
    const char* words[] = {"relational", "conditional",  "generalization", "oscillators",
                           "authentication", "vulnerabilities", "disruptions", "monitoring"};
    for (auto _ : state) {
        for (const char* w : words) {
            std::string s = text::stem(w);
            benchmark::DoNotOptimize(s);
        }
    }
}
BENCHMARK(BM_PorterStemmer);

} // namespace

CYBOK_BENCH_MAIN(preamble)
