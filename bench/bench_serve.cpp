// The serve layer under load: one shared engine generation serving many
// concurrent client connections and sessions over real loopback sockets.
// Preamble: a 64-session burst against the demo corpus (the acceptance
// floor for the analysis-server milestone). Benchmarks: single-client
// request latency (p50/p99 as counters), N-client query fan-in with QPS,
// and session open/list/close churn — all end to end through framing,
// the IO thread, the bounded queue, and the worker lanes.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

using namespace cybok;
using cybok::bench::demo_corpus;

namespace {

/// One server per bench process, over the demo corpus + centrifuge base
/// model; every benchmark talks to it over loopback TCP.
struct BenchServer {
    std::shared_ptr<const core::SharedEngine> engine;
    std::unique_ptr<serve::Server> server;

    BenchServer() {
        engine = core::make_shared_engine(demo_corpus(), core::SessionOptions{});
        serve::ServerOptions options;
        options.queue_capacity = 8192; // measure service time, not shedding
        options.registry.max_sessions = 8192;
        server = std::make_unique<serve::Server>(engine, synth::centrifuge_model(), options);
        server->start();
    }
    ~BenchServer() {
        server->stop();
        server->wait();
    }
};

serve::Server& bench_server() {
    static BenchServer holder;
    return *holder.server;
}

serve::BlockingClient connect() {
    return serve::BlockingClient("127.0.0.1", bench_server().port());
}

serve::Request query_request() {
    serve::Request req;
    req.type = serve::MsgType::Query;
    req.text = "buffer overflow industrial control network";
    req.limit = 5;
    return req;
}

double percentile(std::vector<double>& sorted_us, double p) {
    if (sorted_us.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(p * static_cast<double>(sorted_us.size() - 1));
    return sorted_us[idx];
}

void set_latency_counters(benchmark::State& state, std::vector<double>& latencies_us,
                          double elapsed_s) {
    std::sort(latencies_us.begin(), latencies_us.end());
    state.counters["p50_us"] = percentile(latencies_us, 0.50);
    state.counters["p99_us"] = percentile(latencies_us, 0.99);
    if (elapsed_s > 0.0)
        state.counters["qps"] = static_cast<double>(latencies_us.size()) / elapsed_s;
}

void print_serve_preamble() {
    serve::Server& server = bench_server();
    std::printf("cybok-serve on 127.0.0.1:%u — 64-session burst (acceptance floor):\n",
                server.port());
    serve::BlockingClient client = connect();
    serve::Request open;
    open.type = serve::MsgType::SessionOpen;
    for (int i = 0; i < 64; ++i) client.send(open);
    std::size_t opened = 0;
    for (int i = 0; i < 64; ++i)
        if (client.receive().ok) ++opened;
    serve::Request list;
    list.type = serve::MsgType::SessionList;
    const serve::Response listing = client.call(list);
    std::printf("  opened %zu sessions, server lists %lld open (generation %lld)\n", opened,
                static_cast<long long>(listing.body.get_int("count")),
                static_cast<long long>(
                    client.call([] { serve::Request r; r.type = serve::MsgType::Hello; return r; }())
                        .body.get_int("generation")));
    serve::Request close;
    close.type = serve::MsgType::SessionClose;
    for (int i = 1; i <= 64; ++i) {
        close.session = "s-" + std::to_string(i);
        (void)client.call(close);
    }
    std::printf("\n");
}

/// Single client, serial requests: the per-request floor through the full
/// stack (frame, queue, lane, engine query, response frame).
void BM_ServeQueryLatencySingleClient(benchmark::State& state) {
    serve::BlockingClient client = connect();
    const serve::Request req = query_request();
    std::vector<double> latencies_us;
    const auto wall_start = std::chrono::steady_clock::now();
    for (auto _ : state) {
        const auto start = std::chrono::steady_clock::now();
        const serve::Response resp = client.call(req);
        const auto end = std::chrono::steady_clock::now();
        if (!resp.ok) state.SkipWithError("query failed");
        latencies_us.push_back(
            std::chrono::duration<double, std::micro>(end - start).count());
        benchmark::DoNotOptimize(resp.body);
    }
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
    set_latency_counters(state, latencies_us, elapsed_s);
    state.SetItemsProcessed(static_cast<std::int64_t>(latencies_us.size()));
}
BENCHMARK(BM_ServeQueryLatencySingleClient)->Unit(benchmark::kMicrosecond);

/// N concurrent client connections, each running a fixed query burst:
/// fan-in through the bounded queue and worker lanes. QPS and tail
/// latency land in the JSON sidecar as counters.
void BM_ServeConcurrentClients(benchmark::State& state) {
    const int clients = static_cast<int>(state.range(0));
    constexpr int kQueriesPerClient = 8;
    std::vector<double> all_latencies_us;
    double elapsed_total_s = 0.0;
    for (auto _ : state) {
        std::vector<std::vector<double>> per_client(static_cast<std::size_t>(clients));
        std::atomic<int> failures{0};
        const auto wall_start = std::chrono::steady_clock::now();
        {
            std::vector<std::thread> threads;
            threads.reserve(static_cast<std::size_t>(clients));
            for (int c = 0; c < clients; ++c) {
                threads.emplace_back([&, c] {
                    try {
                        serve::BlockingClient client = connect();
                        const serve::Request req = query_request();
                        for (int q = 0; q < kQueriesPerClient; ++q) {
                            const auto start = std::chrono::steady_clock::now();
                            const serve::Response resp = client.call(req);
                            const auto end = std::chrono::steady_clock::now();
                            if (!resp.ok) {
                                ++failures;
                                continue;
                            }
                            per_client[static_cast<std::size_t>(c)].push_back(
                                std::chrono::duration<double, std::micro>(end - start)
                                    .count());
                        }
                    } catch (const Error&) {
                        ++failures;
                    }
                });
            }
            for (std::thread& t : threads) t.join();
        }
        elapsed_total_s += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                         wall_start)
                               .count();
        if (failures.load() != 0) state.SkipWithError("client requests failed");
        for (const auto& v : per_client)
            all_latencies_us.insert(all_latencies_us.end(), v.begin(), v.end());
    }
    set_latency_counters(state, all_latencies_us, elapsed_total_s);
    state.SetItemsProcessed(static_cast<std::int64_t>(all_latencies_us.size()));
}
BENCHMARK(BM_ServeConcurrentClients)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Session lifecycle churn: open a copy-on-write overlay, list, close.
/// Overlays share the base analysis, so this measures registry + protocol
/// overhead, not association work.
void BM_ServeSessionOpenListClose(benchmark::State& state) {
    serve::BlockingClient client = connect();
    serve::Request open;
    open.type = serve::MsgType::SessionOpen;
    serve::Request list;
    list.type = serve::MsgType::SessionList;
    serve::Request close;
    close.type = serve::MsgType::SessionClose;
    for (auto _ : state) {
        const serve::Response opened = client.call(open);
        if (!opened.ok) state.SkipWithError("open failed");
        (void)client.call(list);
        close.session = opened.body.get_string("session");
        const serve::Response closed = client.call(close);
        if (!closed.ok) state.SkipWithError("close failed");
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServeSessionOpenListClose)->Unit(benchmark::kMicrosecond);

/// A 64-session pipelined open/close burst per iteration: the sustained
/// many-sessions shape from the acceptance criteria, end to end.
void BM_ServeSixtyFourSessionBurst(benchmark::State& state) {
    serve::BlockingClient client = connect();
    for (auto _ : state) {
        serve::Request open;
        open.type = serve::MsgType::SessionOpen;
        for (int i = 0; i < 64; ++i) client.send(open);
        std::vector<std::string> ids;
        ids.reserve(64);
        for (int i = 0; i < 64; ++i) {
            const serve::Response resp = client.receive();
            if (!resp.ok) {
                state.SkipWithError("open failed");
                break;
            }
            ids.push_back(resp.body.get_string("session"));
        }
        serve::Request close;
        close.type = serve::MsgType::SessionClose;
        for (const std::string& id : ids) {
            close.session = id;
            client.send(close);
        }
        for (std::size_t i = 0; i < ids.size(); ++i) (void)client.receive();
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ServeSixtyFourSessionBurst)->Unit(benchmark::kMillisecond);

} // namespace

CYBOK_BENCH_MAIN(print_serve_preamble)
