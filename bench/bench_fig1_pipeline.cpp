// Fig. 1 of the paper: the end-to-end pipeline that "merges system models
// with attack vector data to promote model-based security". The preamble
// walks the three capabilities on the demo system and reports what each
// stage produced; the benchmarks time each capability separately and the
// whole pipeline across model sizes.

#include <cstdio>

#include "bench_common.hpp"
#include "graph/graphml.hpp"
#include "model/export.hpp"

using namespace cybok;
using cybok::bench::demo_corpus;

namespace {

void print_pipeline() {
    std::printf("Fig. 1 — pipeline stages on the centrifuge SCADA model\n");
    core::AnalysisSession session(synth::centrifuge_model(), demo_corpus());
    session.set_hazards(synth::centrifuge_hazards());

    std::string graphml = session.architecture_graphml();
    std::printf("  capability 1 (export):    %zu nodes, %zu edges, %zu bytes GraphML\n",
                session.architecture().node_count(), session.architecture().edge_count(),
                graphml.size());
    std::printf("  capability 2 (associate): %zu attack vectors (%zu AP, %zu W, %zu V)\n",
                session.associations().total(),
                session.associations().total(search::VectorClass::AttackPattern),
                session.associations().total(search::VectorClass::Weakness),
                session.associations().total(search::VectorClass::Vulnerability));
    dashboard::Report report = session.report();
    std::printf("  capability 3 (present):   %zu report sections, %zu consequence traces\n\n",
                report.sections.size(), session.consequence_traces().size());
}

void BM_Capability1_Export(benchmark::State& state) {
    model::SystemModel m = synth::centrifuge_model();
    for (auto _ : state) {
        std::string xml = graph::to_graphml(model::to_graph(m), m.name());
        benchmark::DoNotOptimize(xml);
    }
}
BENCHMARK(BM_Capability1_Export);

void BM_Capability2_Associate(benchmark::State& state) {
    static const search::SearchEngine& engine = cybok::bench::demo_engine();
    model::SystemModel m = synth::centrifuge_model();
    for (auto _ : state) {
        auto assoc = search::associate(m, engine);
        benchmark::DoNotOptimize(assoc);
    }
}
BENCHMARK(BM_Capability2_Associate);

void BM_Capability3_Report(benchmark::State& state) {
    core::AnalysisSession session(synth::centrifuge_model(), demo_corpus());
    session.set_hazards(synth::centrifuge_hazards());
    (void)session.associations();
    for (auto _ : state) {
        dashboard::Report r = session.report();
        std::string text = dashboard::render_text(r);
        benchmark::DoNotOptimize(text);
    }
}
BENCHMARK(BM_Capability3_Report);

// The whole pipeline as a function of model size (components), on
// synthetic layered architectures using the same product catalog.
void BM_PipelineVsModelSize(benchmark::State& state) {
    synth::ModelGenConfig cfg;
    cfg.components = static_cast<std::size_t>(state.range(0));
    cfg.seed = 17;
    model::SystemModel m = synth::generate_model(cfg);
    static const search::SearchEngine& engine = cybok::bench::demo_engine();
    std::size_t vectors = 0;
    for (auto _ : state) {
        std::string xml = graph::to_graphml(model::to_graph(m), m.name());
        benchmark::DoNotOptimize(xml);
        auto assoc = search::associate(m, engine);
        vectors = assoc.total();
        auto posture = analysis::compute_posture(m, assoc);
        benchmark::DoNotOptimize(posture);
    }
    state.counters["components"] = static_cast<double>(cfg.components);
    state.counters["vectors"] = static_cast<double>(vectors);
}
BENCHMARK(BM_PipelineVsModelSize)->Arg(6)->Arg(25)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

} // namespace

CYBOK_BENCH_MAIN(print_pipeline)
