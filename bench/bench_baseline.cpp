// The paper's core argument, §1–§2: IT-centric threat modeling (STRIDE,
// attack trees) "cannot map threats to environmental consequences" and is
// therefore "insufficient for assessing security in CPS". The preamble
// runs both methodologies over the same model, associations, and hazard
// knowledge and prints the structural difference; the benchmarks time both
// sides (the CPS pipeline's consequence mapping is not free — the paper's
// point is that it is *necessary*, the measurement shows it is affordable).

#include <cstdio>

#include "baseline/comparison.hpp"
#include "bench_common.hpp"
#include "dashboard/table.hpp"

using namespace cybok;
using namespace cybok::baseline;
using cybok::bench::demo_engine;

namespace {

void print_comparison() {
    model::SystemModel m = synth::centrifuge_model();
    search::AssociationMap assoc = search::associate(m, demo_engine());
    safety::HazardModel hazards = synth::centrifuge_hazards();
    MethodologyComparison cmp = compare_methodologies(m, assoc, hazards, "BPCS platform");

    std::printf("IT-baseline vs CPS methodology on the centrifuge SCADA model\n");
    dashboard::TextTable table({"Measure", "STRIDE + attack tree", "CPS pipeline"});
    table.align_right(1).align_right(2);
    table.add_row({"findings produced", std::to_string(cmp.stride_findings) + " threats",
                   std::to_string(cmp.consequence_traces) + " traces"});
    table.add_row({"attack tree leaves / minimal sets",
                   std::to_string(cmp.attack_tree_leaves) + " / " +
                       std::to_string(cmp.minimal_attack_sets),
                   "-"});
    table.add_row({"components the method cannot model",
                   std::to_string(cmp.unmodeled_components), "0"});
    table.add_row({"findings linked to physical consequences",
                   std::to_string(cmp.baseline_consequence_links),
                   std::to_string(cmp.consequence_traces)});
    table.add_row({"supported causal scenarios", "-",
                   std::to_string(cmp.supported_scenarios)});
    table.add_row({"distinct losses reached", "0",
                   std::to_string(cmp.distinct_losses_reached)});
    std::fputs(table.render().c_str(), stdout);
    std::printf("Expected shape: the baseline produces findings but zero consequence "
                "links and cannot model the physical process at all.\n\n");
}

void BM_StridePerElement(benchmark::State& state) {
    model::SystemModel m = synth::centrifuge_model();
    for (auto _ : state) {
        auto threats = stride_per_element(m);
        benchmark::DoNotOptimize(threats);
    }
}
BENCHMARK(BM_StridePerElement);

void BM_BuildAttackTree(benchmark::State& state) {
    model::SystemModel m = synth::centrifuge_model();
    search::AssociationMap assoc = search::associate(m, demo_engine());
    for (auto _ : state) {
        AttackTree tree = build_attack_tree(m, assoc, "BPCS platform");
        benchmark::DoNotOptimize(tree);
    }
}
BENCHMARK(BM_BuildAttackTree);

void BM_ConsequenceTracing(benchmark::State& state) {
    model::SystemModel m = synth::centrifuge_model();
    search::AssociationMap assoc = search::associate(m, demo_engine());
    safety::HazardModel hazards = synth::centrifuge_hazards();
    for (auto _ : state) {
        safety::ConsequenceAnalyzer analyzer(m, hazards);
        auto traces = analyzer.trace(assoc);
        benchmark::DoNotOptimize(traces);
    }
}
BENCHMARK(BM_ConsequenceTracing);

void BM_CausalScenarios(benchmark::State& state) {
    model::SystemModel m = synth::centrifuge_model();
    search::AssociationMap assoc = search::associate(m, demo_engine());
    safety::HazardModel hazards = synth::centrifuge_hazards();
    for (auto _ : state) {
        auto scenarios = safety::generate_scenarios(m, hazards, assoc);
        benchmark::DoNotOptimize(scenarios);
    }
}
BENCHMARK(BM_CausalScenarios);

void BM_FullMethodologyComparison(benchmark::State& state) {
    model::SystemModel m = synth::centrifuge_model();
    search::AssociationMap assoc = search::associate(m, demo_engine());
    safety::HazardModel hazards = synth::centrifuge_hazards();
    for (auto _ : state) {
        auto cmp = compare_methodologies(m, assoc, hazards, "BPCS platform");
        benchmark::DoNotOptimize(cmp);
    }
}
BENCHMARK(BM_FullMethodologyComparison)->Unit(benchmark::kMillisecond);

void BM_HardeningPrioritization(benchmark::State& state) {
    model::SystemModel m = synth::centrifuge_model();
    search::AssociationMap assoc = search::associate(m, demo_engine());
    safety::HazardModel hazards = synth::centrifuge_hazards();
    for (auto _ : state) {
        auto ranked = analysis::rank_hardening_candidates(m, assoc, &hazards);
        benchmark::DoNotOptimize(ranked);
    }
}
BENCHMARK(BM_HardeningPrioritization)->Unit(benchmark::kMillisecond);

void BM_VectorGraphBuild(benchmark::State& state) {
    model::SystemModel m = synth::centrifuge_model();
    search::AssociationMap assoc = search::associate(m, demo_engine());
    for (auto _ : state) {
        auto g = dashboard::build_vector_graph(m, assoc, cybok::bench::demo_corpus());
        benchmark::DoNotOptimize(g);
    }
}
BENCHMARK(BM_VectorGraphBuild)->Unit(benchmark::kMillisecond);

} // namespace

CYBOK_BENCH_MAIN(print_comparison)
