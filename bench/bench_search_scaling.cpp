// Substrate scaling: index build time and query latency as the corpus
// grows, the BM25-vs-TFIDF ranking ablation called out in DESIGN.md, the
// flat-accumulator kernel vs the reference scorers, and the Block-Max
// WAND top-k path over block-compressed postings. The kernel and build
// benchmarks attach deterministic counters (postings_scanned,
// blocks_decoded/skipped, resident postings bytes) that the CI
// bench-regression gate checks against tools/bench_thresholds.json.

#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "search/association.hpp"
#include "text/scratch.hpp"
#include "text/tokenize.hpp"
#include "util/fault.hpp"

using namespace cybok;

namespace {

const kb::Corpus& corpus_at_scale(int permille) {
    // Cache one corpus per scale so setup cost is paid once.
    static std::map<int, kb::Corpus> cache;
    auto it = cache.find(permille);
    if (it == cache.end()) {
        it = cache.emplace(permille, synth::generate_corpus(synth::CorpusProfile::scaled(
                                        permille / 1000.0, 31))).first;
    }
    return it->second;
}

/// CVE-description index per scale — the largest of the engine's three
/// per-class indexes, for scorer-level kernel-vs-reference timings.
const text::InvertedIndex& vuln_index_at_scale(int permille) {
    static std::map<int, text::InvertedIndex> cache;
    auto it = cache.find(permille);
    if (it == cache.end()) {
        text::InvertedIndex index;
        for (const kb::Vulnerability& v : corpus_at_scale(permille).vulnerabilities()) {
            index.add_document();
            index.add_terms(text::analyze(v.description));
        }
        index.finalize();
        it = cache.emplace(permille, std::move(index)).first;
    }
    return it->second;
}

const std::vector<std::string>& scorer_query() {
    static const std::vector<std::string> tokens =
        text::analyze("scada controller modbus command injection remote code execution");
    return tokens;
}

void preamble() {
    std::printf("Search-engine scaling (corpus scale factor sweep)\n\n");
}

void BM_IndexBuild(benchmark::State& state) {
    const kb::Corpus& corpus = corpus_at_scale(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        search::SearchEngine engine(corpus);
        benchmark::DoNotOptimize(&engine);
    }
    state.counters["docs"] = static_cast<double>(
        corpus.stats().patterns + corpus.stats().weaknesses + corpus.stats().vulnerabilities);
    // Resident-size accounting for the regression gate: compressed posting
    // bytes vs what the old flat Posting arrays would occupy.
    const search::SearchEngine probe(corpus);
    const text::IndexStats stats = probe.index_stats();
    state.counters["postings_bytes"] = static_cast<double>(stats.postings_bytes);
    state.counters["uncompressed_bytes"] = static_cast<double>(stats.uncompressed_postings_bytes);
}
BENCHMARK(BM_IndexBuild)->Arg(50)->Arg(200)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_QueryLatencyVsScale(benchmark::State& state) {
    const kb::Corpus& corpus = corpus_at_scale(static_cast<int>(state.range(0)));
    search::SearchEngine engine(corpus);
    model::Attribute attr;
    attr.name = "role";
    attr.value = "scada controller modbus command injection";
    attr.kind = model::AttributeKind::Descriptor;
    for (auto _ : state) {
        auto matches = engine.query_attribute(attr);
        benchmark::DoNotOptimize(matches);
    }
}
BENCHMARK(BM_QueryLatencyVsScale)->Arg(50)->Arg(200)->Arg(500)->Arg(1000);

// Engine path with a top-k cap: the kernel's max-score pruning arms.
void BM_QueryLatencyTopK(benchmark::State& state) {
    const kb::Corpus& corpus = corpus_at_scale(static_cast<int>(state.range(0)));
    search::EngineOptions opts;
    opts.max_lexical_hits = 25;
    search::SearchEngine engine(corpus, opts);
    model::Attribute attr;
    attr.name = "role";
    attr.value = "scada controller modbus command injection";
    attr.kind = model::AttributeKind::Descriptor;
    for (auto _ : state) {
        auto matches = engine.query_attribute(attr);
        benchmark::DoNotOptimize(matches);
    }
}
BENCHMARK(BM_QueryLatencyTopK)->Arg(50)->Arg(1000);

// Scorer-level A/B over the largest per-class index (CVE descriptions):
// the reference hash-map accumulator vs the flat-accumulator kernel.
void BM_Bm25Reference(benchmark::State& state) {
    const text::InvertedIndex& index = vuln_index_at_scale(static_cast<int>(state.range(0)));
    const text::Bm25Scorer scorer(index);
    for (auto _ : state) {
        auto hits = scorer.query(scorer_query());
        benchmark::DoNotOptimize(hits);
    }
    state.counters["docs"] = static_cast<double>(index.doc_count());
}
BENCHMARK(BM_Bm25Reference)->Arg(50)->Arg(200)->Arg(500)->Arg(1000);

void BM_Bm25Kernel(benchmark::State& state) {
    const text::InvertedIndex& index = vuln_index_at_scale(static_cast<int>(state.range(0)));
    const text::Bm25Scorer scorer(index);
    text::QueryScratch& scratch = text::tls_query_scratch();
    for (auto _ : state) {
        auto hits = scorer.query_kernel(scorer_query(), scratch);
        benchmark::DoNotOptimize(hits);
    }
}
BENCHMARK(BM_Bm25Kernel)->Arg(50)->Arg(200)->Arg(500)->Arg(1000);

// Top-k with pruning: this is the Block-Max WAND path — document-at-a-
// time over compressed blocks, skipping blocks whose max impact cannot
// reach the current floor. The counters are deterministic (fixed query,
// fixed corpus seed) and gate the CI bench-regression check.
void BM_Bm25KernelTopK(benchmark::State& state) {
    const text::InvertedIndex& index = vuln_index_at_scale(static_cast<int>(state.range(0)));
    const text::Bm25Scorer scorer(index);
    text::QueryScratch& scratch = text::tls_query_scratch();
    text::KernelOptions opts;
    opts.top_k = 25;
    text::KernelStats stats;
    for (auto _ : state) {
        stats = {};
        auto hits = scorer.query_kernel(scorer_query(), scratch, opts, &stats);
        benchmark::DoNotOptimize(hits);
    }
    state.counters["postings_scanned"] = static_cast<double>(stats.postings_scanned);
    state.counters["blocks_decoded"] = static_cast<double>(stats.blocks_decoded);
    state.counters["blocks_skipped"] = static_cast<double>(stats.blocks_skipped);
}
BENCHMARK(BM_Bm25KernelTopK)->Arg(50)->Arg(1000);

void BM_TfidfReference(benchmark::State& state) {
    const text::InvertedIndex& index = vuln_index_at_scale(static_cast<int>(state.range(0)));
    const text::TfidfScorer scorer(index);
    for (auto _ : state) {
        auto hits = scorer.query(scorer_query());
        benchmark::DoNotOptimize(hits);
    }
}
BENCHMARK(BM_TfidfReference)->Arg(50)->Arg(1000);

void BM_TfidfKernel(benchmark::State& state) {
    const text::InvertedIndex& index = vuln_index_at_scale(static_cast<int>(state.range(0)));
    const text::TfidfScorer scorer(index);
    text::QueryScratch& scratch = text::tls_query_scratch();
    for (auto _ : state) {
        auto hits = scorer.query_kernel(scorer_query(), scratch);
        benchmark::DoNotOptimize(hits);
    }
}
BENCHMARK(BM_TfidfKernel)->Arg(50)->Arg(1000);

// Ranker ablation at full scale.
void BM_RankerBm25(benchmark::State& state) {
    search::EngineOptions opts;
    opts.ranker = search::EngineOptions::Ranker::Bm25;
    search::SearchEngine engine(cybok::bench::demo_corpus(), opts);
    for (auto _ : state) {
        auto hits = engine.query_text("linux kernel privilege escalation",
                                      search::VectorClass::Weakness);
        benchmark::DoNotOptimize(hits);
    }
}
BENCHMARK(BM_RankerBm25);

void BM_RankerTfidf(benchmark::State& state) {
    search::EngineOptions opts;
    opts.ranker = search::EngineOptions::Ranker::Tfidf;
    search::SearchEngine engine(cybok::bench::demo_corpus(), opts);
    for (auto _ : state) {
        auto hits = engine.query_text("linux kernel privilege escalation",
                                      search::VectorClass::Weakness);
        benchmark::DoNotOptimize(hits);
    }
}
BENCHMARK(BM_RankerTfidf);

// Exact-CPE vs lexical vulnerability association (the second ablation).
void BM_VulnViaPlatformBinding(benchmark::State& state) {
    search::SearchEngine engine(cybok::bench::demo_corpus());
    kb::Platform p{kb::PlatformPart::OperatingSystem, "microsoft", "windows_7", ""};
    for (auto _ : state) {
        auto hits = engine.query_platform(p);
        benchmark::DoNotOptimize(hits);
    }
}
BENCHMARK(BM_VulnViaPlatformBinding);

void BM_VulnViaLexical(benchmark::State& state) {
    search::EngineOptions opts;
    opts.lexical_vulnerabilities = true;
    search::SearchEngine engine(cybok::bench::demo_corpus(), opts);
    for (auto _ : state) {
        auto hits = engine.query_text("Windows 7 release", search::VectorClass::Vulnerability);
        benchmark::DoNotOptimize(hits);
    }
}
BENCHMARK(BM_VulnViaLexical);

// Fault-injection overhead. Every CYBOK_FAULT_POINT is compiled in
// unconditionally, so the disabled cost — one relaxed atomic load plus a
// never-taken branch per crossing — must stay unmeasurable on hot paths.
// BM_FaultPointDisabled prices a single crossing directly (items/s =
// crossings/s); BM_AssocTaskFaultSites times the one query path that
// actually crosses sites (the cached association task: cache get, miss,
// recompute, cache put) with the injector disabled. Dividing the former
// into the latter bounds the end-to-end overhead; EXPERIMENTS.md records
// both from the JSON sidecar against the <2% acceptance bar.
void BM_FaultPointDisabled(benchmark::State& state) {
    for (auto _ : state) {
        for (int i = 0; i < 1024; ++i) {
            CYBOK_FAULT_POINT("bench.disabled.site", Error("never thrown"));
        }
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_FaultPointDisabled);

void BM_AssocTaskFaultSites(benchmark::State& state) {
    const kb::Corpus& corpus = corpus_at_scale(static_cast<int>(state.range(0)));
    search::SearchEngine engine(corpus);
    search::AssocOptions opts;
    opts.threads = 1; // isolate per-task cost from fan-out scheduling
    search::Associator assoc(engine, opts);
    model::SystemModel one;
    const model::ComponentId id = one.add_component("bench", model::ComponentType::Controller);
    one.set_attribute(id, {"role", "scada controller modbus command injection",
                           model::AttributeKind::Descriptor, model::Fidelity::Logical, {}});
    for (auto _ : state) {
        auto map = assoc.associate(one);
        benchmark::DoNotOptimize(map);
    }
}
BENCHMARK(BM_AssocTaskFaultSites)->Arg(200)->Arg(1000);

} // namespace

CYBOK_BENCH_MAIN(preamble)
