// Substrate scaling: index build time and query latency as the corpus
// grows, and the BM25-vs-TFIDF ranking ablation called out in DESIGN.md.

#include <cstdio>
#include <map>

#include "bench_common.hpp"

using namespace cybok;

namespace {

const kb::Corpus& corpus_at_scale(int permille) {
    // Cache one corpus per scale so setup cost is paid once.
    static std::map<int, kb::Corpus> cache;
    auto it = cache.find(permille);
    if (it == cache.end()) {
        it = cache.emplace(permille, synth::generate_corpus(synth::CorpusProfile::scaled(
                                        permille / 1000.0, 31))).first;
    }
    return it->second;
}

void preamble() {
    std::printf("Search-engine scaling (corpus scale factor sweep)\n\n");
}

void BM_IndexBuild(benchmark::State& state) {
    const kb::Corpus& corpus = corpus_at_scale(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        search::SearchEngine engine(corpus);
        benchmark::DoNotOptimize(&engine);
    }
    state.counters["docs"] = static_cast<double>(
        corpus.stats().patterns + corpus.stats().weaknesses + corpus.stats().vulnerabilities);
}
BENCHMARK(BM_IndexBuild)->Arg(50)->Arg(200)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_QueryLatencyVsScale(benchmark::State& state) {
    const kb::Corpus& corpus = corpus_at_scale(static_cast<int>(state.range(0)));
    search::SearchEngine engine(corpus);
    model::Attribute attr;
    attr.name = "role";
    attr.value = "scada controller modbus command injection";
    attr.kind = model::AttributeKind::Descriptor;
    for (auto _ : state) {
        auto matches = engine.query_attribute(attr);
        benchmark::DoNotOptimize(matches);
    }
}
BENCHMARK(BM_QueryLatencyVsScale)->Arg(50)->Arg(200)->Arg(500)->Arg(1000);

// Ranker ablation at full scale.
void BM_RankerBm25(benchmark::State& state) {
    search::EngineOptions opts;
    opts.ranker = search::EngineOptions::Ranker::Bm25;
    search::SearchEngine engine(cybok::bench::demo_corpus(), opts);
    for (auto _ : state) {
        auto hits = engine.query_text("linux kernel privilege escalation",
                                      search::VectorClass::Weakness);
        benchmark::DoNotOptimize(hits);
    }
}
BENCHMARK(BM_RankerBm25);

void BM_RankerTfidf(benchmark::State& state) {
    search::EngineOptions opts;
    opts.ranker = search::EngineOptions::Ranker::Tfidf;
    search::SearchEngine engine(cybok::bench::demo_corpus(), opts);
    for (auto _ : state) {
        auto hits = engine.query_text("linux kernel privilege escalation",
                                      search::VectorClass::Weakness);
        benchmark::DoNotOptimize(hits);
    }
}
BENCHMARK(BM_RankerTfidf);

// Exact-CPE vs lexical vulnerability association (the second ablation).
void BM_VulnViaPlatformBinding(benchmark::State& state) {
    search::SearchEngine engine(cybok::bench::demo_corpus());
    kb::Platform p{kb::PlatformPart::OperatingSystem, "microsoft", "windows_7", ""};
    for (auto _ : state) {
        auto hits = engine.query_platform(p);
        benchmark::DoNotOptimize(hits);
    }
}
BENCHMARK(BM_VulnViaPlatformBinding);

void BM_VulnViaLexical(benchmark::State& state) {
    search::EngineOptions opts;
    opts.lexical_vulnerabilities = true;
    search::SearchEngine engine(cybok::bench::demo_corpus(), opts);
    for (auto _ : state) {
        auto hits = engine.query_text("Windows 7 release", search::VectorClass::Vulnerability);
        benchmark::DoNotOptimize(hits);
    }
}
BENCHMARK(BM_VulnViaLexical);

} // namespace

CYBOK_BENCH_MAIN(preamble)
