// Section 3 lesson: "the result space … is highly sensitive to the
// fidelity of the model." The preamble prints the result-space size and
// shape at each fidelity level of the same architecture; the benchmarks
// time association per level.

#include <cstdio>

#include "analysis/fidelity.hpp"
#include "bench_common.hpp"
#include "dashboard/table.hpp"

using namespace cybok;
using cybok::bench::demo_engine;

namespace {

void print_fidelity_sweep() {
    std::printf("Result-space size vs model fidelity (centrifuge SCADA model)\n");
    auto points = analysis::fidelity_sweep(synth::centrifuge_model(), demo_engine());
    dashboard::TextTable table({"Fidelity", "Attributes", "Attack Patterns", "Weaknesses",
                                "Vulnerabilities", "Specificity"});
    for (int i = 1; i <= 5; ++i) table.align_right(static_cast<std::size_t>(i));
    for (const auto& p : points) {
        char spec[16];
        std::snprintf(spec, sizeof spec, "%.2f", p.specificity);
        table.add_row({std::string(model::fidelity_name(p.level)),
                       std::to_string(p.attributes), std::to_string(p.attack_patterns),
                       std::to_string(p.weaknesses), std::to_string(p.vulnerabilities),
                       spec});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("Expected shape: vulnerabilities ~0 until implementation fidelity, then "
                "dominant; specificity jumps with platform references.\n\n");
}

void BM_AssociateAtFidelity(benchmark::State& state) {
    auto level = static_cast<model::Fidelity>(state.range(0));
    model::SystemModel m = synth::centrifuge_model().at_fidelity(level);
    std::size_t vectors = 0;
    for (auto _ : state) {
        auto assoc = search::associate(m, demo_engine());
        vectors = assoc.total();
        benchmark::DoNotOptimize(assoc);
    }
    state.SetLabel(std::string(model::fidelity_name(level)));
    state.counters["vectors"] = static_cast<double>(vectors);
}
BENCHMARK(BM_AssociateAtFidelity)->DenseRange(0, 3);

void BM_FidelitySweepFull(benchmark::State& state) {
    model::SystemModel m = synth::centrifuge_model();
    for (auto _ : state) {
        auto points = analysis::fidelity_sweep(m, demo_engine());
        benchmark::DoNotOptimize(points);
    }
}
BENCHMARK(BM_FidelitySweepFull)->Unit(benchmark::kMillisecond);

// The mitigation the paper proposes for the fidelity explosion: abstract
// vulnerabilities into weakness classes at early stages.
void BM_AbstractVulnerabilities(benchmark::State& state) {
    model::Attribute attr;
    attr.name = "os";
    attr.value = "NI RT Linux OS";
    attr.kind = model::AttributeKind::PlatformRef;
    attr.platform = kb::Platform{kb::PlatformPart::OperatingSystem, "ni", "rt_linux", ""};
    auto matches = demo_engine().query_attribute(attr);
    std::size_t abstracted_size = 0;
    for (auto _ : state) {
        auto abstracted = search::abstract_vulnerabilities(matches, demo_engine().corpus());
        abstracted_size = abstracted.size();
        benchmark::DoNotOptimize(abstracted);
    }
    state.counters["before"] = static_cast<double>(matches.size());
    state.counters["after"] = static_cast<double>(abstracted_size);
}
BENCHMARK(BM_AbstractVulnerabilities)->Unit(benchmark::kMillisecond);

} // namespace

CYBOK_BENCH_MAIN(print_fidelity_sweep)
