// Table 1 of the paper: the number of attack patterns / weaknesses /
// vulnerabilities associated with each attribute of the centrifuge SCADA
// model. The preamble prints the paper's numbers next to ours (they must
// agree exactly — the corpus generator is calibrated to the published
// volumes); the benchmarks measure what the paper's prototype pays for
// that search.

#include <cstdio>

#include "bench_common.hpp"
#include "dashboard/table.hpp"
#include "search/association.hpp"

using namespace cybok;
using cybok::bench::demo_corpus;
using cybok::bench::demo_engine;

namespace {

struct PaperRow {
    const char* attribute;
    std::size_t patterns, weaknesses, vulnerabilities;
};
constexpr PaperRow kPaper[] = {
    {"Cisco ASA", 2, 1, 3776},   {"NI RT Linux OS", 54, 75, 9673},
    {"Windows 7", 41, 73, 6627}, {"LabVIEW", 0, 0, 6},
    {"NI cRIO 9063", 0, 0, 7},   {"NI cRIO 9064", 0, 0, 7},
};

void print_table1() {
    model::SystemModel m = synth::centrifuge_model();
    search::AssociationMap assoc = search::associate(m, demo_engine());
    auto rows = assoc.attribute_table();

    std::printf("Table 1 — attack vectors per SCADA model attribute (paper vs measured)\n");
    dashboard::TextTable table({"Attribute", "AP paper", "AP ours", "W paper", "W ours",
                                "V paper", "V ours", "match"});
    for (int i = 1; i <= 6; ++i) table.align_right(static_cast<std::size_t>(i));
    bool all_match = true;
    for (const PaperRow& p : kPaper) {
        std::size_t ap = 0, w = 0, v = 0;
        for (const auto& row : rows) {
            if (row.attribute == p.attribute) {
                ap = row.attack_patterns;
                w = row.weaknesses;
                v = row.vulnerabilities;
                break;
            }
        }
        bool match = ap == p.patterns && w == p.weaknesses && v == p.vulnerabilities;
        all_match = all_match && match;
        table.add_row({p.attribute, std::to_string(p.patterns), std::to_string(ap),
                       std::to_string(p.weaknesses), std::to_string(w),
                       std::to_string(p.vulnerabilities), std::to_string(v),
                       match ? "yes" : "NO"});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("Table 1 reproduction: %s\n\n", all_match ? "EXACT" : "MISMATCH");

    // The same table through the parallel+cached engine must be identical;
    // print its metrics so every bench run documents the cache behavior.
    search::Associator par(demo_engine(), search::AssocOptions{});
    search::AssociationMap cold = par.associate(m);
    search::AssociationMap warm = par.associate(m);
    std::printf("Parallel engine check: %s (cold) / %s (warm)\n",
                cold.total() == assoc.total() ? "identical totals" : "MISMATCH",
                warm.total() == assoc.total() ? "identical totals" : "MISMATCH");
    std::printf("Assoc metrics: %s\n\n", par.metrics().summary().c_str());
}

// How long one attribute query takes, per attribute kind.
void BM_QueryPlatformAttribute(benchmark::State& state) {
    model::Attribute attr;
    attr.name = "os";
    attr.value = "NI RT Linux OS";
    attr.kind = model::AttributeKind::PlatformRef;
    attr.platform = kb::Platform{kb::PlatformPart::OperatingSystem, "ni", "rt_linux", ""};
    std::size_t total = 0;
    for (auto _ : state) {
        auto matches = demo_engine().query_attribute(attr);
        total += matches.size();
        benchmark::DoNotOptimize(matches);
    }
    state.counters["matches"] = static_cast<double>(total) /
                                static_cast<double>(state.iterations());
}
BENCHMARK(BM_QueryPlatformAttribute);

void BM_QueryDescriptorAttribute(benchmark::State& state) {
    model::Attribute attr;
    attr.name = "role";
    attr.value = "basic process control scada controller modbus interface";
    attr.kind = model::AttributeKind::Descriptor;
    std::size_t total = 0;
    for (auto _ : state) {
        auto matches = demo_engine().query_attribute(attr);
        total += matches.size();
        benchmark::DoNotOptimize(matches);
    }
    state.counters["matches"] = static_cast<double>(total) /
                                static_cast<double>(state.iterations());
}
BENCHMARK(BM_QueryDescriptorAttribute);

// The full Table 1: associate the whole SCADA model (sequential baseline).
void BM_AssociateScadaModel(benchmark::State& state) {
    model::SystemModel m = synth::centrifuge_model();
    for (auto _ : state) {
        search::AssociationMap assoc = search::associate(m, demo_engine());
        benchmark::DoNotOptimize(assoc);
    }
}
BENCHMARK(BM_AssociateScadaModel);

// The same association through the parallel pipeline, cache disabled —
// isolates the thread-pool fan-out speedup over the baseline above.
void BM_AssociateScadaModelParallel(benchmark::State& state) {
    model::SystemModel m = synth::centrifuge_model();
    search::AssocOptions opts;
    opts.threads = static_cast<std::size_t>(state.range(0));
    opts.cache_enabled = false;
    search::Associator assoc(demo_engine(), opts);
    for (auto _ : state) {
        search::AssociationMap map = assoc.associate(m);
        benchmark::DoNotOptimize(map);
    }
    state.counters["threads"] = static_cast<double>(assoc.thread_count());
}
BENCHMARK(BM_AssociateScadaModelParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(0);

// Warm-cache replay: the cost of re-associating an unchanged model, the
// floor the what-if loop pays when nothing (relevant) changed.
void BM_AssociateScadaModelCachedWarm(benchmark::State& state) {
    model::SystemModel m = synth::centrifuge_model();
    search::Associator assoc(demo_engine(), search::AssocOptions{});
    (void)assoc.associate(m); // prime
    for (auto _ : state) {
        search::AssociationMap map = assoc.associate(m);
        benchmark::DoNotOptimize(map);
    }
    search::AssocMetrics metrics = assoc.metrics();
    state.counters["hit_rate"] = metrics.cache_hit_rate();
}
BENCHMARK(BM_AssociateScadaModelCachedWarm);

// What the paper's pipeline pays up front: generating (stand-in for
// downloading/parsing) and indexing the corpus.
void BM_GenerateCorpus(benchmark::State& state) {
    for (auto _ : state) {
        kb::Corpus corpus = synth::generate_corpus(synth::CorpusProfile::scada_demo());
        benchmark::DoNotOptimize(corpus);
    }
}
BENCHMARK(BM_GenerateCorpus)->Unit(benchmark::kMillisecond);

void BM_BuildSearchIndex(benchmark::State& state) {
    for (auto _ : state) {
        search::SearchEngine engine(demo_corpus());
        benchmark::DoNotOptimize(&engine);
    }
}
BENCHMARK(BM_BuildSearchIndex)->Unit(benchmark::kMillisecond);

} // namespace

CYBOK_BENCH_MAIN(print_table1)
