// Cost of the static lint pipeline (src/lint/) against corpus/model scale.
// The lint pass runs before association in the session flow, so its cost
// must stay a small fraction of the association stage it gates; the
// preamble prints the full-run summary at synth scale 1.0 (the number
// quoted in EXPERIMENTS.md), and the benchmarks break the cost down per
// pass — the KB pass does whole-corpus scans and dominates, the model and
// consequence passes are architecture-sized and nearly free.

#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "lint/lint.hpp"

using namespace cybok;

namespace {

// Scale factors are permilles so Google Benchmark ranges stay integral.
constexpr std::int64_t kScales[] = {250, 500, 1000};

const kb::Corpus& corpus_at(std::int64_t permille) {
    static std::map<std::int64_t, kb::Corpus> cache;
    auto it = cache.find(permille);
    if (it == cache.end()) {
        it = cache.emplace(permille,
                           synth::generate_corpus(synth::CorpusProfile::scaled(
                               static_cast<double>(permille) / 1000.0, 7)))
                 .first;
    }
    return it->second;
}

const model::SystemModel& model_at(std::int64_t permille) {
    static std::map<std::int64_t, model::SystemModel> cache;
    auto it = cache.find(permille);
    if (it == cache.end()) {
        synth::ModelGenConfig cfg;
        cfg.seed = 11;
        cfg.components = static_cast<std::size_t>(40 * permille / 1000 + 10);
        it = cache.emplace(permille, synth::generate_model(cfg)).first;
    }
    return it->second;
}

const safety::HazardModel& demo_hazards() {
    static const safety::HazardModel hazards = synth::centrifuge_hazards();
    return hazards;
}

/// Options that keep only the rules of one pass enabled, so a benchmark
/// isolates that pass's cost.
lint::LintOptions only_pass(lint::Pass pass) {
    lint::LintOptions opts;
    for (const lint::Rule& r : lint::registry())
        if (r.pass != pass) opts.disabled.insert(std::string(r.code));
    return opts;
}

lint::LintInput full_input(std::int64_t permille) {
    lint::LintInput in;
    in.model = &model_at(permille);
    in.corpus = &corpus_at(permille);
    in.hazards = &demo_hazards();
    return in;
}

void print_lint_summary() {
    std::printf("Static lint cost at synth scale 1.0 "
                "(%zu-component generated model + scaled corpus)\n",
                model_at(1000).component_count());
    lint::LintResult r = lint::run_lint(full_input(1000));
    std::printf("  %s\n", r.summary().c_str());
    std::printf("  wall %.2f ms | model pass %.2f ms, kb pass %.2f ms, "
                "consequence pass %.2f ms (per-rule sums)\n\n",
                static_cast<double>(r.wall_ns) / 1e6,
                static_cast<double>(r.model_ns) / 1e6,
                static_cast<double>(r.kb_ns) / 1e6,
                static_cast<double>(r.consequence_ns) / 1e6);
}

void BM_LintFull(benchmark::State& state) {
    const std::int64_t permille = state.range(0);
    lint::LintInput in = full_input(permille);
    std::size_t findings = 0;
    for (auto _ : state) {
        lint::LintResult r = lint::run_lint(in);
        findings = r.diagnostics.size();
        benchmark::DoNotOptimize(r);
    }
    state.SetLabel("scale=" + std::to_string(static_cast<double>(permille) / 1000.0)
                                  .substr(0, 4));
    state.counters["findings"] = static_cast<double>(findings);
}

void BM_LintPass(benchmark::State& state) {
    const auto pass = static_cast<lint::Pass>(state.range(0));
    const std::int64_t permille = state.range(1);
    lint::LintInput in = full_input(permille);
    const lint::LintOptions opts = only_pass(pass);
    for (auto _ : state) {
        lint::LintResult r = lint::run_lint(in, opts);
        benchmark::DoNotOptimize(r);
    }
    state.SetLabel(std::string(lint::pass_name(pass)) + " pass, scale=" +
                   std::to_string(static_cast<double>(permille) / 1000.0).substr(0, 4));
}

void BM_LintSerialVsParallel(benchmark::State& state) {
    lint::LintInput in = full_input(1000);
    lint::LintOptions opts;
    opts.threads = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        lint::LintResult r = lint::run_lint(in, opts);
        benchmark::DoNotOptimize(r);
    }
}

} // namespace

BENCHMARK(BM_LintFull)->Arg(kScales[0])->Arg(kScales[1])->Arg(kScales[2])
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LintPass)
    ->ArgsProduct({{0, 1, 2}, {kScales[0], kScales[1], kScales[2]}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LintSerialVsParallel)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

CYBOK_BENCH_MAIN(print_lint_summary)
