// Cost of zoo generation and fleet batch analysis (src/synth/zoo.*,
// src/analysis/fleet.*). The deterministic counters this suite exports —
// generated connectors/entry points per domain, and the fleet's summed
// association/flow counters — are pure functions of the generator seed
// and the demo corpus, so tools/bench_thresholds.json gates exact
// ceilings on them: a generator that silently densifies its topology or
// a fleet pass that loses its pruning shows up as counter drift, never
// as a flaky timing comparison.
//
// The preamble prints the per-domain shape at the headline scale plus
// one fleet ranking summary (the numbers quoted in EXPERIMENTS.md).

#include <cstdio>

#include "analysis/fleet.hpp"
#include "bench_common.hpp"
#include "synth/zoo.hpp"

using namespace cybok;

namespace {

synth::ZooConfig config_for(synth::ZooDomain domain, std::int64_t components) {
    synth::ZooConfig cfg;
    cfg.domain = domain;
    cfg.seed = 11;
    cfg.components = static_cast<std::size_t>(components);
    return cfg;
}

void BM_ZooGenerate(benchmark::State& state, synth::ZooDomain domain) {
    const synth::ZooConfig cfg = config_for(domain, state.range(0));
    synth::ZooSystem sys;
    for (auto _ : state) {
        sys = synth::generate_zoo_system(cfg);
        benchmark::DoNotOptimize(sys);
    }
    std::size_t entries = 0;
    for (const model::Component& c : sys.model.components())
        if (c.id.valid() && c.external_facing) ++entries;
    state.counters["connectors"] =
        static_cast<double>(sys.model.connectors().size());
    state.counters["entry_points"] = static_cast<double>(entries);
}

void BM_FleetAnalyze(benchmark::State& state) {
    analysis::FleetOptions options;
    options.systems = static_cast<std::size_t>(state.range(0));
    options.components = 30;
    options.threads = 0; // hardware concurrency; counters never depend on it
    analysis::FleetResult result;
    for (auto _ : state) {
        result = analysis::analyze_fleet(bench::demo_engine(), options);
        benchmark::DoNotOptimize(result);
    }
    state.counters["fleet_vectors"] = static_cast<double>(result.total_vectors);
    state.counters["fleet_tainted"] = static_cast<double>(result.total_tainted);
    state.counters["queries_run"] = static_cast<double>(result.metrics.queries_run);
    state.counters["taint_iterations"] =
        static_cast<double>(result.flow_totals.taint_iterations);
    state.counters["flow_edges_traversed"] =
        static_cast<double>(result.flow_totals.edges_traversed);
}

void print_zoo_summary() {
    std::printf("Zoo generation at 1000 components (seed 11)\n");
    for (synth::ZooDomain d : synth::all_zoo_domains()) {
        const synth::ZooSystem sys =
            synth::generate_zoo_system(config_for(d, 1000));
        std::size_t entries = 0;
        for (const model::Component& c : sys.model.components())
            if (c.id.valid() && c.external_facing) ++entries;
        std::printf("  %-10s %zu connectors, %zu entry points, %zu UCAs\n",
                    std::string(synth::zoo_domain_name(d)).c_str(),
                    sys.model.connectors().size(), entries, sys.hazards.ucas().size());
    }
    analysis::FleetOptions options;
    options.systems = 16;
    options.components = 30;
    const analysis::FleetResult fleet =
        analysis::analyze_fleet(bench::demo_engine(), options);
    std::printf("Fleet: %s\n\n", fleet.summary().c_str());
}

} // namespace

BENCHMARK_CAPTURE(BM_ZooGenerate, uav, synth::ZooDomain::Uav)
    ->Arg(50)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ZooGenerate, automotive, synth::ZooDomain::Automotive)
    ->Arg(50)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ZooGenerate, grid, synth::ZooDomain::Grid)
    ->Arg(50)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ZooGenerate, water, synth::ZooDomain::Water)
    ->Arg(50)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FleetAnalyze)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

CYBOK_BENCH_MAIN(print_zoo_summary)
