// Section 3: the dashboard lets the analyst "change the model on the fly
// and immediately see the new results". Preamble: one refinement step with
// its qualitative verdict. Benchmarks: incremental re-association vs full
// re-association (the design choice that makes "immediately" true), and
// the propose/commit session loop.

#include <cstdio>

#include "bench_common.hpp"
#include "model/diff.hpp"

using namespace cybok;
using cybok::bench::demo_corpus;
using cybok::bench::demo_engine;

namespace {

void print_whatif() {
    std::printf("What-if refinement: Windows 7 engineering WS -> hardened RTOS\n");
    model::SystemModel before = synth::centrifuge_model();
    search::AssociationMap before_assoc = search::associate(before, demo_engine());
    analysis::WhatIfResult r = analysis::what_if(before, before_assoc,
                                                 synth::centrifuge_model_hardened(),
                                                 demo_engine());
    std::printf("  verdict: %s, delta %lld vectors\n",
                std::string(analysis::verdict_name(r.comparison.verdict)).c_str(),
                static_cast<long long>(r.comparison.delta_total));
    for (const auto& row : r.comparison.rows)
        std::printf("    %s: %+lld patterns, %+lld weaknesses, %+lld vulnerabilities\n",
                    row.component.c_str(), static_cast<long long>(row.delta_patterns),
                    static_cast<long long>(row.delta_weaknesses),
                    static_cast<long long>(row.delta_vulnerabilities));
    std::printf("\n");
}

void BM_FullReassociation(benchmark::State& state) {
    model::SystemModel after = synth::centrifuge_model_hardened();
    for (auto _ : state) {
        auto assoc = search::associate(after, demo_engine());
        benchmark::DoNotOptimize(assoc);
    }
}
BENCHMARK(BM_FullReassociation);

void BM_IncrementalReassociation(benchmark::State& state) {
    model::SystemModel before = synth::centrifuge_model();
    model::SystemModel after = synth::centrifuge_model_hardened();
    search::AssociationMap before_assoc = search::associate(before, demo_engine());
    model::ModelDiff d = model::diff(before, after);
    for (auto _ : state) {
        auto assoc = search::reassociate(before_assoc, d, after, demo_engine());
        benchmark::DoNotOptimize(assoc);
    }
}
BENCHMARK(BM_IncrementalReassociation);

// The refinement step through the parallel engine. Untouched components
// are copied wholesale (the dominant win); the touched components' cache
// entries are invalidated by policy on every reassociate, so they
// re-query each iteration — hit_rate here reflects only duplicate
// attributes, not replay.
void BM_IncrementalReassociationParallelCached(benchmark::State& state) {
    model::SystemModel before = synth::centrifuge_model();
    model::SystemModel after = synth::centrifuge_model_hardened();
    search::Associator assoc_engine(demo_engine(), search::AssocOptions{});
    search::AssociationMap before_assoc = assoc_engine.associate(before);
    model::ModelDiff d = model::diff(before, after);
    for (auto _ : state) {
        auto assoc = assoc_engine.reassociate(before_assoc, d, after);
        benchmark::DoNotOptimize(assoc);
    }
    state.counters["hit_rate"] = assoc_engine.metrics().cache_hit_rate();
}
BENCHMARK(BM_IncrementalReassociationParallelCached);

// Full re-association of the whole model, parallel engine, cold vs warm
// cache — the "re-run everything after a refinement" upper bound the
// paper's workflow pays without incrementality.
void BM_FullReassociationParallelWarm(benchmark::State& state) {
    model::SystemModel after = synth::centrifuge_model_hardened();
    search::Associator assoc_engine(demo_engine(), search::AssocOptions{});
    (void)assoc_engine.associate(after); // prime
    for (auto _ : state) {
        auto assoc = assoc_engine.associate(after);
        benchmark::DoNotOptimize(assoc);
    }
    state.counters["hit_rate"] = assoc_engine.metrics().cache_hit_rate();
}
BENCHMARK(BM_FullReassociationParallelWarm);

// Incremental advantage grows with model size: edit one component of an
// N-component architecture.
void BM_IncrementalVsSize(benchmark::State& state) {
    synth::ModelGenConfig cfg;
    cfg.components = static_cast<std::size_t>(state.range(0));
    cfg.seed = 23;
    model::SystemModel before = synth::generate_model(cfg);
    model::SystemModel after = synth::generate_model(cfg);
    // Touch exactly one component.
    model::ComponentId first = after.components().front().id;
    model::Attribute extra;
    extra.name = "note";
    extra.value = "revised supervisory role";
    after.set_attribute(first, extra);

    search::AssociationMap before_assoc = search::associate(before, demo_engine());
    model::ModelDiff d = model::diff(before, after);
    for (auto _ : state) {
        auto assoc = search::reassociate(before_assoc, d, after, demo_engine());
        benchmark::DoNotOptimize(assoc);
    }
    state.counters["components"] = static_cast<double>(cfg.components);
}
BENCHMARK(BM_IncrementalVsSize)->Arg(25)->Arg(100)->Arg(200);

void BM_FullVsSize(benchmark::State& state) {
    synth::ModelGenConfig cfg;
    cfg.components = static_cast<std::size_t>(state.range(0));
    cfg.seed = 23;
    model::SystemModel m = synth::generate_model(cfg);
    for (auto _ : state) {
        auto assoc = search::associate(m, demo_engine());
        benchmark::DoNotOptimize(assoc);
    }
    state.counters["components"] = static_cast<double>(cfg.components);
}
BENCHMARK(BM_FullVsSize)->Arg(25)->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_SessionProposeCommit(benchmark::State& state) {
    for (auto _ : state) {
        core::AnalysisSession session(synth::centrifuge_model(), demo_corpus());
        (void)session.associations();
        auto result = session.propose(synth::centrifuge_model_hardened());
        benchmark::DoNotOptimize(result);
        session.commit(synth::centrifuge_model_hardened());
        benchmark::DoNotOptimize(session.associations().total());
    }
}
BENCHMARK(BM_SessionProposeCommit)->Unit(benchmark::kMillisecond);

void BM_ModelDiff(benchmark::State& state) {
    model::SystemModel before = synth::centrifuge_model();
    model::SystemModel after = synth::centrifuge_model_hardened();
    for (auto _ : state) {
        auto d = model::diff(before, after);
        benchmark::DoNotOptimize(d);
    }
}
BENCHMARK(BM_ModelDiff);

} // namespace

CYBOK_BENCH_MAIN(print_whatif)
