// Shared fixtures for the benchmark suite: the demo corpus, engine, and
// model are built once per process (corpus generation is itself measured
// separately where relevant).
//
// Machine-readable output: every bench binary honors Google Benchmark's
// native --benchmark_out/--benchmark_out_format flags, and additionally
// the CYBOK_BENCH_JSON_DIR environment variable — when set, each binary
// writes <dir>/BENCH_<name>.json (benchmark JSON format) without any
// extra flags, so `cmake --build build --target bench_json` tracks the
// perf trajectory as one JSON artifact per bench from this PR onward.

#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "synth/corpus_gen.hpp"
#include "synth/model_gen.hpp"
#include "synth/scada.hpp"

namespace cybok::bench {

inline const kb::Corpus& demo_corpus() {
    static const kb::Corpus corpus =
        synth::generate_corpus(synth::CorpusProfile::scada_demo());
    return corpus;
}

inline const search::SearchEngine& demo_engine() {
    static const search::SearchEngine engine(demo_corpus());
    return engine;
}

/// A process-wide parallel+cached associator over the demo engine, for
/// benchmarks that measure the warm interactive path. Benchmarks that
/// need cold-cache numbers construct their own Associator instead.
inline search::Associator& demo_associator() {
    static search::Associator assoc(demo_engine(), search::AssocOptions{});
    return assoc;
}

/// Shared main body: preamble (the reproduced table), then benchmarks.
/// `binary_name` (argv[0]) names the BENCH_<name>.json sidecar when
/// CYBOK_BENCH_JSON_DIR is set.
inline int run_bench_main(int argc, char** argv, void (*preamble)()) {
    preamble();
    std::vector<char*> args(argv, argv + argc);
    std::string out_flag, fmt_flag;
    if (const char* dir = std::getenv("CYBOK_BENCH_JSON_DIR"); dir != nullptr && *dir != '\0') {
        std::string name(argv[0]);
        if (std::size_t slash = name.find_last_of('/'); slash != std::string::npos)
            name = name.substr(slash + 1);
        out_flag = "--benchmark_out=" + std::string(dir) + "/BENCH_" + name + ".json";
        fmt_flag = "--benchmark_out_format=json";
        args.push_back(out_flag.data());
        args.push_back(fmt_flag.data());
    }
    int n = static_cast<int>(args.size());
    benchmark::Initialize(&n, args.data());
    if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

#define CYBOK_BENCH_MAIN(preamble_fn)                                   \
    int main(int argc, char** argv) {                                   \
        return cybok::bench::run_bench_main(argc, argv, preamble_fn);   \
    }

} // namespace cybok::bench
