// Shared fixtures for the benchmark suite: the demo corpus, engine, and
// model are built once per process (corpus generation is itself measured
// separately where relevant).

#pragma once

#include <benchmark/benchmark.h>

#include "core/session.hpp"
#include "synth/corpus_gen.hpp"
#include "synth/model_gen.hpp"
#include "synth/scada.hpp"

namespace cybok::bench {

inline const kb::Corpus& demo_corpus() {
    static const kb::Corpus corpus =
        synth::generate_corpus(synth::CorpusProfile::scada_demo());
    return corpus;
}

inline const search::SearchEngine& demo_engine() {
    static const search::SearchEngine engine(demo_corpus());
    return engine;
}

/// Standard main: print a preamble (the reproduced table), then run the
/// registered benchmarks.
#define CYBOK_BENCH_MAIN(preamble_fn)                                   \
    int main(int argc, char** argv) {                                   \
        preamble_fn();                                                  \
        benchmark::Initialize(&argc, argv);                             \
        if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
        benchmark::RunSpecifiedBenchmarks();                            \
        benchmark::Shutdown();                                          \
        return 0;                                                       \
    }

} // namespace cybok::bench
