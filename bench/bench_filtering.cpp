// Section 3: "the total number of attack vectors returned by the search
// process is large. Filtering functionality is implemented to manage these
// attack vectors." Preamble: the filter funnel on the noisiest attribute.
// Benchmarks: filter-pipeline ablation (none / severity / top-k / class /
// combined) and the ordering design choice (cheap-first vs selective-first).

#include <cstdio>

#include "bench_common.hpp"
#include "dashboard/table.hpp"
#include "search/filters.hpp"

using namespace cybok;
using namespace cybok::search;
using cybok::bench::demo_engine;

namespace {

std::vector<Match> noisy_matches() {
    model::Attribute attr;
    attr.name = "os";
    attr.value = "NI RT Linux OS";
    attr.kind = model::AttributeKind::PlatformRef;
    attr.platform = kb::Platform{kb::PlatformPart::OperatingSystem, "ni", "rt_linux", ""};
    return demo_engine().query_attribute(attr);
}

void print_funnel() {
    std::vector<Match> matches = noisy_matches();
    std::printf("Filter funnel on the noisiest attribute (NI RT Linux OS, %zu vectors)\n",
                matches.size());

    struct Config {
        const char* name;
        FilterChain chain;
    };
    std::vector<Config> configs;
    configs.push_back({"no filter", FilterChain{}});
    {
        FilterChain c;
        c.add(min_severity(cvss::Severity::High));
        configs.push_back({"severity >= High", std::move(c)});
    }
    {
        FilterChain c;
        c.add(min_severity(cvss::Severity::Critical));
        configs.push_back({"severity >= Critical", std::move(c)});
    }
    {
        FilterChain c;
        c.top_k_per_class(25);
        configs.push_back({"top-25 per class", std::move(c)});
    }
    {
        FilterChain c;
        c.add(by_class(VectorClass::Weakness));
        configs.push_back({"weaknesses only", std::move(c)});
    }
    {
        FilterChain c;
        c.add(min_severity(cvss::Severity::High)).top_k_per_class(25);
        configs.push_back({"severity + top-25", std::move(c)});
    }

    dashboard::TextTable table({"Filter", "Survivors", "Reduction"});
    table.align_right(1).align_right(2);
    for (const Config& cfg : configs) {
        auto kept = cfg.chain.apply(matches);
        char pct[16];
        std::snprintf(pct, sizeof pct, "%.1f%%",
                      100.0 * (1.0 - static_cast<double>(kept.size()) /
                                          static_cast<double>(matches.size())));
        table.add_row({cfg.name, std::to_string(kept.size()), pct});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n");
}

void BM_FilterNone(benchmark::State& state) {
    auto matches = noisy_matches();
    FilterChain chain;
    for (auto _ : state) {
        auto kept = chain.apply(matches);
        benchmark::DoNotOptimize(kept);
    }
    state.counters["survivors"] = static_cast<double>(chain.apply(matches).size());
}
BENCHMARK(BM_FilterNone)->Unit(benchmark::kMillisecond);

void BM_FilterSeverity(benchmark::State& state) {
    auto matches = noisy_matches();
    FilterChain chain;
    chain.add(min_severity(cvss::Severity::High));
    for (auto _ : state) {
        auto kept = chain.apply(matches);
        benchmark::DoNotOptimize(kept);
    }
    state.counters["survivors"] = static_cast<double>(chain.apply(matches).size());
}
BENCHMARK(BM_FilterSeverity)->Unit(benchmark::kMillisecond);

void BM_FilterTopK(benchmark::State& state) {
    auto matches = noisy_matches();
    FilterChain chain;
    chain.top_k_per_class(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        auto kept = chain.apply(matches);
        benchmark::DoNotOptimize(kept);
    }
}
BENCHMARK(BM_FilterTopK)->Arg(10)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_FilterCombined(benchmark::State& state) {
    auto matches = noisy_matches();
    FilterChain chain;
    chain.add(min_severity(cvss::Severity::High)).top_k_per_class(25);
    for (auto _ : state) {
        auto kept = chain.apply(matches);
        benchmark::DoNotOptimize(kept);
    }
    state.counters["survivors"] = static_cast<double>(chain.apply(matches).size());
}
BENCHMARK(BM_FilterCombined)->Unit(benchmark::kMillisecond);

// Design-choice ablation: running the selective class filter before the
// (CVSS-parsing, hence expensive) severity filter vs after.
void BM_FilterOrder_SelectiveFirst(benchmark::State& state) {
    auto matches = noisy_matches();
    FilterChain chain;
    chain.add(by_class(VectorClass::Weakness)).add(min_severity(cvss::Severity::High));
    for (auto _ : state) {
        auto kept = chain.apply(matches);
        benchmark::DoNotOptimize(kept);
    }
}
BENCHMARK(BM_FilterOrder_SelectiveFirst)->Unit(benchmark::kMillisecond);

void BM_FilterOrder_ExpensiveFirst(benchmark::State& state) {
    auto matches = noisy_matches();
    FilterChain chain;
    chain.add(min_severity(cvss::Severity::High)).add(by_class(VectorClass::Weakness));
    for (auto _ : state) {
        auto kept = chain.apply(matches);
        benchmark::DoNotOptimize(kept);
    }
}
BENCHMARK(BM_FilterOrder_ExpensiveFirst)->Unit(benchmark::kMillisecond);

} // namespace

CYBOK_BENCH_MAIN(print_funnel)
