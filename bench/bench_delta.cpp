// Segmented incremental indexing: the acceptance benchmarks for the
// O(delta) update path.
//
//  * BM_DeltaApply vs BM_RebuildBaseline — apply cost must track delta
//    size, not corpus size (the preamble prints the measured scale-1.0
//    speedup for a 1% delta; acceptance floor is 10x),
//  * BM_StalenessToVisibility — wall time from "delta handed to the
//    engine" to "a query observes the new record",
//  * BM_MergedQueryWithSegments — query latency over base + 3 segments,
//    with the deterministic merge counters (segments_visited,
//    tombstones_masked, postings_scanned) the CI bench-regression gate
//    checks against tools/bench_thresholds.json,
//  * BM_SustainedUpdatesUnderQueries — feed-tick throughput (applies/sec
//    with periodic compaction) while query lanes hammer the current
//    generation.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "bench_common.hpp"
#include "kb/delta.hpp"
#include "search/generation.hpp"
#include "util/rng.hpp"

using namespace cybok;

namespace {

const kb::Corpus& corpus_at_scale(int permille) {
    static std::map<int, kb::Corpus> cache;
    auto it = cache.find(permille);
    if (it == cache.end()) {
        it = cache.emplace(permille, synth::generate_corpus(synth::CorpusProfile::scaled(
                                        permille / 1000.0, 31))).first;
    }
    return it->second;
}

const search::SearchEngine& base_engine_at_scale(int permille) {
    static std::map<int, std::unique_ptr<search::SearchEngine>> cache;
    auto it = cache.find(permille);
    if (it == cache.end()) {
        it = cache.emplace(permille, std::make_unique<search::SearchEngine>(
                                        corpus_at_scale(permille))).first;
    }
    return *it->second;
}

/// A ~1% delta over `corpus`: 1% of each family modified (min 1), one
/// withdrawal per family, two added records with probe vocabulary.
/// Deterministic per (corpus, tag).
kb::CorpusDelta one_percent_delta(const kb::Corpus& corpus, std::uint32_t tag) {
    Rng rng(4242 + tag);
    kb::CorpusDelta d;
    auto take = [&rng](auto& out, const auto& records, std::size_t n) {
        for (std::size_t i : rng.sample_indices(records.size(), n)) {
            out.push_back(records[i]);
        }
    };
    const std::size_t np = std::max<std::size_t>(1, corpus.patterns().size() / 100);
    const std::size_t nw = std::max<std::size_t>(1, corpus.weaknesses().size() / 100);
    const std::size_t nv = std::max<std::size_t>(1, corpus.vulnerabilities().size() / 100);
    take(d.patterns, corpus.patterns(), np);
    take(d.weaknesses, corpus.weaknesses(), nw);
    take(d.vulnerabilities, corpus.vulnerabilities(), nv);
    for (kb::AttackPattern& p : d.patterns) p.summary += " advisory rev" + std::to_string(tag);
    for (kb::Weakness& w : d.weaknesses) w.description += " advisory rev" + std::to_string(tag);
    for (kb::Vulnerability& v : d.vulnerabilities)
        v.description += " advisory rev" + std::to_string(tag);

    kb::Weakness probe;
    probe.id = kb::WeaknessId{800000 + tag};
    probe.name = "Unverified quillphase frame origin";
    probe.description = "Relay accepts quillphase maintenance frames without verifying "
                        "origin; any bus participant can retime protection. rev" +
                        std::to_string(tag);
    d.weaknesses.push_back(std::move(probe));
    return d;
}

void preamble() {
    std::printf("Segmented incremental indexing: O(delta) apply vs full rebuild\n");
    // The acceptance ratio, measured once at full synthetic scale: a 1%%
    // delta applied to the sealed base vs rebuilding the whole engine.
    using clock = std::chrono::steady_clock;
    const kb::Corpus& corpus = corpus_at_scale(1000);
    const search::SearchEngine& base = base_engine_at_scale(1000);
    const kb::CorpusDelta delta = one_percent_delta(corpus, 1);

    const auto t0 = clock::now();
    const search::SegmentedEngine seg(base, delta);
    const auto t1 = clock::now();
    const search::SearchEngine rebuilt(seg.corpus());
    const auto t2 = clock::now();

    const double apply_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double rebuild_ms = std::chrono::duration<double, std::milli>(t2 - t1).count();
    std::printf("  scale 1.0, 1%% delta (%zu records over %zu):\n", delta.size(),
                corpus.patterns().size() + corpus.weaknesses().size() +
                    corpus.vulnerabilities().size());
    std::printf("  apply %.2f ms  vs  full rebuild %.2f ms  ->  %.1fx cheaper\n\n",
                apply_ms, rebuild_ms, rebuild_ms / apply_ms);
}

void BM_DeltaApply(benchmark::State& state) {
    const auto permille = static_cast<int>(state.range(0));
    const search::SearchEngine& base = base_engine_at_scale(permille);
    const kb::CorpusDelta delta = one_percent_delta(corpus_at_scale(permille), 2);
    for (auto _ : state) {
        search::SegmentedEngine seg(base, delta);
        benchmark::DoNotOptimize(&seg);
    }
    state.counters["delta_records"] = static_cast<double>(delta.size());
    state.counters["corpus_records"] = static_cast<double>(
        corpus_at_scale(permille).patterns().size() +
        corpus_at_scale(permille).weaknesses().size() +
        corpus_at_scale(permille).vulnerabilities().size());
}
BENCHMARK(BM_DeltaApply)->Arg(50)->Arg(200)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_RebuildBaseline(benchmark::State& state) {
    const auto permille = static_cast<int>(state.range(0));
    const kb::CorpusDelta delta = one_percent_delta(corpus_at_scale(permille), 2);
    const search::SegmentedEngine seg(base_engine_at_scale(permille), delta);
    for (auto _ : state) {
        search::SearchEngine engine(seg.corpus());
        benchmark::DoNotOptimize(&engine);
    }
}
BENCHMARK(BM_RebuildBaseline)->Arg(50)->Arg(200)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_StalenessToVisibility(benchmark::State& state) {
    // Feed tick to first visible hit: construct the next generation and
    // query until the delta-only probe record is returned.
    const auto permille = static_cast<int>(state.range(0));
    const search::SearchEngine& base = base_engine_at_scale(permille);
    const kb::CorpusDelta delta = one_percent_delta(corpus_at_scale(permille), 3);
    std::size_t visible = 0;
    for (auto _ : state) {
        search::SegmentedEngine seg(base, delta);
        const std::vector<search::Match> hits =
            seg.query_text("quillphase maintenance frames", search::VectorClass::Weakness);
        if (!hits.empty()) ++visible;
        benchmark::DoNotOptimize(hits);
    }
    if (visible != static_cast<std::size_t>(state.iterations()))
        state.SkipWithError("probe record not visible after apply");
}
BENCHMARK(BM_StalenessToVisibility)->Arg(200)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_MergedQueryWithSegments(benchmark::State& state) {
    // Query latency over base + 3 delta segments, plus the deterministic
    // merge counters the regression gate holds ceilings on.
    const int permille = 200;
    const search::SearchEngine& base = base_engine_at_scale(permille);
    const search::SegmentedEngine g1(base, one_percent_delta(corpus_at_scale(permille), 4));
    const search::SegmentedEngine g2(g1, one_percent_delta(g1.corpus(), 5));
    const search::SegmentedEngine g3(g2, one_percent_delta(g2.corpus(), 6));

    model::Attribute attr;
    attr.name = "role";
    attr.value = "scada controller modbus command injection";
    attr.kind = model::AttributeKind::Descriptor;
    for (auto _ : state) {
        auto matches = g3.query_attribute(attr);
        benchmark::DoNotOptimize(matches);
    }
    search::AssocMetrics metrics;
    auto matches = g3.query_attribute(attr, &metrics);
    benchmark::DoNotOptimize(matches);
    state.counters["segments_visited"] = static_cast<double>(metrics.kernel_segments_visited);
    state.counters["tombstones_masked"] = static_cast<double>(metrics.kernel_tombstones_masked);
    state.counters["postings_scanned"] = static_cast<double>(metrics.kernel_postings);
    state.counters["segments"] = static_cast<double>(g3.segment_count());
}
BENCHMARK(BM_MergedQueryWithSegments);

void BM_SustainedUpdatesUnderQueries(benchmark::State& state) {
    // The feed-tick loop: alternate add/withdraw deltas against the
    // current generation (compacting every 8 segments) while two query
    // lanes hammer whatever generation is current — the serve layer's
    // generation-flip pattern without the wire in the way.
    const int permille = 200;
    std::shared_ptr<const core::SharedEngine> current =
        core::make_shared_engine(corpus_at_scale(permille), core::SessionOptions{});

    std::mutex handle_mutex;
    auto load = [&]() {
        std::lock_guard<std::mutex> lock(handle_mutex);
        return current;
    };
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> queries{0};
    std::vector<std::thread> lanes;
    for (int t = 0; t < 2; ++t)
        lanes.emplace_back([&] {
            while (!stop.load(std::memory_order_relaxed)) {
                const std::shared_ptr<const core::SharedEngine> handle = load();
                auto hits = handle->query().query_text("controller command injection",
                                                       search::VectorClass::AttackPattern);
                benchmark::DoNotOptimize(hits);
                ++queries;
            }
        });

    kb::CorpusDelta add;
    kb::Weakness probe;
    probe.id = kb::WeaknessId{800100};
    probe.name = "Transient quillphase probe weakness";
    probe.description = "Round-trip record for sustained-update benchmarking.";
    add.weaknesses.push_back(probe);
    kb::CorpusDelta withdraw;
    withdraw.withdraw_weaknesses.push_back(probe.id);

    bool added = false;
    std::uint64_t applies = 0;
    for (auto _ : state) {
        std::shared_ptr<const core::SharedEngine> next =
            core::apply_corpus_delta(load(), added ? withdraw : add);
        added = !added;
        if (next->segmented != nullptr && next->segmented->segment_count() >= 8)
            next = core::compact(next);
        {
            std::lock_guard<std::mutex> lock(handle_mutex);
            current = std::move(next);
        }
        ++applies;
    }
    stop.store(true);
    for (std::thread& t : lanes) t.join();
    state.SetItemsProcessed(static_cast<std::int64_t>(applies)); // updates/sec
    state.counters["queries_served"] = static_cast<double>(queries.load());
}
BENCHMARK(BM_SustainedUpdatesUnderQueries)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

} // namespace

CYBOK_BENCH_MAIN(preamble)
