// Cost and incrementality of the flow pass (src/flow/) against model
// scale. The headline claims this suite guards:
//
//   * the fixpoint counters (taint_iterations, edges_traversed) are pure
//     functions of the generated model seed — CI gates exact ceilings on
//     them (tools/bench_thresholds.json), so a lost monotonicity or
//     worklist regression shows up as counter drift, never as a flaky
//     timing comparison;
//   * reanalyze() after a single edit re-runs only the affected region:
//     the `reanalyzed_nodes` counter (nodes minus reused_components) must
//     stay a small fraction of the graph while full analyze() touches all
//     of it.
//
// The preamble prints the full-vs-incremental comparison at the largest
// scale (the numbers quoted in EXPERIMENTS.md).

#include <cstdio>
#include <map>
#include <string>

#include "bench_common.hpp"
#include "flow/flow.hpp"
#include "model/diff.hpp"
#include "safety/hazards.hpp"
#include "search/association.hpp"

using namespace cybok;

namespace {

constexpr std::int64_t kSizes[] = {50, 200, 800};

const model::SystemModel& model_at(std::int64_t components) {
    static std::map<std::int64_t, model::SystemModel> cache;
    auto it = cache.find(components);
    if (it == cache.end()) {
        synth::ModelGenConfig cfg;
        cfg.seed = 23;
        cfg.components = static_cast<std::size_t>(components);
        it = cache.emplace(components, synth::generate_model(cfg)).first;
    }
    return it->second;
}

/// Deterministic evidence: vector counts and severities are a pure
/// function of the component's position, so every flow counter downstream
/// is machine-independent and CI can gate on it exactly.
search::AssociationMap assoc_for(const model::SystemModel& m) {
    search::AssociationMap map;
    std::size_t i = 0;
    for (const model::Component& c : m.components()) {
        if (!c.id.valid()) continue;
        const std::size_t vectors = (i * 7 + 3) % 6; // 0..5, most nodes permeable
        ++i;
        if (vectors == 0) continue;
        search::ComponentAssociation ca;
        ca.component = c.name;
        search::AttributeAssociation aa;
        aa.attribute_name = "role";
        aa.attribute_value = "synthetic";
        for (std::size_t v = 0; v < vectors; ++v) {
            search::Match match;
            match.cls = search::VectorClass::Weakness;
            match.id = "CWE-" + std::to_string(100 + v);
            match.severity = v == 0 && i % 3 == 0 ? 8.5 : -1.0;
            aa.matches.push_back(std::move(match));
        }
        ca.attributes.push_back(std::move(aa));
        map.components.push_back(std::move(ca));
    }
    return map;
}

const search::AssociationMap& assoc_at(std::int64_t components) {
    static std::map<std::int64_t, search::AssociationMap> cache;
    auto it = cache.find(components);
    if (it == cache.end()) it = cache.emplace(components, assoc_for(model_at(components))).first;
    return it->second;
}

/// Every 9th live component is a UCA controller over one of three hazards.
const safety::HazardModel& hazards_at(std::int64_t components) {
    static std::map<std::int64_t, safety::HazardModel> cache;
    auto it = cache.find(components);
    if (it == cache.end()) {
        safety::HazardModel hz;
        hz.add(safety::Loss{"L-1", "loss of the controlled process"});
        for (int h = 1; h <= 3; ++h)
            hz.add(safety::Hazard{"H-" + std::to_string(h), "hazardous state", {"L-1"}});
        std::size_t i = 0, n = 0;
        for (const model::Component& c : model_at(components).components()) {
            if (!c.id.valid() || i++ % 9 != 0) continue;
            safety::UnsafeControlAction uca;
            uca.id = "UCA-" + std::to_string(++n);
            uca.controller = c.name;
            uca.action = "issue command";
            uca.hazards = {"H-" + std::to_string(static_cast<int>(n % 3) + 1)};
            hz.add(uca);
        }
        it = cache.emplace(components, std::move(hz)).first;
    }
    return it->second;
}

/// The single-edit scenario reanalyze() is measured on: one new component
/// fed from a mid-graph node. Precomputed once per scale.
struct IncrementalCase {
    model::SystemModel after;
    model::ModelDiff diff;
    flow::FlowResult previous;
};

const IncrementalCase& incremental_at(std::int64_t components) {
    static std::map<std::int64_t, IncrementalCase> cache;
    auto it = cache.find(components);
    if (it == cache.end()) {
        const model::SystemModel& before = model_at(components);
        IncrementalCase c{before, {}, flow::analyze(before, assoc_at(components),
                                                    &hazards_at(components))};
        std::vector<model::ComponentId> live;
        for (const model::Component& comp : c.after.components())
            if (comp.id.valid()) live.push_back(comp.id);
        const model::ComponentId fresh =
            c.after.add_component("Edit historian", model::ComponentType::Compute);
        c.after.connect(live[live.size() / 2], fresh, "trend-data");
        c.diff = model::diff(before, c.after);
        it = cache.emplace(components, std::move(c)).first;
    }
    return it->second;
}

void BM_FlowFull(benchmark::State& state) {
    const std::int64_t n = state.range(0);
    const model::SystemModel& m = model_at(n);
    const search::AssociationMap& assoc = assoc_at(n);
    const safety::HazardModel& hz = hazards_at(n);
    flow::FlowResult r;
    for (auto _ : state) {
        r = flow::analyze(m, assoc, &hz);
        benchmark::DoNotOptimize(r);
    }
    state.counters["nodes"] = static_cast<double>(r.counts.nodes);
    state.counters["edges"] = static_cast<double>(r.counts.edges);
    state.counters["tainted"] = static_cast<double>(r.counts.tainted);
    state.counters["taint_iterations"] = static_cast<double>(r.counts.taint_iterations);
    state.counters["slice_iterations"] = static_cast<double>(r.counts.slice_iterations);
    state.counters["flow_edges_traversed"] = static_cast<double>(r.counts.edges_traversed);
    state.counters["chokepoints"] = static_cast<double>(r.counts.chokepoints);
}

void BM_FlowIncremental(benchmark::State& state) {
    const std::int64_t n = state.range(0);
    const IncrementalCase& c = incremental_at(n);
    const search::AssociationMap& assoc = assoc_at(n);
    const safety::HazardModel& hz = hazards_at(n);
    flow::FlowResult r;
    for (auto _ : state) {
        r = flow::reanalyze(c.previous, c.diff, c.after, assoc, &hz);
        benchmark::DoNotOptimize(r);
    }
    state.counters["nodes"] = static_cast<double>(r.counts.nodes);
    state.counters["reused_components"] = static_cast<double>(r.counts.reused_components);
    state.counters["reanalyzed_nodes"] =
        static_cast<double>(r.counts.nodes - r.counts.reused_components);
    state.counters["taint_iterations"] = static_cast<double>(r.counts.taint_iterations);
    state.counters["flow_edges_traversed"] = static_cast<double>(r.counts.edges_traversed);
}

void BM_FlowTaintOnly(benchmark::State& state) {
    // Null hazard model: isolates the forward taint fixpoint from the
    // slice and chokepoint stages.
    const std::int64_t n = state.range(0);
    const model::SystemModel& m = model_at(n);
    const search::AssociationMap& assoc = assoc_at(n);
    for (auto _ : state) {
        flow::FlowResult r = flow::analyze(m, assoc, nullptr);
        benchmark::DoNotOptimize(r);
    }
}

void print_flow_summary() {
    const std::int64_t n = kSizes[2];
    const flow::FlowResult full =
        flow::analyze(model_at(n), assoc_at(n), &hazards_at(n));
    const IncrementalCase& c = incremental_at(n);
    const flow::FlowResult inc =
        flow::reanalyze(c.previous, c.diff, c.after, assoc_at(n), &hazards_at(n));
    std::printf("Flow pass at %lld generated components\n", static_cast<long long>(n));
    std::printf("  full:        %s | taint iters %llu, edges traversed %llu\n",
                full.summary().c_str(),
                static_cast<unsigned long long>(full.counts.taint_iterations),
                static_cast<unsigned long long>(full.counts.edges_traversed));
    std::printf("  incremental: one edit -> %llu of %llu nodes reused "
                "(taint iters %llu)\n\n",
                static_cast<unsigned long long>(inc.counts.reused_components),
                static_cast<unsigned long long>(inc.counts.nodes),
                static_cast<unsigned long long>(inc.counts.taint_iterations));
}

} // namespace

BENCHMARK(BM_FlowFull)->Arg(kSizes[0])->Arg(kSizes[1])->Arg(kSizes[2])
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FlowIncremental)->Arg(kSizes[0])->Arg(kSizes[1])->Arg(kSizes[2])
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FlowTaintOnly)->Arg(kSizes[2])->Unit(benchmark::kMillisecond);

CYBOK_BENCH_MAIN(print_flow_summary)
