// Ingest and cold start: what it costs to go from bytes on disk to a
// query-ready engine, across the three paths the repo now has —
//
//   1. JSON corpus parse + sequential engine build   (the original path)
//   2. JSON corpus parse + parallel sharded build    (tentpole, phase 1)
//   3. binary snapshot thaw, owning buffer           (tentpole, phase 2)
//   4. binary snapshot mmap, zero-copy slabs         (block-compressed
//      postings PR: the index serves straight from the page cache)
//
// The preamble times one cold start per path at the largest scale,
// prints the speedup table (EXPERIMENTS.md reproduces it) plus the
// resident-index-bytes table for the compression claim; the benchmarks
// then measure each stage in isolation across scales.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>

#include "bench_common.hpp"
#include "kb/serialize.hpp"
#include "kb/snapshot.hpp"
#include "util/bytes.hpp"

using namespace cybok;

namespace {

const kb::Corpus& corpus_at_scale(int permille) {
    static std::map<int, kb::Corpus> cache;
    auto it = cache.find(permille);
    if (it == cache.end()) {
        it = cache.emplace(permille, synth::generate_corpus(synth::CorpusProfile::scaled(
                                        permille / 1000.0, 31))).first;
    }
    return it->second;
}

/// JSON corpus file per scale, written once.
const std::string& json_path_at_scale(int permille) {
    static std::map<int, std::string> cache;
    auto it = cache.find(permille);
    if (it == cache.end()) {
        std::string path = (std::filesystem::temp_directory_path() /
                            ("cybok_bench_ingest_" + std::to_string(permille) + ".json"))
                               .string();
        kb::save_corpus(path, corpus_at_scale(permille));
        it = cache.emplace(permille, std::move(path)).first;
    }
    return it->second;
}

/// Snapshot blob file per scale (corpus + default-options engine).
const std::string& snapshot_path_at_scale(int permille) {
    static std::map<int, std::string> cache;
    auto it = cache.find(permille);
    if (it == cache.end()) {
        std::string path = (std::filesystem::temp_directory_path() /
                            ("cybok_bench_ingest_" + std::to_string(permille) + ".snap"))
                               .string();
        search::SearchEngine engine(corpus_at_scale(permille));
        search::save_engine_snapshot(engine, path);
        it = cache.emplace(permille, std::move(path)).first;
    }
    return it->second;
}

double ms_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
        .count();
}

void preamble() {
    std::printf("Cold start: bytes on disk -> query-ready engine (scale 1.0)\n\n");
    const int permille = 1000;
    const std::string& json = json_path_at_scale(permille);
    const std::string& snap = snapshot_path_at_scale(permille);

    namespace sc = std::chrono;
    sc::steady_clock::time_point t0 = sc::steady_clock::now();
    kb::Corpus c1 = kb::load_corpus(json);
    search::EngineOptions seq;
    seq.build_threads = 1;
    search::SearchEngine e1(c1, seq);
    const double json_seq_ms = ms_since(t0);

    t0 = sc::steady_clock::now();
    kb::Corpus c2 = kb::load_corpus(json);
    search::SearchEngine e2(c2); // build_threads = 0: all cores
    const double json_par_ms = ms_since(t0);

    t0 = sc::steady_clock::now();
    search::EngineSnapshot owning = search::thaw_engine(util::read_file(snap), snap);
    const double snap_own_ms = ms_since(t0);

    t0 = sc::steady_clock::now();
    search::EngineSnapshot mapped = search::load_engine_snapshot(snap);
    const double snap_map_ms = ms_since(t0);

    const search::BuildMetrics& bm = e2.build_metrics();
    std::printf("  %-34s %9.1f ms\n", "JSON parse + sequential build", json_seq_ms);
    std::printf("  %-34s %9.1f ms  (%zu thread(s))\n", "JSON parse + parallel build",
                json_par_ms, bm.threads);
    std::printf("  %-34s %9.1f ms  (%.1fx vs JSON+sequential)\n", "snapshot thaw (owning)",
                snap_own_ms, snap_own_ms > 0.0 ? json_seq_ms / snap_own_ms : 0.0);
    std::printf("  %-34s %9.1f ms  (%.1fx vs JSON+sequential, zero_copy=%d)\n",
                "snapshot mmap (zero-copy)", snap_map_ms,
                snap_map_ms > 0.0 ? json_seq_ms / snap_map_ms : 0.0,
                mapped.zero_copy() ? 1 : 0);
    std::printf("  docs %zu, snapshot from_snapshot=%d\n\n",
                mapped.engine->build_metrics().docs,
                mapped.engine->build_metrics().from_snapshot ? 1 : 0);

    // Resident-index accounting for the <=50% compression acceptance bar:
    // compressed posting bytes vs the flat {u32 doc, f32 weight} arrays
    // plus per-term vector headers the pre-block layout kept resident.
    const text::IndexStats stats = mapped.engine->index_stats();
    std::printf("  resident postings: %zu blocks / %zu bytes compressed, %zu bytes "
                "uncompressed-equivalent (%.1f%%), mapped=%d\n\n",
                stats.blocks, stats.postings_bytes, stats.uncompressed_postings_bytes,
                stats.uncompressed_postings_bytes > 0
                    ? 100.0 * static_cast<double>(stats.postings_bytes) /
                          static_cast<double>(stats.uncompressed_postings_bytes)
                    : 0.0,
                stats.mapped ? 1 : 0);
}

// -- stage benchmarks --------------------------------------------------------

void BM_JsonParseCorpus(benchmark::State& state) {
    const std::string& path = json_path_at_scale(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        kb::Corpus corpus = kb::load_corpus(path);
        benchmark::DoNotOptimize(&corpus);
    }
}
BENCHMARK(BM_JsonParseCorpus)->Arg(50)->Arg(200)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_SequentialBuild(benchmark::State& state) {
    const kb::Corpus& corpus = corpus_at_scale(static_cast<int>(state.range(0)));
    search::EngineOptions opts;
    opts.build_threads = 1;
    for (auto _ : state) {
        search::SearchEngine engine(corpus, opts);
        benchmark::DoNotOptimize(&engine);
    }
}
BENCHMARK(BM_SequentialBuild)->Arg(50)->Arg(200)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_ParallelBuild(benchmark::State& state) {
    const kb::Corpus& corpus = corpus_at_scale(static_cast<int>(state.range(0)));
    search::EngineOptions opts;
    opts.build_threads = 0; // hardware concurrency
    for (auto _ : state) {
        search::SearchEngine engine(corpus, opts);
        benchmark::DoNotOptimize(&engine);
        state.counters["threads"] = static_cast<double>(engine.build_metrics().threads);
    }
}
BENCHMARK(BM_ParallelBuild)->Arg(50)->Arg(200)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_SnapshotFreeze(benchmark::State& state) {
    const kb::Corpus& corpus = corpus_at_scale(static_cast<int>(state.range(0)));
    search::SearchEngine engine(corpus);
    for (auto _ : state) {
        std::string blob = search::freeze_engine(engine);
        benchmark::DoNotOptimize(blob);
        state.counters["bytes"] = static_cast<double>(blob.size());
    }
}
BENCHMARK(BM_SnapshotFreeze)->Arg(50)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_SnapshotThaw(benchmark::State& state) {
    // In-memory blob: isolates decode cost from file IO.
    const kb::Corpus& corpus = corpus_at_scale(static_cast<int>(state.range(0)));
    search::SearchEngine engine(corpus);
    const std::string blob = search::freeze_engine(engine);
    for (auto _ : state) {
        search::EngineSnapshot snap = search::thaw_engine(blob);
        benchmark::DoNotOptimize(&snap);
    }
}
BENCHMARK(BM_SnapshotThaw)->Arg(50)->Arg(200)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// -- end-to-end cold starts ---------------------------------------------------

void BM_ColdStartJsonSequential(benchmark::State& state) {
    const std::string& path = json_path_at_scale(static_cast<int>(state.range(0)));
    search::EngineOptions opts;
    opts.build_threads = 1;
    for (auto _ : state) {
        kb::Corpus corpus = kb::load_corpus(path);
        search::SearchEngine engine(corpus, opts);
        benchmark::DoNotOptimize(&engine);
    }
}
BENCHMARK(BM_ColdStartJsonSequential)->Arg(50)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_ColdStartJsonParallel(benchmark::State& state) {
    const std::string& path = json_path_at_scale(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        kb::Corpus corpus = kb::load_corpus(path);
        search::SearchEngine engine(corpus);
        benchmark::DoNotOptimize(&engine);
    }
}
BENCHMARK(BM_ColdStartJsonParallel)->Arg(50)->Arg(1000)->Unit(benchmark::kMillisecond);

// The default load path: mmap + zero-copy slab adoption. Eager sections
// are still decoded, but postings/tables serve straight from the mapping
// (no slab copy, no slab checksum pass).
void BM_ColdStartSnapshot(benchmark::State& state) {
    const std::string& path = snapshot_path_at_scale(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        search::EngineSnapshot snap = search::load_engine_snapshot(path);
        benchmark::DoNotOptimize(&snap);
    }
}
BENCHMARK(BM_ColdStartSnapshot)->Arg(50)->Arg(1000)->Unit(benchmark::kMillisecond);

// The fallback path load_engine_snapshot degrades to when mmap fails:
// read the whole file, verify both checksums, copy slabs into an owning
// aligned buffer. The delta against BM_ColdStartSnapshot is what the
// zero-copy start saves.
void BM_ColdStartSnapshotOwning(benchmark::State& state) {
    const std::string& path = snapshot_path_at_scale(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        search::EngineSnapshot snap = search::thaw_engine(util::read_file(path), path);
        benchmark::DoNotOptimize(&snap);
    }
}
BENCHMARK(BM_ColdStartSnapshotOwning)->Arg(50)->Arg(1000)->Unit(benchmark::kMillisecond);

} // namespace

CYBOK_BENCH_MAIN(preamble)
